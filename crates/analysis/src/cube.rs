//! The dependence cube: every per-(country, layer) owner tally, built once.
//!
//! The analysis re-reads the same aggregations constantly — score tables,
//! usage curves, insularity, breakdowns, correlations, and bootstrap
//! replicates all start from "how many of country X's sites does owner Y
//! serve at layer L". Tallying that from raw observations per call made
//! `AnalysisCtx` quadratic in places (`owner_share` re-walked a whole
//! toplist per lookup). The [`DependenceCube`] replaces all of that with
//! one parallel pass over the [`MeasuredDataset`]:
//!
//! * per layer, a dense `country × owner` count matrix (`u64`), with owners
//!   interned to dense indices (only owners actually observed get a column;
//!   observation TLD labels are interned through the universe once, at
//!   build time, instead of being hashed on every lookup);
//! * precomputed row totals, per-country sorted `(owner, count)` views in
//!   the analysis's canonical order (count descending, owner id ascending —
//!   exactly [`World::layer_counts`]'s order), and per-country
//!   [`CountDist`]s;
//! * the global-top tally per layer (the Figure 12 marker);
//! * per-country dense owner labels per measured site, in toplist order —
//!   the index arrays bootstrap replicates resample against with zero
//!   per-replicate allocation.
//!
//! Determinism: the per-country pass runs under
//! [`webdep_stats::par_map_indices`], which returns results in country
//! order; interning sorts the observed owner set; every sorted view uses a
//! total order. The cube is byte-identical across runs and thread counts.

use std::collections::HashMap;
use webdep_core::CountDist;
use webdep_pipeline::store::DecodedChunk;
use webdep_pipeline::{MeasuredDataset, SiteObservation};
use webdep_stats::{par::default_threads, par_map_indices};
use webdep_webgen::{Layer, World, COUNTRIES};

/// Sentinel in `dense_of` for owners never observed at a layer.
const UNOBSERVED: u32 = u32::MAX;

/// One layer's dense count matrix plus its derived views.
pub struct LayerCube {
    /// Observed owner world-ids, ascending. Dense index = position.
    owners: Vec<u32>,
    /// World id → dense index (`UNOBSERVED` when never seen at this layer).
    dense_of: Vec<u32>,
    /// Row-major counts: `COUNTRIES.len()` rows × `owners.len()` columns.
    counts: Vec<u64>,
    /// Per-country measured-site totals (row sums).
    totals: Vec<u64>,
    /// Flattened per-country `(owner world id, count)` views, count
    /// descending then owner ascending; country `ci` spans
    /// `sorted_off[ci]..sorted_off[ci + 1]`.
    sorted: Vec<(u32, u64)>,
    sorted_off: Vec<usize>,
    /// Per-country distributions (`None` when nothing measured).
    dists: Vec<Option<CountDist>>,
    /// Global-top tally in the same sorted order.
    global_sorted: Vec<(u32, u64)>,
    /// Global-top distribution.
    global_dist: Option<CountDist>,
    /// Dense owner label per measured site, toplist order, flattened;
    /// country `ci` spans `label_off[ci]..label_off[ci + 1]`.
    labels: Vec<u32>,
    label_off: Vec<usize>,
}

impl LayerCube {
    /// Observed owner world-ids, ascending.
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }

    /// Dense column index of an owner world id, if observed at this layer.
    pub fn dense_of(&self, owner: u32) -> Option<usize> {
        match self.dense_of.get(owner as usize) {
            Some(&d) if d != UNOBSERVED => Some(d as usize),
            _ => None,
        }
    }

    /// A country's full count row (one slot per observed owner).
    pub fn row(&self, ci: usize) -> &[u64] {
        let w = self.owners.len();
        &self.counts[ci * w..(ci + 1) * w]
    }

    /// A country's measured-site total.
    pub fn total(&self, ci: usize) -> u64 {
        self.totals[ci]
    }

    /// Sites of country `ci` served by `owner` (world id).
    pub fn count(&self, ci: usize, owner: u32) -> u64 {
        match self.dense_of(owner) {
            Some(d) => self.row(ci)[d],
            None => 0,
        }
    }

    /// A country's `(owner world id, count)` view, count descending then
    /// owner ascending — the canonical tally order everywhere else in the
    /// analysis.
    pub fn sorted_counts(&self, ci: usize) -> &[(u32, u64)] {
        &self.sorted[self.sorted_off[ci]..self.sorted_off[ci + 1]]
    }

    /// A country's distribution, if anything was measured.
    pub fn dist(&self, ci: usize) -> Option<&CountDist> {
        self.dists[ci].as_ref()
    }

    /// The global-top tally in sorted order.
    pub fn global_sorted(&self) -> &[(u32, u64)] {
        &self.global_sorted
    }

    /// The global-top distribution.
    pub fn global_dist(&self) -> Option<&CountDist> {
        self.global_dist.as_ref()
    }

    /// Dense owner labels of a country's measured sites, toplist order —
    /// the resampling universe for bootstrap replicates. Each label indexes
    /// [`LayerCube::owners`].
    pub fn site_labels(&self, ci: usize) -> &[u32] {
        &self.labels[self.label_off[ci]..self.label_off[ci + 1]]
    }
}

/// All four layers' cubes. See the module docs for layout and guarantees.
pub struct DependenceCube {
    layers: [LayerCube; 4],
}

impl DependenceCube {
    /// One layer's cube.
    pub fn layer(&self, layer: Layer) -> &LayerCube {
        &self.layers[layer.index()]
    }

    /// Builds the cube from a measured dataset.
    ///
    /// `tld_ids` is the observation-TLD interning table (label → universe
    /// TLD id); the caller already has it, so the cube reuses it rather
    /// than rebuilding. Internally this folds every observation through a
    /// [`CubeBuilder`] — the same single code path the streaming pipeline
    /// uses — so the resident and incremental constructions cannot drift.
    pub fn build(world: &World, ds: &MeasuredDataset, tld_ids: &HashMap<String, u32>) -> Self {
        let mut b = CubeBuilder::new(ds.observations.len());
        for (i, obs) in ds.observations.iter().enumerate() {
            b.fold_observation(i, obs, tld_ids);
        }
        b.finish(world, &ds.toplists, &ds.global_top)
    }
}

/// Incremental [`DependenceCube`] construction for the streaming pipeline:
/// observations fold in one at a time (or a decoded chunk at a time), in
/// any order, and only a per-site `u32` owner label per layer stays
/// resident — 16 bytes per site instead of a whole [`SiteObservation`].
///
/// [`CubeBuilder::finish`] then walks the toplists through the label
/// arrays and assembles exactly what [`DependenceCube::build`] produces;
/// `build` itself is implemented on top of this builder, so equivalence is
/// structural, not merely tested.
///
/// The builder is also the unit of *epoch deltas*: it is `Clone` (16 bytes
/// per site), `finish` borrows rather than consumes, and
/// [`CubeBuilder::grow`] / [`CubeBuilder::retract`] let a continuous
/// measurement loop carry epoch N's builder forward — clone, grow to the
/// evolved site table, refold only the dirty sites, finish. Because folds
/// are idempotent per-site overwrites, the applied builder is identical to
/// one built from scratch over the evolved dataset.
#[derive(Clone)]
pub struct CubeBuilder {
    /// Per layer (in [`Layer::ALL`] order), the owner world-id of each
    /// site, [`UNOBSERVED`] where the layer failed or the site is unfolded.
    owner_of: [Vec<u32>; 4],
}

impl CubeBuilder {
    /// A builder for a world of `sites` sites, all initially unobserved.
    pub fn new(sites: usize) -> Self {
        CubeBuilder {
            owner_of: std::array::from_fn(|_| vec![UNOBSERVED; sites]),
        }
    }

    /// Folds one observation: records the site's owner world-id at each
    /// layer. Idempotent and order-independent (the slot is simply
    /// overwritten with the same deterministic value).
    pub fn fold_observation(
        &mut self,
        site: usize,
        obs: &SiteObservation,
        tld_ids: &HashMap<String, u32>,
    ) {
        let owners = [
            obs.hosting_org,
            obs.dns_org,
            obs.ca_owner,
            tld_ids.get(&obs.tld).copied(),
        ];
        for (li, o) in owners.into_iter().enumerate() {
            self.owner_of[li][site] = o.unwrap_or(UNOBSERVED);
        }
    }

    /// The folded owner world-id of `site` at `layer`, or `None` while
    /// unobserved. A read-only view for integrity checks: publish
    /// validation reconciles each cube column total against a toplist walk
    /// over these labels.
    pub fn owner(&self, layer: Layer, site: usize) -> Option<u32> {
        match self.owner_of[layer.index()][site] {
            UNOBSERVED => None,
            o => Some(o),
        }
    }

    /// Number of site slots currently folded or foldable.
    pub fn sites(&self) -> usize {
        self.owner_of[0].len()
    }

    /// Extends the builder to a grown site table (epoch evolution only
    /// appends sites); new slots start unobserved. Shrinking is refused —
    /// site indices are stable across epochs by construction.
    pub fn grow(&mut self, sites: usize) {
        for col in &mut self.owner_of {
            assert!(sites >= col.len(), "site tables never shrink across epochs");
            col.resize(sites, UNOBSERVED);
        }
    }

    /// Retracts a site's observation batch: all four layers back to
    /// unobserved, as if the site were never folded. For sites that drop
    /// out of every toplist this is cosmetic (finish only walks toplists),
    /// but it keeps `cube(N+1) = cube(N) − retracted + refolded` exact at
    /// the label level too.
    pub fn retract(&mut self, site: usize) {
        for col in &mut self.owner_of {
            col[site] = UNOBSERVED;
        }
    }

    /// Folds a decoded chunk straight from the columnar store — no
    /// [`SiteObservation`] materialization. Each distinct chunk-local TLD
    /// string resolves through `tld_ids` once.
    pub fn fold_chunk(&mut self, chunk: &DecodedChunk, tld_ids: &HashMap<String, u32>) {
        let mut tld_cache: HashMap<u32, u32> = HashMap::new();
        for r in 0..chunk.rows {
            let site = chunk.lo + r;
            self.owner_of[Layer::Hosting.index()][site] =
                chunk.hosting_org[r].unwrap_or(UNOBSERVED);
            self.owner_of[Layer::Dns.index()][site] = chunk.dns_org[r].unwrap_or(UNOBSERVED);
            self.owner_of[Layer::Ca.index()][site] = chunk.ca_owner[r].unwrap_or(UNOBSERVED);
            let t = *tld_cache.entry(chunk.tld[r]).or_insert_with(|| {
                tld_ids
                    .get(chunk.str_of(chunk.tld[r]))
                    .copied()
                    .unwrap_or(UNOBSERVED)
            });
            self.owner_of[Layer::Tld.index()][site] = t;
        }
    }

    /// Assembles the cube: walks each toplist (and the global top) through
    /// the per-site label arrays — restoring toplist order regardless of
    /// fold order — then builds the dense matrices and sorted views.
    ///
    /// Borrows the builder (it does not consume it) so an epoch loop can
    /// finish a snapshot and keep folding deltas into the same state.
    pub fn finish(
        &self,
        world: &World,
        toplists: &[Vec<u32>],
        global_top: &[u32],
    ) -> DependenceCube {
        let n_countries = COUNTRIES.len();
        let threads = default_threads();

        // Pass 1 (parallel over countries): gather each toplist's observed
        // owner world-ids per layer, in toplist order.
        let owner_of = &self.owner_of;
        let resolve = |ci: usize| -> [Vec<u32>; 4] {
            let mut out: [Vec<u32>; 4] = Default::default();
            for &oi in &toplists[ci] {
                for (li, col) in owner_of.iter().enumerate() {
                    let o = col[oi as usize];
                    if o != UNOBSERVED {
                        out[li].push(o);
                    }
                }
            }
            out
        };
        let per_country: Vec<[Vec<u32>; 4]> = par_map_indices(n_countries, threads, resolve);

        // The global top list, resolved the same way (serial: one list).
        let mut global: [Vec<u32>; 4] = Default::default();
        for &oi in global_top {
            for (li, col) in owner_of.iter().enumerate() {
                let o = col[oi as usize];
                if o != UNOBSERVED {
                    global[li].push(o);
                }
            }
        }

        let layers = Layer::ALL.map(|layer| {
            let li = layer.index();
            let universe_width = match layer {
                Layer::Hosting | Layer::Dns => world.universe.providers.len(),
                Layer::Ca => world.universe.cas.len(),
                Layer::Tld => world.universe.tlds.len(),
            };

            // Intern: every owner observed anywhere (countries or global
            // top) gets a dense column, in ascending world-id order.
            let mut seen = vec![false; universe_width];
            for c in &per_country {
                for &o in &c[li] {
                    seen[o as usize] = true;
                }
            }
            for &o in &global[li] {
                seen[o as usize] = true;
            }
            let owners: Vec<u32> = (0..universe_width as u32)
                .filter(|&o| seen[o as usize])
                .collect();
            let mut dense_of = vec![UNOBSERVED; universe_width];
            for (d, &o) in owners.iter().enumerate() {
                dense_of[o as usize] = d as u32;
            }
            let w = owners.len();

            // Pass 2 (parallel over countries): dense rows, sorted views,
            // dists, and dense site labels, assembled in country order.
            struct CountryAgg {
                row: Vec<u64>,
                total: u64,
                sorted: Vec<(u32, u64)>,
                dist: Option<CountDist>,
                labels: Vec<u32>,
            }
            let built: Vec<CountryAgg> = par_map_indices(n_countries, threads, |ci| {
                let world_labels = &per_country[ci][li];
                let mut row = vec![0u64; w];
                let mut labels = Vec::with_capacity(world_labels.len());
                for &o in world_labels {
                    let d = dense_of[o as usize];
                    row[d as usize] += 1;
                    labels.push(d);
                }
                let total: u64 = world_labels.len() as u64;
                let mut sorted: Vec<(u32, u64)> = row
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(d, &c)| (owners[d], c))
                    .collect();
                sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let dist = CountDist::from_counts(sorted.iter().map(|&(_, c)| c).collect()).ok();
                CountryAgg {
                    row,
                    total,
                    sorted,
                    dist,
                    labels,
                }
            });

            let mut counts = Vec::with_capacity(n_countries * w);
            let mut totals = Vec::with_capacity(n_countries);
            let mut sorted = Vec::new();
            let mut sorted_off = Vec::with_capacity(n_countries + 1);
            let mut dists = Vec::with_capacity(n_countries);
            let mut labels = Vec::new();
            let mut label_off = Vec::with_capacity(n_countries + 1);
            sorted_off.push(0);
            label_off.push(0);
            for agg in built {
                counts.extend_from_slice(&agg.row);
                totals.push(agg.total);
                sorted.extend_from_slice(&agg.sorted);
                sorted_off.push(sorted.len());
                dists.push(agg.dist);
                labels.extend_from_slice(&agg.labels);
                label_off.push(labels.len());
            }

            // Global-top tally over the same dense axis.
            let mut global_row = vec![0u64; w];
            for &o in &global[li] {
                global_row[dense_of[o as usize] as usize] += 1;
            }
            let mut global_sorted: Vec<(u32, u64)> = global_row
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(d, &c)| (owners[d], c))
                .collect();
            global_sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let global_dist =
                CountDist::from_counts(global_sorted.iter().map(|&(_, c)| c).collect()).ok();

            LayerCube {
                owners,
                dense_of,
                counts,
                totals,
                sorted,
                sorted_off,
                dists,
                global_sorted,
                global_dist,
                labels,
                label_off,
            }
        });

        DependenceCube { layers }
    }
}

#[cfg(test)]
mod tests {
    use crate::ctx::testutil::{ctx, legacy_ctx};
    use webdep_webgen::{Layer, COUNTRIES};

    /// Satellite equivalence suite: the cube must reproduce the pre-cube
    /// tally-on-demand results *exactly* — same counts, same order, same
    /// floats — on a seeded world, for every country and layer.
    #[test]
    fn cube_reproduces_legacy_tallies_exactly() {
        let cube = ctx();
        let legacy = legacy_ctx();
        for layer in Layer::ALL {
            for (ci, country) in COUNTRIES.iter().enumerate() {
                assert_eq!(
                    cube.country_counts(ci, layer).as_ref(),
                    legacy.country_counts(ci, layer).as_ref(),
                    "counts mismatch: {} {layer:?}",
                    country.code
                );
                assert_eq!(
                    cube.country_dist(ci, layer).map(|d| d.into_owned()),
                    legacy.country_dist(ci, layer).map(|d| d.into_owned()),
                    "dist mismatch: {} {layer:?}",
                    country.code
                );
                assert_eq!(
                    cube.country_total(ci, layer),
                    legacy.country_total(ci, layer),
                    "total mismatch: {} {layer:?}",
                    country.code
                );
            }
            assert_eq!(
                cube.global_counts(layer).as_ref(),
                legacy.global_counts(layer).as_ref(),
                "global counts mismatch: {layer:?}"
            );
            assert_eq!(
                cube.global_dist(layer).map(|d| d.into_owned()),
                legacy.global_dist(layer).map(|d| d.into_owned()),
                "global dist mismatch: {layer:?}"
            );
        }
    }

    #[test]
    fn cube_reproduces_legacy_usage_matrix() {
        let cube = ctx();
        let legacy = legacy_ctx();
        for layer in Layer::ALL {
            // Exact f64 equality: both paths compute 100 * count / total
            // from identical integers.
            assert_eq!(
                cube.usage_matrix(layer),
                legacy.usage_matrix(layer),
                "usage matrix mismatch: {layer:?}"
            );
        }
    }

    #[test]
    fn cube_reproduces_legacy_owner_share() {
        let cube = ctx();
        let legacy = legacy_ctx();
        for layer in Layer::ALL {
            for ci in (0..COUNTRIES.len()).step_by(7) {
                let counts = legacy.country_counts(ci, layer);
                // Every observed owner in the country's top ten, exactly.
                for &(owner, _) in counts.iter().take(10) {
                    let a = cube.owner_share(ci, layer, owner);
                    let b = legacy.owner_share(ci, layer, owner);
                    assert_eq!(
                        a, b,
                        "share mismatch: {} {layer:?} owner {owner}",
                        COUNTRIES[ci].code
                    );
                }
            }
            // An owner never observed at this layer shares 0.0 both ways.
            let unobserved = u32::MAX - 1;
            assert_eq!(cube.owner_share(0, layer, unobserved), 0.0);
            assert_eq!(legacy.owner_share(0, layer, unobserved), 0.0);
        }
    }

    /// Folding observations one at a time, in reverse order, must produce
    /// the exact cube the batch build does: the builder records per-site
    /// labels, so fold order cannot matter. This is the streaming path's
    /// core equivalence claim.
    #[test]
    fn incremental_fold_is_order_independent() {
        use super::{CubeBuilder, DependenceCube};
        use std::collections::HashMap;

        let (world, ds) = crate::ctx::testutil::fixture();
        let tld_ids: HashMap<String, u32> = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        let mut b = CubeBuilder::new(ds.observations.len());
        for (i, obs) in ds.observations.iter().enumerate().rev() {
            b.fold_observation(i, obs, &tld_ids);
        }
        let inc = b.finish(world, &ds.toplists, &ds.global_top);
        let batch = DependenceCube::build(world, ds, &tld_ids);
        for layer in Layer::ALL {
            let (a, b) = (inc.layer(layer), batch.layer(layer));
            assert_eq!(a.owners(), b.owners(), "{layer:?}");
            assert_eq!(a.global_sorted(), b.global_sorted(), "{layer:?}");
            for ci in 0..COUNTRIES.len() {
                assert_eq!(a.row(ci), b.row(ci), "{layer:?} {ci}");
                assert_eq!(a.total(ci), b.total(ci), "{layer:?} {ci}");
                assert_eq!(a.sorted_counts(ci), b.sorted_counts(ci), "{layer:?} {ci}");
                assert_eq!(a.site_labels(ci), b.site_labels(ci), "{layer:?} {ci}");
                assert_eq!(
                    a.dist(ci).map(|d| d.counts().to_vec()),
                    b.dist(ci).map(|d| d.counts().to_vec()),
                    "{layer:?} {ci}"
                );
            }
        }
    }

    /// The incremental-epoch claim: cloning epoch N's builder, growing it
    /// to the evolved site table, and refolding *only* the dirty sites
    /// must yield exactly the cube a from-scratch rebuild over the evolved
    /// dataset produces. Clean sites keep their serving infrastructure via
    /// the pinned pool census, so their observations are unchanged and
    /// never need refolding.
    #[test]
    fn delta_apply_equals_full_rebuild() {
        use super::{CubeBuilder, DependenceCube};
        use std::collections::HashMap;
        use std::sync::Arc;
        use webdep_pipeline::{measure, PipelineConfig};
        use webdep_webgen::{provider_site_counts, DeployConfig, DeployedWorld, EvolutionPlan};

        let (world, ds) = crate::ctx::testutil::fixture();
        let tld_ids: HashMap<String, u32> = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();

        // Epoch N state.
        let mut b = CubeBuilder::new(ds.observations.len());
        for (i, obs) in ds.observations.iter().enumerate() {
            b.fold_observation(i, obs, &tld_ids);
        }

        let census = Arc::new(provider_site_counts(world));
        let (new_world, delta) = EvolutionPlan::continuous(1, 0.12, 11).evolve_epoch(world, 0);
        delta.certify_unchanged(world, &new_world).unwrap();
        assert!(!delta.migrated.is_empty() && delta.to_sites > delta.from_sites);
        let dep = DeployedWorld::deploy(
            &new_world,
            DeployConfig {
                pool_sites: Some(census),
                ..DeployConfig::default()
            },
        );
        let ds2 = measure(&new_world, &dep, &PipelineConfig::default());

        // Delta apply: clone + grow + refold exactly the dirty sites.
        let mut inc = b.clone();
        inc.grow(new_world.sites.len());
        let dirty = delta.dirty();
        for (i, obs) in ds2.observations.iter().enumerate() {
            if dirty[i] {
                inc.fold_observation(i, obs, &tld_ids);
            }
        }
        let applied = inc.finish(&new_world, &ds2.toplists, &ds2.global_top);
        let rebuilt = DependenceCube::build(&new_world, &ds2, &tld_ids);

        for layer in Layer::ALL {
            let (a, b) = (applied.layer(layer), rebuilt.layer(layer));
            assert_eq!(a.owners(), b.owners(), "{layer:?}");
            assert_eq!(a.global_sorted(), b.global_sorted(), "{layer:?}");
            for ci in 0..COUNTRIES.len() {
                assert_eq!(a.row(ci), b.row(ci), "{layer:?} {ci}");
                assert_eq!(a.total(ci), b.total(ci), "{layer:?} {ci}");
                assert_eq!(a.sorted_counts(ci), b.sorted_counts(ci), "{layer:?} {ci}");
                assert_eq!(a.site_labels(ci), b.site_labels(ci), "{layer:?} {ci}");
            }
        }

        // The original builder is intact (finish borrows): it still
        // reproduces epoch N exactly.
        let again = b.finish(world, &ds.toplists, &ds.global_top);
        let base = DependenceCube::build(world, ds, &tld_ids);
        for layer in Layer::ALL {
            assert_eq!(
                again.layer(layer).global_sorted(),
                base.layer(layer).global_sorted(),
                "{layer:?}"
            );
        }
    }

    /// Retracting a site is exactly "never folded it": the finished cube
    /// matches one built with the site skipped.
    #[test]
    fn retract_equals_never_folded() {
        use super::CubeBuilder;
        use std::collections::HashMap;

        let (world, ds) = crate::ctx::testutil::fixture();
        let tld_ids: HashMap<String, u32> = world
            .universe
            .tlds
            .iter()
            .map(|t| (t.label.clone(), t.id))
            .collect();
        // A site that actually measured at hosting, so the retraction is
        // visible in country 0's total.
        let victim = ds.toplists[0]
            .iter()
            .map(|&i| i as usize)
            .find(|&i| ds.observations[i].hosting_org.is_some())
            .unwrap();

        let mut folded = CubeBuilder::new(ds.observations.len());
        let mut skipped = CubeBuilder::new(ds.observations.len());
        for (i, obs) in ds.observations.iter().enumerate() {
            folded.fold_observation(i, obs, &tld_ids);
            if i != victim {
                skipped.fold_observation(i, obs, &tld_ids);
            }
        }
        folded.retract(victim);

        let a = folded.finish(world, &ds.toplists, &ds.global_top);
        let b = skipped.finish(world, &ds.toplists, &ds.global_top);
        for layer in Layer::ALL {
            assert_eq!(
                a.layer(layer).owners(),
                b.layer(layer).owners(),
                "{layer:?}"
            );
            for ci in 0..COUNTRIES.len() {
                assert_eq!(
                    a.layer(layer).row(ci),
                    b.layer(layer).row(ci),
                    "{layer:?} {ci}"
                );
            }
            assert_eq!(
                a.layer(layer).global_sorted(),
                b.layer(layer).global_sorted(),
                "{layer:?}"
            );
        }
        // And the retracted site really left the tallies.
        assert_eq!(a.layer(Layer::Hosting).total(0) + 1, {
            let full = CubeBuilder::new(ds.observations.len());
            let mut full = full;
            for (i, obs) in ds.observations.iter().enumerate() {
                full.fold_observation(i, obs, &tld_ids);
            }
            full.finish(world, &ds.toplists, &ds.global_top)
                .layer(Layer::Hosting)
                .total(0)
        });
    }

    /// The dense site labels must re-tally to the count rows — they are
    /// what bootstrap replicates resample.
    #[test]
    fn site_labels_tally_back_to_rows() {
        let c = ctx();
        let cube = c.cube().unwrap();
        for layer in Layer::ALL {
            let lc = cube.layer(layer);
            for ci in (0..COUNTRIES.len()).step_by(13) {
                let mut row = vec![0u64; lc.owners().len()];
                for &l in lc.site_labels(ci) {
                    row[l as usize] += 1;
                }
                assert_eq!(&row, lc.row(ci), "{} {layer:?}", COUNTRIES[ci].code);
                assert_eq!(
                    row.iter().sum::<u64>(),
                    lc.total(ci),
                    "{} {layer:?}",
                    COUNTRIES[ci].code
                );
            }
        }
    }
}
