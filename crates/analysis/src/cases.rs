//! The §5.3.3 regional case studies: Russia/CIS, France, Czechia, Germany,
//! and the Iran/Afghanistan Persian-language link.

use crate::ctx::AnalysisCtx;
use crate::insularity::dependence_shares;
use serde::Serialize;
use webdep_webgen::{Layer, World, COUNTRIES};

/// One cross-border dependence finding.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DependenceCase {
    /// The depending country.
    pub country: &'static str,
    /// The country depended upon.
    pub on: String,
    /// Share of websites served by providers based there.
    pub share: f64,
}

/// All countries whose largest *foreign* dependence exceeds `min_share`
/// at a layer, sorted by share — the §5.3.3 discovery procedure.
pub fn foreign_dependence_cases(
    ctx: &AnalysisCtx<'_>,
    layer: Layer,
    min_share: f64,
) -> Vec<DependenceCase> {
    let mut out = Vec::new();
    for (ci, country) in COUNTRIES.iter().enumerate() {
        for (cc, share) in dependence_shares(ctx, ci, layer) {
            if cc == country.code {
                continue;
            }
            // The US is everyone's largest dependence through the global
            // providers; the §5.3.3 cases are the non-US patterns.
            if cc == "US" {
                continue;
            }
            if share >= min_share {
                out.push(DependenceCase {
                    country: country.code,
                    on: cc,
                    share,
                });
            }
            break; // only the largest non-US foreign dependence
        }
    }
    out.sort_by(|a, b| b.share.partial_cmp(&a.share).expect("finite"));
    out
}

/// Share of a country's sites hosted by providers based in `on`.
pub fn dependence_on(ctx: &AnalysisCtx<'_>, country: &str, on: &str, layer: Layer) -> f64 {
    let Some(ci) = World::country_index(country) else {
        return 0.0;
    };
    dependence_shares(ctx, ci, layer)
        .into_iter()
        .find(|(cc, _)| cc == on)
        .map(|(_, s)| s)
        .unwrap_or(0.0)
}

/// The Afghan Persian-language case study numbers (§5.3.3).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PersianCase {
    /// Fraction of the Afghan top list in Persian (paper: 31.4%).
    pub persian_fraction: f64,
    /// Fraction of those Persian sites hosted in Iran (paper: 60.8%).
    pub persian_iran_hosted: f64,
    /// Overall Afghan dependence on Iranian providers (paper: >20%).
    pub iran_share: f64,
}

/// Computes the Afghan Persian case from measured data (language tags are
/// the LangDetect stand-in carried per site).
pub fn afghan_persian_case(ctx: &AnalysisCtx<'_>) -> Option<PersianCase> {
    let af = World::country_index("AF")?;
    let obs: Vec<_> = ctx.ds.country_observations(af).collect();
    if obs.is_empty() {
        return None;
    }
    let persian: Vec<_> = obs.iter().filter(|o| o.language == "fa").collect();
    let persian_fraction = persian.len() as f64 / obs.len() as f64;
    let iran_hosted = persian
        .iter()
        .filter(|o| o.hosting_org_country.as_deref() == Some("IR"))
        .count();
    let persian_iran_hosted = if persian.is_empty() {
        0.0
    } else {
        iran_hosted as f64 / persian.len() as f64
    };
    Some(PersianCase {
        persian_fraction,
        persian_iran_hosted,
        iran_share: dependence_on(ctx, "AF", "IR", Layer::Hosting),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn cis_russia_cases_surface() {
        let c = ctx();
        let cases = foreign_dependence_cases(&c, Layer::Hosting, 0.10);
        let on_russia: Vec<&DependenceCase> = cases.iter().filter(|d| d.on == "RU").collect();
        let countries: Vec<&str> = on_russia.iter().map(|d| d.country).collect();
        for cc in ["TM", "TJ", "KG", "KZ", "BY"] {
            assert!(
                countries.contains(&cc),
                "{cc} missing from RU cases: {countries:?}"
            );
        }
        for cc in ["UA", "LT", "EE"] {
            assert!(!countries.contains(&cc), "{cc} should not be in RU cases");
        }
    }

    #[test]
    fn france_and_czechia_cases() {
        let c = ctx();
        assert!(dependence_on(&c, "RE", "FR", Layer::Hosting) > 0.2);
        assert!(dependence_on(&c, "GP", "FR", Layer::Hosting) > 0.2);
        assert!(dependence_on(&c, "BF", "FR", Layer::Hosting) > 0.10);
        assert!(dependence_on(&c, "SK", "CZ", Layer::Hosting) > 0.15);
        assert!(dependence_on(&c, "CZ", "SK", Layer::Hosting) < 0.05);
    }

    #[test]
    fn germany_austria_case() {
        let c = ctx();
        let at_on_de = dependence_on(&c, "AT", "DE", Layer::Hosting);
        assert!(at_on_de > 0.03, "AT on DE: {at_on_de}");
    }

    #[test]
    fn afghan_persian_case_numbers() {
        let c = ctx();
        let case = afghan_persian_case(&c).unwrap();
        assert!(
            (0.2..0.45).contains(&case.persian_fraction),
            "persian fraction {}",
            case.persian_fraction
        );
        assert!(
            case.persian_iran_hosted > 0.35,
            "IR-hosted persian {}",
            case.persian_iran_hosted
        );
        assert!(case.iran_share > 0.10, "AF on IR {}", case.iran_share);
    }

    #[test]
    fn unknown_country_is_zero() {
        let c = ctx();
        assert_eq!(dependence_on(&c, "XX", "RU", Layer::Hosting), 0.0);
    }
}
