//! # webdep-analysis
//!
//! Every analysis in *Formalizing Dependence of Web Infrastructure*,
//! computed from a measured dataset:
//!
//! * [`ctx`] — the analysis context joining the measured dataset with the
//!   world's entity metadata (names, HQ countries, TLD kinds).
//! * [`cube`] — the dependence cube: dense per-layer country × owner count
//!   matrices built in one parallel pass, backing every accessor above.
//! * [`centralization`] — per-country per-layer score tables (Tables 5–8,
//!   Figures 5, 17–19), coverage (§5.1), and the global-top marker
//!   (Figure 12).
//! * [`classes`] — provider classification by usage and endemicity with
//!   affinity propagation (Tables 1–3, Figure 6).
//! * [`breakdown`] — per-country class share stacks (Figures 7, 14–16).
//! * [`insularity`] — country self-sufficiency per layer (Figures 10, 11,
//!   13, 20–22).
//! * [`coverage`] — per-layer measurement coverage: what fraction of each
//!   toplist the scores actually rest on under degraded measurement.
//! * [`regional`] — continent dependence matrices and subregion summaries
//!   (Figures 8, 9).
//! * [`correlations`] — the paper's headline correlations (§5.2, §5.3.1,
//!   Appendix B).
//! * [`cases`] — the §5.3.3 case studies (CIS→Russia, France, Czechia,
//!   Germany, Iran/Persian).
//! * [`latency`] — the latency cost of dependence (an §8-inspired
//!   extension over the netsim latency model).
//! * [`longitudinal`] — the 2023→2025 comparison (§5.4).
//! * [`vantage`] — the §3.4 vantage-point validation.
//! * [`figures`] — data series for the remaining figures (1–4, 11, 12).
//! * [`tld_appendix`] — the Appendix B TLD deep-dive (external ccTLD
//!   adoption, insularity regimes).
//! * [`report`] — markdown/JSON rendering.
//! * [`experiments`] — the paper-vs-measured experiment suite backing
//!   `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod cases;
pub mod centralization;
pub mod classes;
pub mod correlations;
pub mod coverage;
pub mod ctx;
pub mod cube;
pub mod experiments;
pub mod figures;
pub mod insularity;
pub mod latency;
pub mod longitudinal;
pub mod regional;
pub mod report;
pub mod tld_appendix;
pub mod vantage;

pub use coverage::{coverage_model, CoverageModel, LayerCoverage};
pub use ctx::AnalysisCtx;
pub use cube::{CubeBuilder, DependenceCube};
pub use experiments::{ExperimentResult, ExperimentSuite};
pub use longitudinal::{compare, EpochPoint, LongitudinalReport, Trajectory};
