//! The 2023 → 2025 longitudinal comparison (§5.4).

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use std::collections::HashSet;
use webdep_core::centralization::centralization_score;
use webdep_stats::{jaccard_index, pearson, Correlation};
use webdep_webgen::{Layer, COUNTRIES};

/// Per-country longitudinal deltas.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountryDelta {
    /// Country code.
    pub code: &'static str,
    /// Hosting centralization in the old snapshot.
    pub s_old: f64,
    /// Hosting centralization in the new snapshot.
    pub s_new: f64,
    /// Cloudflare share delta in percentage points.
    pub cloudflare_delta_pts: f64,
    /// Jaccard index between the two toplists' domain sets.
    pub jaccard: f64,
    /// US-provider share delta in percentage points.
    pub us_share_delta_pts: f64,
}

/// The full §5.4 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct LongitudinalReport {
    /// Per-country rows.
    pub deltas: Vec<CountryDelta>,
    /// ρ between old and new scores (paper: 0.98).
    pub score_correlation: Option<Correlation>,
    /// Mean Cloudflare delta in points (paper: +3.8).
    pub mean_cloudflare_delta_pts: f64,
    /// Mean Jaccard (paper: ~0.37).
    pub mean_jaccard: f64,
    /// Countries whose US reliance decreased (paper: 56 of 150).
    pub us_reliance_decreased: usize,
}

/// A country's toplist domain set. Cube-backed contexts over *hollow*
/// datasets (streaming / delta-published epochs carry no resident
/// observations) fall back to the world's toplist — the generator and the
/// measurement record the same registered domain, so the sets are equal
/// whenever both exist.
fn country_domains<'c>(ctx: &'c AnalysisCtx<'_>, ci: usize) -> HashSet<&'c str> {
    if ctx.ds.observations.is_empty() {
        ctx.world.toplists[ci]
            .iter()
            .map(|&oi| ctx.world.sites[oi as usize].domain.as_str())
            .collect()
    } else {
        ctx.ds
            .country_observations(ci)
            .map(|o| o.domain.as_str())
            .collect()
    }
}

fn cloudflare_share(ctx: &AnalysisCtx<'_>, ci: usize) -> f64 {
    ctx.world
        .universe
        .provider_by_name("Cloudflare")
        .map(|cf| ctx.owner_share(ci, Layer::Hosting, cf))
        .unwrap_or(0.0)
}

fn us_share(ctx: &AnalysisCtx<'_>, ci: usize) -> f64 {
    let counts = ctx.country_counts(ci, Layer::Hosting);
    let total = ctx.country_total(ci, Layer::Hosting);
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&(o, _)| ctx.owner_country(Layer::Hosting, o) == Some("US"))
        .map(|&(_, c)| c as f64)
        .sum::<f64>()
        / total as f64
}

/// Compares two measured snapshots (same country set).
pub fn compare(old: &AnalysisCtx<'_>, new: &AnalysisCtx<'_>) -> LongitudinalReport {
    let mut deltas = Vec::with_capacity(COUNTRIES.len());
    for (ci, country) in COUNTRIES.iter().enumerate() {
        let (Some(d_old), Some(d_new)) = (
            old.country_dist(ci, Layer::Hosting),
            new.country_dist(ci, Layer::Hosting),
        ) else {
            continue;
        };
        let domains_old = country_domains(old, ci);
        let domains_new = country_domains(new, ci);
        deltas.push(CountryDelta {
            code: country.code,
            s_old: centralization_score(&d_old),
            s_new: centralization_score(&d_new),
            cloudflare_delta_pts: 100.0 * (cloudflare_share(new, ci) - cloudflare_share(old, ci)),
            jaccard: jaccard_index(&domains_old, &domains_new),
            us_share_delta_pts: 100.0 * (us_share(new, ci) - us_share(old, ci)),
        });
    }
    let olds: Vec<f64> = deltas.iter().map(|d| d.s_old).collect();
    let news: Vec<f64> = deltas.iter().map(|d| d.s_new).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    LongitudinalReport {
        score_correlation: pearson(&olds, &news),
        mean_cloudflare_delta_pts: mean(
            &deltas
                .iter()
                .map(|d| d.cloudflare_delta_pts)
                .collect::<Vec<_>>(),
        ),
        mean_jaccard: mean(&deltas.iter().map(|d| d.jaccard).collect::<Vec<_>>()),
        us_reliance_decreased: deltas.iter().filter(|d| d.us_share_delta_pts < 0.0).count(),
        deltas,
    }
}

impl LongitudinalReport {
    /// Row by country code.
    pub fn delta(&self, code: &str) -> Option<&CountryDelta> {
        self.deltas.iter().find(|d| d.code == code)
    }

    /// The country with the largest centralization increase.
    pub fn largest_increase(&self) -> Option<&CountryDelta> {
        self.deltas.iter().max_by(|a, b| {
            (a.s_new - a.s_old)
                .partial_cmp(&(b.s_new - b.s_old))
                .expect("finite")
        })
    }
}

/// One epoch's summary point on a centralization trajectory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EpochPoint {
    /// Epoch number (position in the trajectory).
    pub epoch: usize,
    /// Snapshot label of the epoch's world.
    pub label: String,
    /// Mean hosting centralization score across measured countries.
    pub mean_score: f64,
    /// Mean Cloudflare hosting share across measured countries, percent.
    pub mean_cloudflare_pct: f64,
    /// `mean_score` change versus the previous epoch (0 for the first).
    pub drift: f64,
    /// True when the drift breaks the trajectory's own trend — see
    /// [`Trajectory::push`] for the exact rule.
    pub changepoint: bool,
}

/// A per-epoch centralization trajectory for the continuous measurement
/// loop: push one point per published epoch, read drift and changepoint
/// flags off the points.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Trajectory {
    /// Points in epoch order.
    pub points: Vec<EpochPoint>,
}

impl Trajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// Appends an epoch summarized from an analysis context (cube-backed
    /// contexts over hollow datasets work — only cube accessors are read).
    ///
    /// Drift is the mean-score change against the previous point. The
    /// changepoint rule is deterministic: with fewer than two prior
    /// drifts, a point is flagged when `|drift| > 0.05`; afterwards, when
    /// `|drift|` exceeds three times the trailing mean absolute drift
    /// (floored at 0.01, so a flat trajectory doesn't flag noise).
    pub fn push(&mut self, ctx: &AnalysisCtx<'_>) -> &EpochPoint {
        let mut scores = Vec::new();
        let mut cf = Vec::new();
        for ci in 0..COUNTRIES.len() {
            if let Some(d) = ctx.country_dist(ci, Layer::Hosting) {
                scores.push(centralization_score(&d));
                cf.push(100.0 * cloudflare_share(ctx, ci));
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        self.push_point(&ctx.world.label, mean(&scores), mean(&cf))
    }

    /// Low-level append from precomputed means — the drift/changepoint
    /// arithmetic without an analysis context (also what tests exercise).
    pub fn push_point(
        &mut self,
        label: &str,
        mean_score: f64,
        mean_cloudflare_pct: f64,
    ) -> &EpochPoint {
        let drift = match self.points.last() {
            Some(prev) => mean_score - prev.mean_score,
            None => 0.0,
        };
        // Prior drifts, excluding the first point's structural zero.
        let prior: Vec<f64> = self.points.iter().skip(1).map(|p| p.drift.abs()).collect();
        let changepoint = if self.points.is_empty() {
            false
        } else if prior.len() < 2 {
            drift.abs() > 0.05
        } else {
            let trailing = prior.iter().sum::<f64>() / prior.len() as f64;
            drift.abs() > (3.0 * trailing).max(0.01)
        };
        self.points.push(EpochPoint {
            epoch: self.points.len(),
            label: label.to_string(),
            mean_score,
            mean_cloudflare_pct,
            drift,
            changepoint,
        });
        self.points.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::fixture;
    use crate::AnalysisCtx;
    use std::sync::OnceLock;
    use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig};
    use webdep_webgen::evolve::evolve;
    use webdep_webgen::{DeployConfig, DeployedWorld, World};

    fn evolved() -> &'static (World, MeasuredDataset) {
        static EVOLVED: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
        EVOLVED.get_or_init(|| {
            let (world, _) = fixture();
            let new_world = evolve(world);
            let dep = DeployedWorld::deploy(&new_world, DeployConfig::default());
            let ds = measure(&new_world, &dep, &PipelineConfig::default());
            (new_world, ds)
        })
    }

    fn report() -> LongitudinalReport {
        let (old_world, old_ds) = fixture();
        let (new_world, new_ds) = evolved();
        compare(
            &AnalysisCtx::new(old_world, old_ds),
            &AnalysisCtx::new(new_world, new_ds),
        )
    }

    #[test]
    fn scores_stable_and_cloudflare_up() {
        let r = report();
        assert_eq!(r.deltas.len(), 150);
        let rho = r.score_correlation.unwrap().rho;
        assert!(rho > 0.9, "rho {rho}");
        assert!(
            (1.0..8.0).contains(&r.mean_cloudflare_delta_pts),
            "mean CF delta {}",
            r.mean_cloudflare_delta_pts
        );
    }

    #[test]
    fn brazil_and_turkmenistan_rise_russia_falls() {
        let r = report();
        assert!(r.delta("BR").unwrap().cloudflare_delta_pts > 5.0);
        assert!(r.delta("TM").unwrap().cloudflare_delta_pts > 6.0);
        assert!(r.delta("RU").unwrap().cloudflare_delta_pts <= 0.5);
        assert!(r.delta("RU").unwrap().us_share_delta_pts < 0.0);
    }

    #[test]
    fn jaccard_churn_in_range() {
        let r = report();
        assert!(
            (0.25..0.55).contains(&r.mean_jaccard),
            "mean jaccard {}",
            r.mean_jaccard
        );
        for d in &r.deltas {
            assert!(
                d.jaccard > 0.05 && d.jaccard < 0.95,
                "{}: {}",
                d.code,
                d.jaccard
            );
        }
    }

    #[test]
    fn some_countries_reduce_us_reliance() {
        let r = report();
        assert!(
            r.us_reliance_decreased > 10,
            "US-reliance decreases: {}",
            r.us_reliance_decreased
        );
        assert!(r.largest_increase().is_some());
    }

    /// `compare` over cube-backed contexts (the serving path) must
    /// reproduce the direct-context comparison row for row.
    #[test]
    fn compare_matches_on_cube_backed_contexts() {
        use crate::cube::DependenceCube;
        use std::collections::HashMap;

        let (old_world, old_ds) = fixture();
        let (new_world, new_ds) = evolved();
        let direct = report();

        let tld_ids = |w: &World| -> HashMap<String, u32> {
            w.universe
                .tlds
                .iter()
                .map(|t| (t.label.clone(), t.id))
                .collect()
        };
        let cube_old = DependenceCube::build(old_world, old_ds, &tld_ids(old_world));
        let cube_new = DependenceCube::build(new_world, new_ds, &tld_ids(new_world));
        let r = compare(
            &AnalysisCtx::with_cube(old_world, old_ds, cube_old),
            &AnalysisCtx::with_cube(new_world, new_ds, cube_new),
        );
        assert_eq!(r.deltas, direct.deltas);
    }

    /// Hollow datasets (no resident observations — the delta-published
    /// epoch shape) still compare: domains come from the world toplists,
    /// which name the same registered domains the measurement recorded.
    #[test]
    fn compare_matches_on_hollow_datasets() {
        use crate::cube::DependenceCube;
        use std::collections::HashMap;

        let (old_world, old_ds) = fixture();
        let (new_world, new_ds) = evolved();
        let direct = report();

        let tld_ids = |w: &World| -> HashMap<String, u32> {
            w.universe
                .tlds
                .iter()
                .map(|t| (t.label.clone(), t.id))
                .collect()
        };
        let hollow = |ds: &MeasuredDataset| MeasuredDataset {
            observations: Vec::new(),
            toplists: ds.toplists.clone(),
            global_top: ds.global_top.clone(),
            label: ds.label.clone(),
        };
        let cube_old = DependenceCube::build(old_world, old_ds, &tld_ids(old_world));
        let cube_new = DependenceCube::build(new_world, new_ds, &tld_ids(new_world));
        let (h_old, h_new) = (hollow(old_ds), hollow(new_ds));
        let r = compare(
            &AnalysisCtx::with_cube(old_world, &h_old, cube_old),
            &AnalysisCtx::with_cube(new_world, &h_new, cube_new),
        );
        assert_eq!(r.deltas, direct.deltas);
    }

    /// The changepoint rule on synthetic points: a drift in line with the
    /// trailing trend stays quiet; one that breaks it flags.
    #[test]
    fn trajectory_drift_and_changepoint_flags() {
        let mut t = Trajectory::new();
        t.push_point("e0", 0.500, 10.0);
        assert!(!t.points[0].changepoint, "first point never flags");
        assert_eq!(t.points[0].drift, 0.0);
        t.push_point("e1", 0.504, 10.2);
        assert!(!t.points[1].changepoint, "small early drift stays quiet");
        t.push_point("e2", 0.508, 10.4);
        t.push_point("e3", 0.511, 10.5);
        assert!(!t.points[3].changepoint, "in-trend drift stays quiet");
        let p = t.push_point("e4", 0.60, 14.0).clone();
        assert!(p.changepoint, "an out-of-trend jump flags");
        assert!((p.drift - 0.089).abs() < 1e-9);
        assert_eq!(p.epoch, 4);
        // A flat trajectory never flags noise below the floor.
        let mut flat = Trajectory::new();
        for (i, s) in [0.5, 0.5001, 0.5002, 0.4999, 0.5005].iter().enumerate() {
            let p = flat.push_point(&format!("f{i}"), *s, 0.0).clone();
            assert!(!p.changepoint, "f{i} flagged");
        }
    }

    /// Trajectory plumbing over real epochs: the paper evolution raises
    /// the mean Cloudflare share, and drift is the score difference.
    #[test]
    fn trajectory_tracks_real_epochs() {
        let (old_world, old_ds) = fixture();
        let (new_world, new_ds) = evolved();
        let mut t = Trajectory::new();
        t.push(&AnalysisCtx::new(old_world, old_ds));
        t.push(&AnalysisCtx::new(new_world, new_ds));
        assert_eq!(t.points.len(), 2);
        assert_eq!(t.points[0].label, old_world.label);
        assert_eq!(t.points[1].label, new_world.label);
        assert!(
            t.points[1].mean_cloudflare_pct > t.points[0].mean_cloudflare_pct,
            "paper evolution raises Cloudflare share: {} -> {}",
            t.points[0].mean_cloudflare_pct,
            t.points[1].mean_cloudflare_pct
        );
        assert_eq!(
            t.points[1].drift,
            t.points[1].mean_score - t.points[0].mean_score
        );
    }
}
