//! The 2023 → 2025 longitudinal comparison (§5.4).

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use std::collections::HashSet;
use webdep_core::centralization::centralization_score;
use webdep_stats::{jaccard_index, pearson, Correlation};
use webdep_webgen::{Layer, COUNTRIES};

/// Per-country longitudinal deltas.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountryDelta {
    /// Country code.
    pub code: &'static str,
    /// Hosting centralization in the old snapshot.
    pub s_old: f64,
    /// Hosting centralization in the new snapshot.
    pub s_new: f64,
    /// Cloudflare share delta in percentage points.
    pub cloudflare_delta_pts: f64,
    /// Jaccard index between the two toplists' domain sets.
    pub jaccard: f64,
    /// US-provider share delta in percentage points.
    pub us_share_delta_pts: f64,
}

/// The full §5.4 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct LongitudinalReport {
    /// Per-country rows.
    pub deltas: Vec<CountryDelta>,
    /// ρ between old and new scores (paper: 0.98).
    pub score_correlation: Option<Correlation>,
    /// Mean Cloudflare delta in points (paper: +3.8).
    pub mean_cloudflare_delta_pts: f64,
    /// Mean Jaccard (paper: ~0.37).
    pub mean_jaccard: f64,
    /// Countries whose US reliance decreased (paper: 56 of 150).
    pub us_reliance_decreased: usize,
}

fn cloudflare_share(ctx: &AnalysisCtx<'_>, ci: usize) -> f64 {
    ctx.world
        .universe
        .provider_by_name("Cloudflare")
        .map(|cf| ctx.owner_share(ci, Layer::Hosting, cf))
        .unwrap_or(0.0)
}

fn us_share(ctx: &AnalysisCtx<'_>, ci: usize) -> f64 {
    let counts = ctx.country_counts(ci, Layer::Hosting);
    let total = ctx.country_total(ci, Layer::Hosting);
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&(o, _)| ctx.owner_country(Layer::Hosting, o) == Some("US"))
        .map(|&(_, c)| c as f64)
        .sum::<f64>()
        / total as f64
}

/// Compares two measured snapshots (same country set).
pub fn compare(old: &AnalysisCtx<'_>, new: &AnalysisCtx<'_>) -> LongitudinalReport {
    let mut deltas = Vec::with_capacity(COUNTRIES.len());
    for (ci, country) in COUNTRIES.iter().enumerate() {
        let (Some(d_old), Some(d_new)) = (
            old.country_dist(ci, Layer::Hosting),
            new.country_dist(ci, Layer::Hosting),
        ) else {
            continue;
        };
        let domains_old: HashSet<&str> = old
            .ds
            .country_observations(ci)
            .map(|o| o.domain.as_str())
            .collect();
        let domains_new: HashSet<&str> = new
            .ds
            .country_observations(ci)
            .map(|o| o.domain.as_str())
            .collect();
        deltas.push(CountryDelta {
            code: country.code,
            s_old: centralization_score(&d_old),
            s_new: centralization_score(&d_new),
            cloudflare_delta_pts: 100.0 * (cloudflare_share(new, ci) - cloudflare_share(old, ci)),
            jaccard: jaccard_index(&domains_old, &domains_new),
            us_share_delta_pts: 100.0 * (us_share(new, ci) - us_share(old, ci)),
        });
    }
    let olds: Vec<f64> = deltas.iter().map(|d| d.s_old).collect();
    let news: Vec<f64> = deltas.iter().map(|d| d.s_new).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    LongitudinalReport {
        score_correlation: pearson(&olds, &news),
        mean_cloudflare_delta_pts: mean(
            &deltas
                .iter()
                .map(|d| d.cloudflare_delta_pts)
                .collect::<Vec<_>>(),
        ),
        mean_jaccard: mean(&deltas.iter().map(|d| d.jaccard).collect::<Vec<_>>()),
        us_reliance_decreased: deltas.iter().filter(|d| d.us_share_delta_pts < 0.0).count(),
        deltas,
    }
}

impl LongitudinalReport {
    /// Row by country code.
    pub fn delta(&self, code: &str) -> Option<&CountryDelta> {
        self.deltas.iter().find(|d| d.code == code)
    }

    /// The country with the largest centralization increase.
    pub fn largest_increase(&self) -> Option<&CountryDelta> {
        self.deltas.iter().max_by(|a, b| {
            (a.s_new - a.s_old)
                .partial_cmp(&(b.s_new - b.s_old))
                .expect("finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::fixture;
    use crate::AnalysisCtx;
    use std::sync::OnceLock;
    use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig};
    use webdep_webgen::evolve::evolve;
    use webdep_webgen::{DeployConfig, DeployedWorld, World};

    fn evolved() -> &'static (World, MeasuredDataset) {
        static EVOLVED: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
        EVOLVED.get_or_init(|| {
            let (world, _) = fixture();
            let new_world = evolve(world);
            let dep = DeployedWorld::deploy(&new_world, DeployConfig::default());
            let ds = measure(&new_world, &dep, &PipelineConfig::default());
            (new_world, ds)
        })
    }

    fn report() -> LongitudinalReport {
        let (old_world, old_ds) = fixture();
        let (new_world, new_ds) = evolved();
        compare(
            &AnalysisCtx::new(old_world, old_ds),
            &AnalysisCtx::new(new_world, new_ds),
        )
    }

    #[test]
    fn scores_stable_and_cloudflare_up() {
        let r = report();
        assert_eq!(r.deltas.len(), 150);
        let rho = r.score_correlation.unwrap().rho;
        assert!(rho > 0.9, "rho {rho}");
        assert!(
            (1.0..8.0).contains(&r.mean_cloudflare_delta_pts),
            "mean CF delta {}",
            r.mean_cloudflare_delta_pts
        );
    }

    #[test]
    fn brazil_and_turkmenistan_rise_russia_falls() {
        let r = report();
        assert!(r.delta("BR").unwrap().cloudflare_delta_pts > 5.0);
        assert!(r.delta("TM").unwrap().cloudflare_delta_pts > 6.0);
        assert!(r.delta("RU").unwrap().cloudflare_delta_pts <= 0.5);
        assert!(r.delta("RU").unwrap().us_share_delta_pts < 0.0);
    }

    #[test]
    fn jaccard_churn_in_range() {
        let r = report();
        assert!(
            (0.25..0.55).contains(&r.mean_jaccard),
            "mean jaccard {}",
            r.mean_jaccard
        );
        for d in &r.deltas {
            assert!(
                d.jaccard > 0.05 && d.jaccard < 0.95,
                "{}: {}",
                d.code,
                d.jaccard
            );
        }
    }

    #[test]
    fn some_countries_reduce_us_reliance() {
        let r = report();
        assert!(
            r.us_reliance_decreased > 10,
            "US-reliance decreases: {}",
            r.us_reliance_decreased
        );
        assert!(r.largest_increase().is_some());
    }
}
