//! Insularity analyses (§5.3.1, §7.2, Appendix B/D; Figures 10, 11, 13,
//! 20–22).

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use webdep_stats::hist::ecdf;
use webdep_webgen::{Layer, COUNTRIES};

/// One row of an insularity table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountryInsularity {
    /// Rank, 1 = most insular.
    pub rank: usize,
    /// Country code.
    pub code: &'static str,
    /// Continent code.
    pub continent: &'static str,
    /// Fraction of websites served by in-country providers.
    pub insularity: f64,
    /// The country's largest single-country dependence: `(country, share)`
    /// — itself for insular countries, foreign otherwise.
    pub top_dependence: (String, f64),
}

/// A layer's insularity table, most insular first.
#[derive(Debug, Clone, Serialize)]
pub struct InsularityTable {
    /// The layer.
    pub layer_name: &'static str,
    /// Rows, most insular first.
    pub rows: Vec<CountryInsularity>,
}

/// Computes a country's insularity at a layer.
///
/// Ownership country comes from the measured org/CA/TLD metadata; for the
/// TLD layer, `.com` counts as insular to the US (Appendix B convention).
pub fn country_insularity(ctx: &AnalysisCtx<'_>, country_idx: usize, layer: Layer) -> Option<f64> {
    let code = COUNTRIES[country_idx].code;
    let counts = ctx.country_counts(country_idx, layer);
    let total = ctx.country_total(country_idx, layer);
    if total == 0 {
        return None;
    }
    let own: u64 = counts
        .iter()
        .filter(|&&(owner, _)| ctx.owner_country(layer, owner) == Some(code))
        .map(|&(_, c)| c)
        .sum();
    Some(own as f64 / total as f64)
}

/// Full per-country dependence shares at a layer: provider-country →
/// share, sorted descending. Owners without a home country (global TLDs)
/// are excluded from attribution but stay in the denominator.
pub fn dependence_shares(
    ctx: &AnalysisCtx<'_>,
    country_idx: usize,
    layer: Layer,
) -> Vec<(String, f64)> {
    let counts = ctx.country_counts(country_idx, layer);
    let total = ctx.country_total(country_idx, layer);
    if total == 0 {
        return Vec::new();
    }
    let mut tally: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for &(owner, c) in counts.iter() {
        if let Some(cc) = ctx.owner_country(layer, owner) {
            *tally.entry(cc.to_string()).or_insert(0) += c;
        }
    }
    let mut v: Vec<(String, f64)> = tally
        .into_iter()
        .map(|(cc, c)| (cc, c as f64 / total as f64))
        .collect();
    // Tie-break on country code: the tally is HashMap-fed, so equal shares
    // would otherwise surface in randomized iteration order.
    v.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite")
            .then_with(|| a.0.cmp(&b.0))
    });
    v
}

/// Builds the layer's insularity table (Figures 13 and 20–22).
pub fn insularity_table(ctx: &AnalysisCtx<'_>, layer: Layer) -> InsularityTable {
    // Countries are independent; fan them across cores. Results come back
    // in country order, so the table matches the sequential one.
    let mut rows: Vec<CountryInsularity> = webdep_stats::par_map_indices(
        COUNTRIES.len(),
        webdep_stats::par::default_threads(),
        |ci| {
            let country = &COUNTRIES[ci];
            let ins = country_insularity(ctx, ci, layer)?;
            let deps = dependence_shares(ctx, ci, layer);
            let top = deps
                .first()
                .cloned()
                .unwrap_or_else(|| (country.code.to_string(), 0.0));
            Some(CountryInsularity {
                rank: 0,
                code: country.code,
                continent: country.continent.code(),
                insularity: ins,
                top_dependence: top,
            })
        },
    )
    .into_iter()
    .flatten()
    .collect();
    rows.sort_by(|a, b| b.insularity.partial_cmp(&a.insularity).expect("finite"));
    for (i, r) in rows.iter_mut().enumerate() {
        r.rank = i + 1;
    }
    InsularityTable {
        layer_name: layer.name(),
        rows,
    }
}

impl InsularityTable {
    /// Row by country code.
    pub fn row(&self, code: &str) -> Option<&CountryInsularity> {
        self.rows.iter().find(|r| r.code == code)
    }

    /// Number of countries with any in-country usage at all (the paper:
    /// only 24 countries use a CA in their own country).
    pub fn countries_with_nonzero(&self) -> usize {
        self.rows.iter().filter(|r| r.insularity > 0.0).count()
    }

    /// Mean insularity over a continent code.
    pub fn continent_mean(&self, continent: &str) -> Option<f64> {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.continent == continent)
            .map(|r| r.insularity)
            .collect();
        webdep_stats::describe::mean(&vals)
    }

    /// The empirical CDF of insularity values (Figure 11).
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let vals: Vec<f64> = self.rows.iter().map(|r| r.insularity).collect();
        ecdf(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn us_tops_hosting_insularity() {
        let c = ctx();
        let t = insularity_table(&c, Layer::Hosting);
        assert_eq!(t.rows[0].code, "US", "US is the most insular country");
        assert!(t.rows[0].insularity > 0.75);
        for code in ["IR", "CZ", "RU"] {
            let r = t.row(code).unwrap();
            assert!(r.rank <= 15, "{code} rank {}", r.rank);
        }
    }

    #[test]
    fn africa_has_low_hosting_insularity() {
        let c = ctx();
        let t = insularity_table(&c, Layer::Hosting);
        let af = t.continent_mean("AF").unwrap();
        let eu = t.continent_mean("EU").unwrap();
        assert!(af < 0.12, "Africa mean {af}");
        assert!(eu > af, "Europe {eu} vs Africa {af}");
    }

    #[test]
    fn turkmenistan_depends_on_russia() {
        let c = ctx();
        let tm = webdep_webgen::World::country_index("TM").unwrap();
        let deps = dependence_shares(&c, tm, Layer::Hosting);
        let ru = deps
            .iter()
            .find(|(cc, _)| cc == "RU")
            .map(|&(_, s)| s)
            .unwrap_or(0.0);
        assert!(ru > 0.15, "RU share {ru}");
        let own = country_insularity(&c, tm, Layer::Hosting).unwrap();
        assert!(own < 0.10, "TM insularity {own}");
    }

    #[test]
    fn ca_insularity_is_sparse_and_low() {
        let c = ctx();
        let t = insularity_table(&c, Layer::Ca);
        let nonzero = t.countries_with_nonzero();
        assert!(
            (5..=45).contains(&nonzero),
            "countries with domestic CA usage: {nonzero}"
        );
        assert_eq!(t.rows[0].code, "US");
    }

    #[test]
    fn tld_insularity_highest_of_all_layers() {
        let c = ctx();
        let tld = insularity_table(&c, Layer::Tld);
        let hosting = insularity_table(&c, Layer::Hosting);
        let mean = |t: &InsularityTable| {
            t.rows.iter().map(|r| r.insularity).sum::<f64>() / t.rows.len() as f64
        };
        assert!(
            mean(&tld) > mean(&hosting),
            "tld {} vs hosting {}",
            mean(&tld),
            mean(&hosting)
        );
        assert!(tld.row("US").unwrap().insularity > 0.6);
    }

    #[test]
    fn cdf_is_monotone() {
        let c = ctx();
        let t = insularity_table(&c, Layer::Dns);
        let cdf = t.cdf();
        assert!(!cdf.is_empty());
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }
}
