//! The paper's headline correlations (§5.2, §5.3.1, §6, Appendix B).

use crate::classes::{Classification, ProviderClass};
use crate::ctx::AnalysisCtx;
use crate::insularity::country_insularity;
use serde::{Deserialize, Serialize};
use webdep_core::centralization::centralization_score;
use webdep_stats::{pearson, Correlation};
use webdep_webgen::{Layer, COUNTRIES};

/// The §5.2 class-share correlations plus §5.3.1 insularity correlation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassCorrelations {
    /// ρ(S, XL-GP share) — paper: 0.90 (strong).
    pub s_vs_xlgp: Option<Correlation>,
    /// ρ(S, non-XL large-global share) — paper: 0.19 (poor).
    pub s_vs_lgp: Option<Correlation>,
    /// ρ(S, large-regional share) — paper: −0.72 (moderate, negative).
    pub s_vs_lrp: Option<Correlation>,
    /// ρ(S, insularity) — paper: −0.61 (moderate, negative).
    pub s_vs_insularity: Option<Correlation>,
}

/// Computes the §5.2 correlations for a provider layer.
pub fn class_correlations(
    ctx: &AnalysisCtx<'_>,
    layer: Layer,
    classes: &Classification,
) -> ClassCorrelations {
    let mut s = Vec::new();
    let mut xlgp = Vec::new();
    let mut lgp = Vec::new();
    let mut lrp = Vec::new();
    let mut ins = Vec::new();
    for (ci, _) in COUNTRIES.iter().enumerate() {
        let Some(dist) = ctx.country_dist(ci, layer) else {
            continue;
        };
        let counts = ctx.country_counts(ci, layer);
        let total = ctx.country_total(ci, layer);
        let share_of = |pred: &dyn Fn(ProviderClass) -> bool| -> f64 {
            counts
                .iter()
                .filter(|&&(o, _)| pred(classes.class(o)))
                .map(|&(_, c)| c as f64)
                .sum::<f64>()
                / total as f64
        };
        xlgp.push(share_of(&|c| c == ProviderClass::XlGp));
        lgp.push(share_of(&|c| {
            matches!(c, ProviderClass::LGp | ProviderClass::LGpR)
        }));
        lrp.push(share_of(&|c| c == ProviderClass::LRp));
        s.push(centralization_score(&dist));
        ins.push(country_insularity(ctx, ci, layer).unwrap_or(0.0));
    }
    ClassCorrelations {
        s_vs_xlgp: pearson(&s, &xlgp),
        s_vs_lgp: pearson(&s, &lgp),
        s_vs_lrp: pearson(&s, &lrp),
        s_vs_insularity: pearson(&s, &ins),
    }
}

/// ρ between hosting insularity and TLD insularity (Appendix B: 0.70).
pub fn hosting_vs_tld_insularity(ctx: &AnalysisCtx<'_>) -> Option<Correlation> {
    let mut hosting = Vec::new();
    let mut tld = Vec::new();
    for ci in 0..COUNTRIES.len() {
        match (
            country_insularity(ctx, ci, Layer::Hosting),
            country_insularity(ctx, ci, Layer::Tld),
        ) {
            (Some(h), Some(t)) => {
                hosting.push(h);
                tld.push(t);
            }
            _ => continue,
        }
    }
    pearson(&hosting, &tld)
}

/// ρ between two layers' centralization scores (e.g. hosting vs DNS).
pub fn layer_score_correlation(ctx: &AnalysisCtx<'_>, a: Layer, b: Layer) -> Option<Correlation> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for ci in 0..COUNTRIES.len() {
        match (ctx.country_dist(ci, a), ctx.country_dist(ci, b)) {
            (Some(da), Some(db)) => {
                xs.push(centralization_score(&da));
                ys.push(centralization_score(&db));
            }
            _ => continue,
        }
    }
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::classify;
    use crate::ctx::testutil::ctx;
    use webdep_stats::CorrelationStrength;

    #[test]
    fn xlgp_share_strongly_correlates_with_centralization() {
        let c = ctx();
        let classes = classify(&c, Layer::Hosting);
        let corr = class_correlations(&c, Layer::Hosting, &classes);
        let x = corr.s_vs_xlgp.unwrap();
        assert!(x.rho > 0.7, "rho = {}", x.rho);
        assert!(x.significant_at(0.05));
    }

    #[test]
    fn lrp_share_negatively_correlates() {
        let c = ctx();
        let classes = classify(&c, Layer::Hosting);
        let corr = class_correlations(&c, Layer::Hosting, &classes);
        let l = corr.s_vs_lrp.unwrap();
        assert!(l.rho < -0.3, "rho = {}", l.rho);
    }

    #[test]
    fn lgp_correlation_weaker_than_xlgp() {
        let c = ctx();
        let classes = classify(&c, Layer::Hosting);
        let corr = class_correlations(&c, Layer::Hosting, &classes);
        let xl = corr.s_vs_xlgp.unwrap().rho;
        let l = corr.s_vs_lgp.unwrap().rho;
        assert!(l.abs() < xl.abs(), "L-GP {l} vs XL-GP {xl}");
    }

    #[test]
    fn insularity_negatively_correlates_with_centralization() {
        let c = ctx();
        let classes = classify(&c, Layer::Hosting);
        let corr = class_correlations(&c, Layer::Hosting, &classes);
        let i = corr.s_vs_insularity.unwrap();
        assert!(i.rho < -0.2, "rho = {}", i.rho);
    }

    #[test]
    fn hosting_and_tld_insularity_couple() {
        let c = ctx();
        let corr = hosting_vs_tld_insularity(&c).unwrap();
        assert!(corr.rho > 0.35, "rho = {}", corr.rho);
        assert!(!matches!(corr.strength(), CorrelationStrength::Poor));
    }

    #[test]
    fn hosting_and_dns_scores_track() {
        let c = ctx();
        let corr = layer_score_correlation(&c, Layer::Hosting, Layer::Dns).unwrap();
        assert!(corr.rho > 0.8, "rho = {}", corr.rho);
    }
}
