//! The §3.4 vantage-point validation.
//!
//! The paper re-resolves each country's toplist through RIPE probes in
//! that country and finds the resulting centralization scores correlate
//! with the Stanford-vantage scores at ρ = 0.96. Here the analogue
//! re-resolves a sample of each country's sites from the country's own
//! continent (GeoDNS answers differ for CDN-hosted sites) and correlates
//! the per-country scores.

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use webdep_core::centralization::centralization_score_counts_ref;
use webdep_pipeline::resolve_hosting_orgs;
use webdep_stats::{pearson, Correlation};
use webdep_webgen::{DeployedWorld, COUNTRIES};

/// Result of the vantage validation experiment.
#[derive(Debug, Clone, Serialize)]
pub struct VantageValidation {
    /// Per-country `(code, default_vantage_s, local_vantage_s)`.
    pub scores: Vec<(String, f64, f64)>,
    /// ρ between the two score columns (paper: 0.96).
    pub correlation: Option<Correlation>,
    /// Sites sampled per country.
    pub sample: usize,
}

/// Runs the experiment over every `stride`-th country with `sample` sites
/// each. The default-vantage score is recomputed over the *same sample* so
/// the comparison isolates the vantage effect (not sampling noise).
pub fn validate_vantage(
    ctx: &AnalysisCtx<'_>,
    dep: &DeployedWorld,
    sample: usize,
    stride: usize,
) -> VantageValidation {
    let mut scores = Vec::new();
    for (ci, country) in COUNTRIES.iter().enumerate().step_by(stride.max(1)) {
        // Local-continent vantage (the RIPE-probe analogue).
        let local = resolve_hosting_orgs(ctx.world, dep, ci, country.continent, sample);
        // Default vantage over the same sampled sites.
        let default = resolve_hosting_orgs(
            ctx.world,
            dep,
            ci,
            webdep_webgen::Continent::NorthAmerica,
            sample,
        );
        let score_of = |orgs: &[Option<u32>]| -> Option<f64> {
            let mut tally: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            for org in orgs.iter().flatten() {
                *tally.entry(*org).or_insert(0) += 1;
            }
            // Sort so the fused kernel's summation order (and thus the
            // score's last bits) never depends on HashMap iteration.
            let mut counts: Vec<u64> = tally.into_values().collect();
            counts.sort_unstable();
            centralization_score_counts_ref(&counts)
        };
        if let (Some(s_default), Some(s_local)) = (score_of(&default), score_of(&local)) {
            scores.push((country.code.to_string(), s_default, s_local));
        }
    }
    let xs: Vec<f64> = scores.iter().map(|s| s.1).collect();
    let ys: Vec<f64> = scores.iter().map(|s| s.2).collect();
    VantageValidation {
        correlation: pearson(&xs, &ys),
        scores,
        sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::fixture;
    use crate::AnalysisCtx;
    use webdep_webgen::{DeployConfig, DeployedWorld};

    #[test]
    fn vantage_scores_strongly_correlate() {
        let (world, ds) = fixture();
        let ctx = AnalysisCtx::new(world, ds);
        // Fresh deployment (the fixture's deployment is not retained).
        let dep = DeployedWorld::deploy(world, DeployConfig::default());
        let v = validate_vantage(&ctx, &dep, 60, 10);
        assert!(v.scores.len() >= 10, "{} countries", v.scores.len());
        let rho = v.correlation.unwrap().rho;
        assert!(rho > 0.9, "rho {rho} (paper: 0.96)");
    }
}
