//! Latency cost of dependence — a toolkit extension quantifying the §8
//! discussion ("availability and performance could be impacted not only by
//! a provider outage, but also by a geopolitical schism").
//!
//! Every measured site is charged a modelled round-trip from its country's
//! continent to where its content is actually served: anycast/CDN sites
//! serve locally (intra-continent RTT); everything else serves from the
//! continent its serving IP geolocates to. Countries that depend on
//! faraway providers pay for it here — Africa's reliance on North American
//! and European hosting (Figure 8) becomes a concrete RTT penalty.

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use webdep_netsim::LatencyModel;
use webdep_webgen::{Continent, CountryRecord, COUNTRIES};

/// One country's modelled content-fetch latency.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CountryLatency {
    /// Country code.
    pub code: &'static str,
    /// Continent code.
    pub continent: &'static str,
    /// Mean modelled RTT to serving infrastructure, milliseconds.
    pub mean_rtt_ms: f64,
    /// Fraction of sites served within the country's own continent
    /// (anycast or locally geolocated).
    pub served_locally: f64,
}

/// Modelled RTT table for the hosting layer, slowest countries first.
pub fn latency_table(ctx: &AnalysisCtx<'_>, model: &LatencyModel) -> Vec<CountryLatency> {
    let mut rows: Vec<CountryLatency> = COUNTRIES
        .iter()
        .enumerate()
        .filter_map(|(ci, country)| {
            let user_region = country.continent.region();
            let mut total_ms = 0.0;
            let mut local = 0usize;
            let mut n = 0usize;
            for obs in ctx.ds.country_observations(ci) {
                let serving = if obs.hosting_anycast {
                    // Anycast serves from the nearest point of presence.
                    country.continent
                } else {
                    match obs
                        .hosting_ip_country
                        .as_deref()
                        .and_then(CountryRecord::by_code)
                    {
                        Some(c) => c.continent,
                        None => continue,
                    }
                };
                let rtt = model.rtt(user_region, serving.region());
                total_ms += rtt.as_millis() as f64;
                if serving == country.continent {
                    local += 1;
                }
                n += 1;
            }
            if n == 0 {
                return None;
            }
            Some(CountryLatency {
                code: country.code,
                continent: country.continent.code(),
                mean_rtt_ms: total_ms / n as f64,
                served_locally: local as f64 / n as f64,
            })
        })
        .collect();
    rows.sort_by(|a, b| b.mean_rtt_ms.partial_cmp(&a.mean_rtt_ms).expect("finite"));
    rows
}

/// Mean modelled RTT per continent code.
pub fn continent_means(rows: &[CountryLatency]) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Continent::ALL
        .iter()
        .filter_map(|c| {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.continent == c.code())
                .map(|r| r.mean_rtt_ms)
                .collect();
            webdep_stats::describe::mean(&vals).map(|m| (c.code().to_string(), m))
        })
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn africa_pays_the_dependence_penalty() {
        let c = ctx();
        let rows = latency_table(&c, &LatencyModel::default());
        assert_eq!(rows.len(), 150);
        let means = continent_means(&rows);
        let of = |code: &str| {
            means
                .iter()
                .find(|(c, _)| c == code)
                .map(|&(_, m)| m)
                .unwrap()
        };
        // Africa's reliance on NA/EU infrastructure costs real RTT compared
        // to the self-reliant continents.
        assert!(of("AF") > of("NA"), "AF {} vs NA {}", of("AF"), of("NA"));
        assert!(of("AF") > of("EU"), "AF {} vs EU {}", of("AF"), of("EU"));
    }

    #[test]
    fn locality_and_latency_anticorrelate() {
        let c = ctx();
        let rows = latency_table(&c, &LatencyModel::default());
        let local: Vec<f64> = rows.iter().map(|r| r.served_locally).collect();
        let rtt: Vec<f64> = rows.iter().map(|r| r.mean_rtt_ms).collect();
        let corr = webdep_stats::pearson(&local, &rtt).unwrap();
        assert!(corr.rho < -0.6, "rho = {}", corr.rho);
    }

    #[test]
    fn bounds_are_sane() {
        let c = ctx();
        let model = LatencyModel::default();
        for r in latency_table(&c, &model) {
            assert!(
                (20.0..=300.0).contains(&r.mean_rtt_ms),
                "{}: {}",
                r.code,
                r.mean_rtt_ms
            );
            assert!((0.0..=1.0).contains(&r.served_locally));
        }
    }
}
