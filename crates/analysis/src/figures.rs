//! Data series for Figures 1–4 and 12 (the remaining figures are views of
//! the tables produced elsewhere: 5/17–19 from [`crate::centralization`],
//! 7/14–16 from [`crate::breakdown`], 8–10 from [`crate::regional`],
//! 11/13/20–22 from [`crate::insularity`]).

use crate::ctx::AnalysisCtx;
use serde::Serialize;
use webdep_core::centralization::{centralization_score, centralization_score_counts_ref};
use webdep_core::emd::emd_to_decentralized_via_transport_with;
use webdep_core::regionalization::UsageCurve;
use webdep_core::topn::{provider_rank_curve, top_n_share};
use webdep_core::CountDist;
use webdep_core::EmdWorkspace;
use webdep_stats::hist::Histogram;
use webdep_webgen::calibrate::solve_counts;
use webdep_webgen::{Layer, World};

/// Figure 1: the top-N blind spot. Rank curves for the paper's four
/// example countries plus their top-5 shares and scores.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1TopNShortcoming {
    /// `(country, rank_curve_percentages, top5_share, s)`.
    pub curves: Vec<(String, Vec<f64>, f64, f64)>,
}

/// Builds Figure 1 from measured hosting data (AZ, HK, TH, IR).
pub fn fig1_topn_shortcoming(ctx: &AnalysisCtx<'_>) -> Fig1TopNShortcoming {
    let curves = ["AZ", "HK", "TH", "IR"]
        .iter()
        .filter_map(|code| {
            let ci = World::country_index(code)?;
            let dist = ctx.country_dist(ci, Layer::Hosting)?;
            Some((
                code.to_string(),
                provider_rank_curve(&dist),
                top_n_share(&dist, 5),
                centralization_score(&dist),
            ))
        })
        .collect();
    Fig1TopNShortcoming { curves }
}

/// Figure 2: the worked EMD example. Two 25-site toy distributions whose
/// scores reproduce the figure's 0.28 (Country A) and 0.32 (Country B).
#[derive(Debug, Clone, Serialize)]
pub struct Fig2EmdExample {
    /// Country A counts and score.
    pub country_a: (Vec<u64>, f64),
    /// Country B counts and score.
    pub country_b: (Vec<u64>, f64),
    /// Scores recomputed via the generic transportation solver (equal to
    /// the closed form by Appendix A).
    pub via_transport: (f64, f64),
}

/// Builds the Figure 2 example (independent of measurement).
pub fn fig2_emd_example() -> Fig2EmdExample {
    let a = vec![12u64, 6, 4, 2, 1];
    let b = vec![13u64, 6, 4, 2];
    let s_a = centralization_score_counts_ref(&a).expect("non-empty");
    let s_b = centralization_score_counts_ref(&b).expect("non-empty");
    let dist_a = CountDist::from_counts(a.clone()).expect("non-empty");
    let dist_b = CountDist::from_counts(b.clone()).expect("non-empty");
    let mut ws = EmdWorkspace::new();
    let t_a = emd_to_decentralized_via_transport_with(&dist_a, &mut ws).expect("solvable");
    let t_b = emd_to_decentralized_via_transport_with(&dist_b, &mut ws).expect("solvable");
    Fig2EmdExample {
        country_a: (a, s_a),
        country_b: (b, s_b),
        via_transport: (t_a, t_b),
    }
}

/// Figure 3: synthetic distributions at the paper's example score values,
/// as cumulative-website curves.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3ExampleCurves {
    /// `(target_s, achieved_s, cumulative_counts)` per curve.
    pub curves: Vec<(f64, f64, Vec<u64>)>,
}

/// The paper's Figure 3 score ladder.
pub const FIG3_TARGETS: [f64; 7] = [0.818, 0.481, 0.25, 0.111, 0.026, 0.005, 0.001];

/// Builds Figure 3 for `total` websites (the paper uses 10,000).
pub fn fig3_example_curves(total: u64) -> Fig3ExampleCurves {
    let curves = FIG3_TARGETS
        .iter()
        .map(|&target| {
            let head = (target.sqrt() * 0.999).clamp(0.001, 0.98);
            let counts = solve_counts(target, total, (total as usize).min(10_000), head);
            let achieved = centralization_score_counts_ref(&counts).expect("non-empty");
            let mut cum = Vec::with_capacity(counts.len());
            let mut acc = 0u64;
            for c in &counts {
                acc += c;
                cum.push(acc);
            }
            (target, achieved, cum)
        })
        .collect();
    Fig3ExampleCurves { curves }
}

/// Figure 4: usage and endemicity for a global vs a regional provider.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4UsageEndemicity {
    /// Provider name.
    pub name: String,
    /// Sorted per-country usage percentages.
    pub curve: Vec<f64>,
    /// Usage `U`.
    pub usage: f64,
    /// Endemicity `E`.
    pub endemicity: f64,
    /// Endemicity ratio `E_R`.
    pub endemicity_ratio: f64,
}

/// Builds Figure 4's two curves from measured hosting data.
pub fn fig4_usage_endemicity(
    ctx: &AnalysisCtx<'_>,
    global_name: &str,
    regional_name: &str,
) -> Vec<Fig4UsageEndemicity> {
    let usage = ctx.usage_matrix(Layer::Hosting);
    [global_name, regional_name]
        .iter()
        .filter_map(|name| {
            let id = ctx.world.universe.provider_by_name(name)?;
            let row = usage.get(&id)?;
            let curve = UsageCurve::new(row.clone());
            Some(Fig4UsageEndemicity {
                name: name.to_string(),
                curve: curve.values().to_vec(),
                usage: curve.usage(),
                endemicity: curve.endemicity(),
                endemicity_ratio: curve.endemicity_ratio(),
            })
        })
        .collect()
}

/// Figure 12: per-layer score histograms plus the global-top marker.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Histograms {
    /// `(layer, histogram, global_top_marker)` per layer.
    pub layers: Vec<(String, Histogram, Option<f64>)>,
}

/// Builds Figure 12 with the paper's axis (0–0.7, 0.02-wide bins).
pub fn fig12_histograms(ctx: &AnalysisCtx<'_>) -> Fig12Histograms {
    let layers = Layer::ALL
        .iter()
        .map(|&layer| {
            let t = crate::centralization::layer_table(ctx, layer);
            let scores: Vec<f64> = t.rows.iter().map(|r| r.s).collect();
            (
                layer.name().to_string(),
                Histogram::new(0.0, 0.7, 35, &scores),
                t.global_top_score,
            )
        })
        .collect();
    Fig12Histograms { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::testutil::ctx;

    #[test]
    fn fig1_reproduces_the_blind_spot() {
        let c = ctx();
        let f = fig1_topn_shortcoming(&c);
        assert_eq!(f.curves.len(), 4);
        let get = |code: &str| f.curves.iter().find(|c| c.0 == code).unwrap();
        let (_, _, _, s_th) = get("TH");
        let (_, _, _, s_ir) = get("IR");
        // Thailand far more centralized than Iran (the reference extremes).
        assert!(*s_th > 3.0 * s_ir, "TH {s_th} vs IR {s_ir}");
        // Azerbaijan more centralized than Hong Kong despite similar top-5
        // coverage — the paper's motivating observation.
        let (_, az_curve, az5, s_az) = get("AZ");
        let (_, _, hk5, s_hk) = get("HK");
        assert!((az5 - hk5).abs() < 0.25, "top-5 roughly comparable");
        assert!(s_az > s_hk, "AZ {s_az} vs HK {s_hk}");
        assert!(az_curve.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn fig2_scores_match_paper() {
        let f = fig2_emd_example();
        assert!(
            (f.country_a.1 - 0.28).abs() < 0.005,
            "A = {}",
            f.country_a.1
        );
        assert!(
            (f.country_b.1 - 0.32).abs() < 0.005,
            "B = {}",
            f.country_b.1
        );
        // Appendix A: transport solver agrees with the closed form.
        assert!((f.via_transport.0 - f.country_a.1).abs() < 1e-9);
        assert!((f.via_transport.1 - f.country_b.1).abs() < 1e-9);
    }

    #[test]
    fn fig3_hits_the_score_ladder() {
        let f = fig3_example_curves(10_000);
        assert_eq!(f.curves.len(), 7);
        for (target, achieved, cum) in &f.curves {
            assert!(
                (target - achieved).abs() < 0.02 * (1.0 + target * 10.0),
                "target {target}, achieved {achieved}"
            );
            assert_eq!(*cum.last().unwrap(), 10_000);
            assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn fig4_global_vs_regional() {
        let c = ctx();
        let f = fig4_usage_endemicity(&c, "Cloudflare", "Beget");
        assert_eq!(f.len(), 2);
        let cf = &f[0];
        let beget = &f[1];
        assert!(cf.usage > beget.usage, "Cloudflare is larger");
        assert!(
            cf.endemicity_ratio < beget.endemicity_ratio,
            "Beget is more endemic: {} vs {}",
            cf.endemicity_ratio,
            beget.endemicity_ratio
        );
        assert!(beget.endemicity_ratio > 0.6);
    }

    #[test]
    fn fig12_histograms_cover_all_countries() {
        let c = ctx();
        let f = fig12_histograms(&c);
        assert_eq!(f.layers.len(), 4);
        for (name, hist, marker) in &f.layers {
            assert_eq!(hist.total() + hist.out_of_range, 150, "{name}");
            assert!(marker.is_some(), "{name} needs a global marker");
        }
    }
}
