//! Country-side regionalization metric (§3.3): insularity.
//!
//! The insularity of a layer for a country is the fraction of that country's
//! popular websites for which the layer is served by a provider based in the
//! same country (e.g. US hosting insularity is 92.1% in the paper). It
//! captures infrastructure self-sufficiency and anchors the cross-border
//! dependence analyses of §5.3.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Input row for an insularity computation: how many of a country's websites
/// are served by providers based in `provider_country`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsularityInput<C> {
    /// Country (or other home label) of the serving provider.
    pub provider_country: C,
    /// Number of the measured country's websites served from there.
    pub websites: u64,
}

/// Fraction of websites served by providers based in `home`, in `[0, 1]`.
///
/// Returns `None` when the rows carry no websites at all.
pub fn insularity<C: PartialEq>(home: &C, rows: &[InsularityInput<C>]) -> Option<f64> {
    let total: u64 = rows.iter().map(|r| r.websites).sum();
    if total == 0 {
        return None;
    }
    let own: u64 = rows
        .iter()
        .filter(|r| &r.provider_country == home)
        .map(|r| r.websites)
        .sum();
    Some(own as f64 / total as f64)
}

/// Full dependence vector: the share of websites served from each provider
/// country, sorted by descending share. The first entry is the country's
/// biggest (possibly foreign) dependence — the basis of the §5.3.3 case
/// studies.
pub fn dependence_shares<C: std::hash::Hash + Eq + Ord + Clone>(
    rows: &[InsularityInput<C>],
) -> Vec<(C, f64)> {
    let total: u64 = rows.iter().map(|r| r.websites).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut tally: HashMap<C, u64> = HashMap::new();
    for r in rows {
        *tally.entry(r.provider_country.clone()).or_insert(0) += r.websites;
    }
    let mut out: Vec<(C, f64)> = tally
        .into_iter()
        .map(|(c, w)| (c, w as f64 / total as f64))
        .collect();
    // Tie-break on the country key: the tally is HashMap-fed, so equal
    // shares would otherwise surface in randomized iteration order.
    out.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("shares are finite")
            .then_with(|| a.0.cmp(&b.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(c: &str, w: u64) -> InsularityInput<String> {
        InsularityInput {
            provider_country: c.to_string(),
            websites: w,
        }
    }

    #[test]
    fn basic_fraction() {
        let rows = vec![row("US", 92), row("DE", 5), row("FR", 3)];
        let i = insularity(&"US".to_string(), &rows).unwrap();
        assert!((i - 0.92).abs() < 1e-12);
    }

    #[test]
    fn zero_when_all_foreign() {
        let rows = vec![row("RU", 33), row("US", 60)];
        let i = insularity(&"TM".to_string(), &rows).unwrap();
        assert_eq!(i, 0.0);
    }

    #[test]
    fn none_on_empty() {
        let rows: Vec<InsularityInput<String>> = vec![];
        assert_eq!(insularity(&"US".to_string(), &rows), None);
        let rows = vec![row("US", 0)];
        assert_eq!(insularity(&"US".to_string(), &rows), None);
    }

    #[test]
    fn duplicate_rows_accumulate() {
        let rows = vec![row("US", 10), row("US", 20), row("DE", 70)];
        let i = insularity(&"US".to_string(), &rows).unwrap();
        assert!((i - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dependence_shares_sorted_and_normalized() {
        let rows = vec![row("RU", 33), row("TM", 4), row("US", 50), row("RU", 0)];
        let shares = dependence_shares(&rows);
        assert_eq!(shares[0].0, "US");
        assert!(shares.windows(2).all(|w| w[0].1 >= w[1].1));
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependence_shares_empty() {
        let rows: Vec<InsularityInput<String>> = vec![];
        assert!(dependence_shares(&rows).is_empty());
    }
}
