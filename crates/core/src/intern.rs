//! Deterministic string interning: the id layer under the streaming
//! dataset.
//!
//! At million-site scale the hot structs cannot afford an owned `String`
//! per field; the chunked store, the incremental cube fold, and the
//! journal reader all speak dense `u32` ids instead. An [`Interner`]
//! assigns ids in **first-intern order**, so two passes that intern the
//! same strings in the same order produce the same ids — the property the
//! on-disk chunk format's byte-determinism rests on (chunks intern their
//! strings in row order, which is site order, which is worker-count
//! independent).
//!
//! Pre-seeding with [`Interner::from_labels`] lets a table's ids coincide
//! with an existing id space (e.g. universe TLD ids, which are positions
//! in the universe's TLD table), so no translation layer is needed at the
//! analysis boundary.

use std::collections::HashMap;

/// An insertion-ordered string → `u32` table with reverse lookup.
///
/// Ids are dense (`0..len()`) and assigned in first-intern order;
/// interning an already-known string returns its existing id. The table
/// never forgets.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with room for `cap` strings.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            strings: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// A table pre-seeded from `labels` in order, so `labels[i]` gets id
    /// `i`. Duplicate labels keep their first id.
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = Self::new();
        for l in labels {
            t.intern(l.as_ref());
        }
        t
    }

    /// The id of `s`, interning it if new.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// The id of `s`, if already interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string behind an id. Panics on an unknown id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// The string behind an id, if known.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_first_intern_order() {
        let mut t = Interner::new();
        assert_eq!(t.intern("com"), 0);
        assert_eq!(t.intern("net"), 1);
        assert_eq!(t.intern("com"), 0, "re-intern keeps the id");
        assert_eq!(t.intern("org"), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.resolve(1), "net");
        assert_eq!(t.get("org"), Some(2));
        assert_eq!(t.get("io"), None);
        assert_eq!(t.try_resolve(9), None);
    }

    #[test]
    fn same_sequence_same_ids() {
        let words = ["a", "b", "a", "c", "b", "d"];
        let mut x = Interner::new();
        let mut y = Interner::with_capacity(4);
        let ix: Vec<u32> = words.iter().map(|w| x.intern(w)).collect();
        let iy: Vec<u32> = words.iter().map(|w| y.intern(w)).collect();
        assert_eq!(ix, iy);
        assert!(x.iter().eq(y.iter()));
    }

    #[test]
    fn from_labels_matches_positions() {
        let t = Interner::from_labels(["com", "net", "org"]);
        assert_eq!(t.get("com"), Some(0));
        assert_eq!(t.get("net"), Some(1));
        assert_eq!(t.get("org"), Some(2));
        assert!(!t.is_empty());
    }
}
