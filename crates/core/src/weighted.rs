//! Weighted-mass centralization — the §3.2 extension the paper proposes
//! as future work: "assign a weighted 'mass' to each website (e.g., based
//! on traffic), rather than weighting all sites equally."
//!
//! The EMD formulation generalizes cleanly. Let site `s` carry mass
//! `w_s`, provider `i` carry `W_i = Σ_{s∈i} w_s`, and `W = Σ w_s`. The
//! reference distribution gives every site its own provider with its own
//! mass, and the ground distance stays the normalized vertical difference
//! `d_is = (W_i − w_s)/W`. The optimal flow moves each site's mass home:
//!
//! ```text
//! S_w = Σ_i (W_i / W)²  −  Σ_s (w_s / W)²
//! ```
//!
//! With unit masses this is exactly `Σ (aᵢ/C)² − 1/C`, the paper's score.

use crate::error::MetricError;

/// A provider with the masses of the individual sites it serves.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedProvider {
    /// Mass (e.g. traffic share) per site on this provider.
    pub site_masses: Vec<f64>,
}

impl WeightedProvider {
    /// Builds from site masses.
    pub fn new(site_masses: Vec<f64>) -> Self {
        WeightedProvider { site_masses }
    }

    /// Total provider mass.
    pub fn total(&self) -> f64 {
        self.site_masses.iter().sum()
    }
}

/// Computes the weighted centralization score.
///
/// Errors on empty input, non-finite/negative masses, or zero total mass.
/// Bounds: `0 ≤ S_w < 1`; `0` exactly when every site has its own
/// provider.
pub fn weighted_centralization(providers: &[WeightedProvider]) -> Result<f64, MetricError> {
    let mut total = 0.0;
    for (i, p) in providers.iter().enumerate() {
        for (j, &m) in p.site_masses.iter().enumerate() {
            if !m.is_finite() || m < 0.0 {
                return Err(MetricError::InvalidValue(format!(
                    "mass of provider {i} site {j} = {m}"
                )));
            }
            total += m;
        }
    }
    if total <= 0.0 {
        return Err(MetricError::EmptyDistribution);
    }
    let mut provider_sq = 0.0;
    let mut site_sq = 0.0;
    for p in providers {
        let w_i = p.total() / total;
        provider_sq += w_i * w_i;
        for &m in &p.site_masses {
            let w_s = m / total;
            site_sq += w_s * w_s;
        }
    }
    Ok(provider_sq - site_sq)
}

/// Unit-mass convenience: equivalent to the paper's unweighted score.
pub fn unit_mass_centralization(counts: &[u64]) -> Result<f64, MetricError> {
    let providers: Vec<WeightedProvider> = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| WeightedProvider::new(vec![1.0; c as usize]))
        .collect();
    weighted_centralization(&providers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralization::centralization_score_counts_ref;

    #[test]
    fn reduces_to_unweighted_with_unit_masses() {
        for counts in [vec![5u64], vec![1, 1, 1], vec![10, 5, 3, 1]] {
            let weighted = unit_mass_centralization(&counts).unwrap();
            let classic = centralization_score_counts_ref(&counts).unwrap();
            assert!(
                (weighted - classic).abs() < 1e-12,
                "{counts:?}: {weighted} vs {classic}"
            );
        }
    }

    #[test]
    fn scale_invariant_in_mass_units() {
        let base = vec![
            WeightedProvider::new(vec![3.0, 1.0]),
            WeightedProvider::new(vec![2.0]),
        ];
        let scaled: Vec<WeightedProvider> = base
            .iter()
            .map(|p| WeightedProvider::new(p.site_masses.iter().map(|m| m * 7.5).collect()))
            .collect();
        let a = weighted_centralization(&base).unwrap();
        let b = weighted_centralization(&scaled).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn fully_decentralized_is_zero() {
        // Every site its own provider, arbitrary masses.
        let providers: Vec<WeightedProvider> = [0.5, 2.0, 1.25, 9.0]
            .iter()
            .map(|&m| WeightedProvider::new(vec![m]))
            .collect();
        let s = weighted_centralization(&providers).unwrap();
        assert!(s.abs() < 1e-12, "{s}");
    }

    #[test]
    fn heavy_sites_amplify_their_provider() {
        // Same site counts; provider 0 hosts the heavy sites.
        let equal = vec![
            WeightedProvider::new(vec![1.0, 1.0]),
            WeightedProvider::new(vec![1.0, 1.0]),
        ];
        let skewed = vec![
            WeightedProvider::new(vec![10.0, 10.0]),
            WeightedProvider::new(vec![1.0, 1.0]),
        ];
        let s_eq = weighted_centralization(&equal).unwrap();
        let s_skew = weighted_centralization(&skewed).unwrap();
        assert!(
            s_skew > s_eq,
            "traffic concentration must raise the score: {s_skew} vs {s_eq}"
        );
    }

    #[test]
    fn merging_providers_increases_score() {
        let separate = vec![
            WeightedProvider::new(vec![2.0, 1.0]),
            WeightedProvider::new(vec![3.0]),
        ];
        let merged = vec![WeightedProvider::new(vec![2.0, 1.0, 3.0])];
        assert!(
            weighted_centralization(&merged).unwrap() > weighted_centralization(&separate).unwrap()
        );
    }

    #[test]
    fn bounds_hold() {
        let providers = vec![WeightedProvider::new(vec![5.0; 40])];
        let s = weighted_centralization(&providers).unwrap();
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(weighted_centralization(&[]).is_err());
        assert!(
            weighted_centralization(&[WeightedProvider::new(vec![0.0])]).is_err(),
            "zero total mass"
        );
        assert!(weighted_centralization(&[WeightedProvider::new(vec![-1.0, 2.0])]).is_err());
        assert!(weighted_centralization(&[WeightedProvider::new(vec![f64::NAN])]).is_err());
    }
}
