//! Exact solver for the discrete transportation problem (Appendix A).
//!
//! Earth Mover's Distance between two discrete mass vectors is the optimum of
//! a transportation problem: move all supply mass to demand buckets at
//! minimum `sum f_ij * d_ij`. The paper's instantiation has a closed form
//! (see [`crate::centralization`]); this module provides a *general* solver
//! so that the closed form can be validated against an independent
//! optimizer, and so that future work can plug in arbitrary ground-distance
//! functions (§3.2 explicitly invites custom `d_ij`).
//!
//! The solver is textbook successive-shortest-paths min-cost max-flow with
//! Bellman–Ford path search (ground distances may be arbitrary nonnegative
//! reals; residual edges carry negative costs, which Bellman–Ford handles).
//! It is exact and intended for validation and small problems, not for bulk
//! scoring — use the closed form for that.

use crate::error::MetricError;

/// Mass below which a residual capacity is considered zero.
const EPS: f64 = 1e-9;

#[derive(Debug)]
struct Edge {
    to: usize,
    cap: f64,
    cost: f64,
}

/// Reusable residual-graph buffers for repeated transport solves.
///
/// [`min_cost_transport`] builds a fresh graph per call — four `Vec`s
/// every time. Hot loops (per-country, per-layer EMD evaluation) pass one
/// of these to [`min_cost_transport_with`] instead; buffers are cleared,
/// never shrunk, so a steady-state caller allocates nothing.
#[derive(Debug, Default)]
pub struct TransportWorkspace {
    nodes: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
    dist: Vec<f64>,
    prev_edge: Vec<usize>,
}

impl TransportWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, nodes: usize) {
        self.edges.clear();
        if self.adj.len() < nodes {
            self.adj.resize_with(nodes, Vec::new);
        }
        for a in self.adj.iter_mut().take(nodes) {
            a.clear();
        }
        self.nodes = nodes;
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) {
        self.adj[from].push(self.edges.len());
        self.edges.push(Edge { to, cap, cost });
        self.adj[to].push(self.edges.len());
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
        });
    }

    /// Runs successive shortest paths from `source` to `sink`; returns the
    /// total cost of the maximum flow.
    fn run(&mut self, source: usize, sink: usize) -> f64 {
        let n = self.nodes;
        let mut total_cost = 0.0;
        loop {
            // Bellman-Ford over reused distance/predecessor buffers.
            self.dist.clear();
            self.dist.resize(n, f64::INFINITY);
            self.prev_edge.clear();
            self.prev_edge.resize(n, usize::MAX);
            let dist = &mut self.dist;
            let prev_edge = &mut self.prev_edge;
            dist[source] = 0.0;
            for _ in 0..n {
                let mut changed = false;
                for (eid, e) in self.edges.iter().enumerate() {
                    if e.cap <= EPS {
                        continue;
                    }
                    let from = self.edges[eid ^ 1].to;
                    if dist[from].is_finite() && dist[from] + e.cost + EPS < dist[e.to] {
                        dist[e.to] = dist[from] + e.cost;
                        prev_edge[e.to] = eid;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            if !dist[sink].is_finite() {
                break;
            }
            let prev_edge = &self.prev_edge;
            // Bottleneck along the path.
            let mut bottleneck = f64::INFINITY;
            let mut v = sink;
            while v != source {
                let eid = prev_edge[v];
                bottleneck = bottleneck.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            if !bottleneck.is_finite() || bottleneck <= EPS {
                break;
            }
            // Augment.
            let mut v = sink;
            while v != source {
                let eid = prev_edge[v];
                self.edges[eid].cap -= bottleneck;
                self.edges[eid ^ 1].cap += bottleneck;
                total_cost += bottleneck * self.edges[eid].cost;
                v = self.edges[eid ^ 1].to;
            }
        }
        total_cost
    }
}

/// Solves `min sum f_ij d(i, j)` subject to the usual transportation
/// constraints, returning the minimum total work.
///
/// `supply` and `demand` must have equal totals (within a relative `1e-6`);
/// entries must be nonnegative and finite. `ground` gives the cost of moving
/// one unit of mass from supply bucket `i` to demand bucket `j` and must be
/// nonnegative and finite.
pub fn min_cost_transport<F>(supply: &[f64], demand: &[f64], ground: F) -> Result<f64, MetricError>
where
    F: Fn(usize, usize) -> f64,
{
    let mut ws = TransportWorkspace::new();
    min_cost_transport_with(supply, demand, ground, &mut ws)
}

/// [`min_cost_transport`] with caller-provided scratch: repeated solves
/// reuse `ws`'s graph and search buffers instead of allocating per call.
/// Results are identical to the allocating entry point.
pub fn min_cost_transport_with<F>(
    supply: &[f64],
    demand: &[f64],
    ground: F,
    ws: &mut TransportWorkspace,
) -> Result<f64, MetricError>
where
    F: Fn(usize, usize) -> f64,
{
    validate(supply)?;
    validate(demand)?;
    let s_total: f64 = supply.iter().sum();
    let d_total: f64 = demand.iter().sum();
    if (s_total - d_total).abs() > 1e-6 * s_total.max(d_total).max(1.0) {
        return Err(MetricError::UnbalancedTransport {
            supply: s_total,
            demand: d_total,
        });
    }

    let n = supply.len();
    let m = demand.len();
    // Node layout: 0 = source, 1..=n supplies, n+1..=n+m demands, n+m+1 = sink.
    let source = 0;
    let sink = n + m + 1;
    ws.reset(n + m + 2);
    for (i, &s) in supply.iter().enumerate() {
        if s > 0.0 {
            ws.add_edge(source, 1 + i, s, 0.0);
        }
    }
    for (j, &d) in demand.iter().enumerate() {
        if d > 0.0 {
            ws.add_edge(1 + n + j, sink, d, 0.0);
        }
    }
    for (i, &s_i) in supply.iter().enumerate() {
        if s_i <= 0.0 {
            continue;
        }
        for (j, &d_j) in demand.iter().enumerate() {
            if d_j <= 0.0 {
                continue;
            }
            let c = ground(i, j);
            if !c.is_finite() || c < 0.0 {
                return Err(MetricError::InvalidValue(format!(
                    "ground distance d({i},{j}) = {c}"
                )));
            }
            ws.add_edge(1 + i, 1 + n + j, f64::INFINITY, c);
        }
    }
    Ok(ws.run(source, sink))
}

/// 1-D Wasserstein-1 distance between two histograms over the same ordered
/// bins, with unit ground distance between adjacent bins.
///
/// This is the classic `sum |CDF_a - CDF_b|` closed form; exposed as a second
/// independent reference implementation.
pub fn wasserstein1_binned(a: &[f64], b: &[f64]) -> Result<f64, MetricError> {
    if a.len() != b.len() {
        return Err(MetricError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    validate(a)?;
    validate(b)?;
    let (sa, sb): (f64, f64) = (a.iter().sum(), b.iter().sum());
    if (sa - sb).abs() > 1e-6 * sa.max(sb).max(1.0) {
        return Err(MetricError::UnbalancedTransport {
            supply: sa,
            demand: sb,
        });
    }
    let mut cum = 0.0;
    let mut total = 0.0;
    for i in 0..a.len() {
        cum += a[i] - b[i];
        total += cum.abs();
    }
    Ok(total)
}

fn validate(v: &[f64]) -> Result<(), MetricError> {
    for (i, &x) in v.iter().enumerate() {
        if !x.is_finite() || x < 0.0 {
            return Err(MetricError::InvalidValue(format!("mass[{i}] = {x}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_identity_costs_nothing() {
        let w = min_cost_transport(
            &[1.0, 2.0],
            &[1.0, 2.0],
            |i, j| {
                if i == j {
                    0.0
                } else {
                    1.0
                }
            },
        )
        .unwrap();
        assert!(w.abs() < 1e-9);
    }

    #[test]
    fn simple_move() {
        // Move 1 unit from bucket 0 to bucket 1 at cost 3.
        let w = min_cost_transport(&[2.0, 0.0], &[1.0, 1.0], |i, j| {
            (i as f64 - j as f64).abs() * 3.0
        })
        .unwrap();
        assert!((w - 3.0).abs() < 1e-9, "{w}");
    }

    #[test]
    fn chooses_cheaper_assignment() {
        // Two suppliers, two demands; crossing is cheaper.
        let cost = [[5.0, 1.0], [1.0, 5.0]];
        let w = min_cost_transport(&[1.0, 1.0], &[1.0, 1.0], |i, j| cost[i][j]).unwrap();
        assert!((w - 2.0).abs() < 1e-9, "{w}");
    }

    #[test]
    fn needs_residual_undo_edge() {
        // A classic case where a greedy assignment must be partially undone:
        //   s0 can reach d0 cheaply (1) and d1 cheaply (1)
        //   s1 can only reach d0 (cost 1); d1 via s1 is expensive (10).
        // Greedy SSP may route s0->d0 first; the residual edge lets the
        // optimum (s0->d1, s1->d0) be recovered.
        let cost = [[1.0, 1.0], [1.0, 10.0]];
        let w = min_cost_transport(&[1.0, 1.0], &[1.0, 1.0], |i, j| cost[i][j]).unwrap();
        assert!((w - 2.0).abs() < 1e-9, "{w}");
    }

    #[test]
    fn reused_workspace_matches_fresh_solves() {
        let cases: [(&[f64], &[f64]); 3] = [
            (&[2.0, 0.0], &[1.0, 1.0]),
            (&[1.0, 1.0], &[1.0, 1.0]),
            (&[3.0, 0.0, 1.0, 0.0], &[1.0, 1.0, 1.0, 1.0]),
        ];
        let mut ws = TransportWorkspace::new();
        for (s, d) in cases {
            let ground = |i: usize, j: usize| (i as f64 - j as f64).abs() * 3.0;
            let fresh = min_cost_transport(s, d, ground).unwrap();
            let reused = min_cost_transport_with(s, d, ground, &mut ws).unwrap();
            assert_eq!(fresh, reused, "{s:?} -> {d:?}");
        }
    }

    #[test]
    fn unbalanced_is_error() {
        let err = min_cost_transport(&[1.0], &[2.0], |_, _| 1.0).unwrap_err();
        assert!(matches!(err, MetricError::UnbalancedTransport { .. }));
    }

    #[test]
    fn rejects_negative_mass_and_cost() {
        assert!(min_cost_transport(&[-1.0], &[-1.0], |_, _| 0.0).is_err());
        assert!(min_cost_transport(&[1.0], &[1.0], |_, _| -1.0).is_err());
        assert!(min_cost_transport(&[1.0], &[1.0], |_, _| f64::NAN).is_err());
    }

    #[test]
    fn wasserstein_binned_matches_transport_on_line() {
        let a = [3.0, 0.0, 1.0, 0.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let w1 = wasserstein1_binned(&a, &b).unwrap();
        let w2 = min_cost_transport(&a, &b, |i, j| (i as f64 - j as f64).abs()).unwrap();
        assert!((w1 - w2).abs() < 1e-9, "{w1} vs {w2}");
    }

    #[test]
    fn wasserstein_length_mismatch() {
        assert!(matches!(
            wasserstein1_binned(&[1.0], &[0.5, 0.5]),
            Err(MetricError::LengthMismatch { left: 1, right: 2 })
        ));
    }
}
