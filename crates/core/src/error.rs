//! Error type shared by the metric functions.

use std::fmt;

/// Errors produced when constructing distributions or evaluating metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// The input distribution has no mass (all counts zero, or empty).
    EmptyDistribution,
    /// A count or weight was invalid (negative, NaN, or infinite).
    InvalidValue(String),
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The transportation problem was infeasible (total supply != demand).
    UnbalancedTransport {
        /// Total supply mass.
        supply: f64,
        /// Total demand mass.
        demand: f64,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::EmptyDistribution => write!(f, "distribution has no mass"),
            MetricError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            MetricError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            MetricError::UnbalancedTransport { supply, demand } => {
                write!(
                    f,
                    "unbalanced transport: supply {supply} != demand {demand}"
                )
            }
        }
    }
}

impl std::error::Error for MetricError {}
