//! Top-N market-share baseline (§3.1).
//!
//! Prior work most often quantified centralization as "the share of websites
//! served by the top N providers". The paper's Figure 1 shows why this is
//! lossy: Azerbaijan and Hong Kong both have 59% of sites in their top five
//! hosting providers but very different head shapes. These helpers implement
//! the baseline so it can be compared against the centralization score.

use crate::dist::CountDist;

/// Combined market share of the `n` largest providers, in `[0, 1]`.
///
/// `n` larger than the number of providers saturates at 1.
pub fn top_n_share(dist: &CountDist, n: usize) -> f64 {
    let c = dist.total() as f64;
    dist.counts().iter().take(n).map(|&a| a as f64).sum::<f64>() / c
}

/// The provider rank curve used by Figure 1: percentage of websites hosted
/// by the provider at each rank (rank 1 first), as percentages in `[0, 100]`.
pub fn provider_rank_curve(dist: &CountDist) -> Vec<f64> {
    let c = dist.total() as f64;
    dist.counts()
        .iter()
        .map(|&a| 100.0 * a as f64 / c)
        .collect()
}

/// A demonstration pair for the top-N shortcoming: two distributions with
/// identical top-`n` share but different centralization scores.
///
/// Returns `(steep, flat)` where both have the same `top_n_share` for the
/// given `n` but `steep` has the higher centralization score.
pub fn topn_blindspot_pair(n: usize) -> (CountDist, CountDist) {
    assert!(n >= 2, "need at least two head providers");
    // Steep head: one dominant provider plus n-1 tiny head providers.
    // Flat head: n equal head providers.  Both heads cover 60 of 100 sites.
    let head_total = 60u64;
    assert!(n <= 15, "head providers must stay above the tail size");
    let tail = vec![2u64; 20]; // identical 40-site tails
                               // Head providers must stay strictly above the tail's 2-count entries so
                               // they remain the top n after sorting; use 3 as the minimum head count.
    let mut steep = vec![head_total - 3 * (n as u64 - 1)];
    steep.extend(std::iter::repeat_n(3, n - 1));
    steep.extend_from_slice(&tail);
    let per = head_total / n as u64;
    let mut flat = vec![per; n];
    let rem = head_total - per * n as u64;
    flat[0] += rem;
    flat.extend_from_slice(&tail);
    (
        CountDist::from_counts(steep).expect("non-empty"),
        CountDist::from_counts(flat).expect("non-empty"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralization::centralization_score;

    fn d(counts: &[u64]) -> CountDist {
        CountDist::from_counts(counts.to_vec()).unwrap()
    }

    #[test]
    fn top_n_share_basics() {
        let dist = d(&[50, 30, 20]);
        assert!((top_n_share(&dist, 1) - 0.5).abs() < 1e-12);
        assert!((top_n_share(&dist, 2) - 0.8).abs() < 1e-12);
        assert!((top_n_share(&dist, 3) - 1.0).abs() < 1e-12);
        assert!((top_n_share(&dist, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_curve_is_nonincreasing_percentages() {
        let dist = d(&[40, 25, 20, 10, 5]);
        let curve = provider_rank_curve(&dist);
        assert_eq!(curve.len(), 5);
        assert!(curve.windows(2).all(|w| w[0] >= w[1]));
        assert!((curve.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((curve[0] - 40.0).abs() < 1e-12);
    }

    #[test]
    fn blindspot_pair_same_topn_different_s() {
        for n in [2, 3, 5] {
            let (steep, flat) = topn_blindspot_pair(n);
            let ts = top_n_share(&steep, n);
            let tf = top_n_share(&flat, n);
            assert!(
                (ts - tf).abs() < 1e-12,
                "n={n}: top-{n} shares differ: {ts} vs {tf}"
            );
            assert!(
                centralization_score(&steep) > centralization_score(&flat),
                "n={n}: steep should be more centralized"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn blindspot_pair_needs_n_ge_2() {
        let _ = topn_blindspot_pair(1);
    }
}
