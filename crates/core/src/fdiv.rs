//! f-divergence baselines (§3.1).
//!
//! The paper considers the f-divergence family (KL, Jensen–Shannon,
//! Hellinger, total variation) for quantifying distance to the decentralized
//! reference and rejects it: f-divergences between two fully disjoint
//! distributions are constant, and the observed distribution (a few huge
//! providers) and the reference (every site its own provider) barely
//! overlap. This module implements the family so the argument is
//! reproducible: see the `saturates_on_disjoint_support` tests and the
//! comparison in `examples/metric_comparison.rs`.
//!
//! All functions take probability vectors (nonnegative, summing to 1 within
//! tolerance) over a **common support**: index `i` means the same outcome in
//! `p` and `q`.

use crate::error::MetricError;

fn validate_prob(p: &[f64]) -> Result<(), MetricError> {
    if p.is_empty() {
        return Err(MetricError::EmptyDistribution);
    }
    let mut sum = 0.0;
    for (i, &x) in p.iter().enumerate() {
        if !x.is_finite() || x < 0.0 {
            return Err(MetricError::InvalidValue(format!("p[{i}] = {x}")));
        }
        sum += x;
    }
    if (sum - 1.0).abs() > 1e-6 {
        return Err(MetricError::InvalidValue(format!(
            "probabilities sum to {sum}, expected 1"
        )));
    }
    Ok(())
}

fn validate_pair(p: &[f64], q: &[f64]) -> Result<(), MetricError> {
    if p.len() != q.len() {
        return Err(MetricError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    validate_prob(p)?;
    validate_prob(q)
}

/// Kullback–Leibler divergence `KL(p || q)` in nats.
///
/// Returns `f64::INFINITY` when `p` puts mass where `q` has none — exactly
/// the saturation behaviour that makes KL unsuitable for the paper's task.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64, MetricError> {
    validate_pair(p, q)?;
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return Ok(f64::INFINITY);
        }
        acc += pi * (pi / qi).ln();
    }
    Ok(acc)
}

/// Jensen–Shannon divergence (base-e); bounded by `ln 2`.
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64, MetricError> {
    validate_pair(p, q)?;
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    // Both halves are finite because m covers the union support.
    let half = |x: &[f64]| -> f64 {
        x.iter()
            .zip(&m)
            .filter(|(&xi, _)| xi > 0.0)
            .map(|(&xi, &mi)| xi * (xi / mi).ln())
            .sum()
    };
    Ok(0.5 * half(p) + 0.5 * half(q))
}

/// Hellinger distance, in `[0, 1]`.
pub fn hellinger_distance(p: &[f64], q: &[f64]) -> Result<f64, MetricError> {
    validate_pair(p, q)?;
    let sq_sum: f64 = p
        .iter()
        .zip(q)
        .map(|(&a, &b)| {
            let d = a.sqrt() - b.sqrt();
            d * d
        })
        .sum();
    Ok((0.5 * sq_sum).sqrt().min(1.0))
}

/// Total variation distance, in `[0, 1]`.
pub fn total_variation(p: &[f64], q: &[f64]) -> Result<f64, MetricError> {
    validate_pair(p, q)?;
    Ok(0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>())
}

/// Embeds an observed distribution and the decentralized reference on a
/// common support so f-divergences can be evaluated between them: the first
/// `n` indices are the observed providers, the next `C` are the reference's
/// singleton providers (disjoint by construction, which is the point).
///
/// Returns `(p_observed, q_reference)`.
pub fn disjoint_embedding(counts: &[u64]) -> Result<(Vec<f64>, Vec<f64>), MetricError> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(MetricError::EmptyDistribution);
    }
    let n = counts.len();
    let c = total as usize;
    let mut p = vec![0.0; n + c];
    let mut q = vec![0.0; n + c];
    for (i, &a) in counts.iter().enumerate() {
        p[i] = a as f64 / total as f64;
    }
    for j in 0..c {
        q[n + j] = 1.0 / total as f64;
    }
    Ok((p, q))
}

#[cfg(test)]
mod tests {
    use super::*;

    const U4: [f64; 4] = [0.25; 4];

    #[test]
    fn kl_zero_on_identical() {
        assert!(kl_divergence(&U4, &U4).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!(kl_divergence(&p, &q).unwrap().is_infinite());
    }

    #[test]
    fn js_bounded_by_ln2() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let js = js_divergence(&p, &q).unwrap();
        assert!((js - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn hellinger_and_tv_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((hellinger_distance(&p, &q).unwrap() - 1.0).abs() < 1e-12);
        assert!((total_variation(&p, &q).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturates_on_disjoint_support() {
        // The paper's core argument (§3.1): every observed distribution is
        // (essentially) disjoint from the reference, so all f-divergences
        // hit their maxima and cannot rank centralization. Two very
        // different observed distributions get identical divergences.
        let concentrated = disjoint_embedding(&[90, 5, 5]).unwrap();
        let diffuse = disjoint_embedding(&[10, 10, 10, 10, 10, 10, 10, 10, 10, 10]).unwrap();

        let tv_c = total_variation(&concentrated.0, &concentrated.1).unwrap();
        let tv_d = total_variation(&diffuse.0, &diffuse.1).unwrap();
        assert!((tv_c - 1.0).abs() < 1e-9);
        assert!((tv_d - 1.0).abs() < 1e-9);

        let h_c = hellinger_distance(&concentrated.0, &concentrated.1).unwrap();
        let h_d = hellinger_distance(&diffuse.0, &diffuse.1).unwrap();
        assert!((h_c - 1.0).abs() < 1e-9);
        assert!((h_d - 1.0).abs() < 1e-9);

        let js_c = js_divergence(&concentrated.0, &concentrated.1).unwrap();
        let js_d = js_divergence(&diffuse.0, &diffuse.1).unwrap();
        assert!((js_c - std::f64::consts::LN_2).abs() < 1e-9);
        assert!((js_d - std::f64::consts::LN_2).abs() < 1e-9);

        assert!(kl_divergence(&concentrated.0, &concentrated.1)
            .unwrap()
            .is_infinite());

        // EMD, by contrast, separates them (this is the paper's pitch).
        use crate::centralization::centralization_score_counts_ref;
        let s_c = centralization_score_counts_ref(&[90, 5, 5]).unwrap();
        let s_d = centralization_score_counts_ref(&[10; 10]).unwrap();
        assert!(s_c > 4.0 * s_d);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(kl_divergence(&[0.5], &[0.5, 0.5]).is_err());
        assert!(kl_divergence(&[0.7, 0.7], &[0.5, 0.5]).is_err());
        assert!(kl_divergence(&[-0.1, 1.1], &[0.5, 0.5]).is_err());
        assert!(js_divergence(&[], &[]).is_err());
        assert!(disjoint_embedding(&[]).is_err());
        assert!(disjoint_embedding(&[0, 0]).is_err());
    }
}
