//! Observed dependency distributions.
//!
//! A [`CountDist`] holds the number of websites assigned to each provider
//! (or CA, TLD, ...). All metric functions in this crate consume it. Counts
//! are kept sorted in nonincreasing order, matching the paper's convention
//! of writing a distribution as a nonincreasing sequence `(a_1, ..., a_n)`.

use crate::error::MetricError;
use serde::{Deserialize, Serialize};

/// A distribution of websites over providers, stored as per-provider counts
/// sorted in nonincreasing order.
///
/// The zero-count tail is dropped at construction: a provider with no
/// websites contributes nothing to any metric in this crate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountDist {
    counts: Vec<u64>,
    total: u64,
}

impl CountDist {
    /// Builds a distribution from raw counts (any order; zeros are dropped).
    ///
    /// Returns [`MetricError::EmptyDistribution`] if no count is positive.
    pub fn from_counts(mut counts: Vec<u64>) -> Result<Self, MetricError> {
        counts.retain(|&c| c > 0);
        if counts.is_empty() {
            return Err(MetricError::EmptyDistribution);
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = counts.iter().sum();
        Ok(CountDist { counts, total })
    }

    /// Builds a distribution by tallying one provider label per website.
    ///
    /// This is the common entry point when walking a measurement dataset:
    /// pass the provider id observed for each website.
    pub fn from_labels<I, T>(labels: I) -> Result<Self, MetricError>
    where
        I: IntoIterator<Item = T>,
        T: std::hash::Hash + Eq,
    {
        let mut tally: std::collections::HashMap<T, u64> = std::collections::HashMap::new();
        for l in labels {
            *tally.entry(l).or_insert(0) += 1;
        }
        Self::from_counts(tally.into_values().collect())
    }

    /// Counts per provider, nonincreasing.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of websites `C`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct providers with at least one website.
    pub fn num_providers(&self) -> usize {
        self.counts.len()
    }

    /// Market share of each provider (`a_i / C`), nonincreasing.
    pub fn shares(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.shares_into(&mut out);
        out
    }

    /// [`CountDist::shares`] into a caller-provided buffer (cleared first),
    /// for hot loops that must not allocate per distribution.
    pub fn shares_into(&self, out: &mut Vec<f64>) {
        let c = self.total as f64;
        out.clear();
        out.extend(self.counts.iter().map(|&a| a as f64 / c));
    }

    /// Share of the single largest provider.
    pub fn top_share(&self) -> f64 {
        self.counts[0] as f64 / self.total as f64
    }

    /// Smallest number of providers whose combined share reaches `fraction`
    /// of all websites (e.g. `0.90` for the paper's "90% of websites are
    /// hosted by fewer than 206 providers" observation).
    ///
    /// `fraction` is clamped to `[0, 1]`.
    pub fn providers_to_cover(&self, fraction: f64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        let want = (fraction * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &a) in self.counts.iter().enumerate() {
            acc += a;
            if acc >= want {
                return i + 1;
            }
        }
        self.counts.len()
    }

    /// Cumulative share curve: element `k` is the combined share of the top
    /// `k + 1` providers. Monotonically nondecreasing, last element `1.0`.
    pub fn cumulative_shares(&self) -> Vec<f64> {
        let c = self.total as f64;
        let mut acc = 0.0;
        self.counts
            .iter()
            .map(|&a| {
                acc += a as f64;
                acc / c
            })
            .collect()
    }

    /// Merges another distribution into this one provider-by-provider is
    /// meaningless without identities, so merging concatenates the count
    /// multisets. Useful to pool several countries into a region.
    pub fn pooled(&self, other: &CountDist) -> CountDist {
        let mut counts = self.counts.clone();
        counts.extend_from_slice(&other.counts);
        // Both inputs were valid, so the pool is non-empty.
        CountDist::from_counts(counts).expect("pooled distribution is non-empty")
    }
}

impl TryFrom<Vec<u64>> for CountDist {
    type Error = MetricError;

    fn try_from(v: Vec<u64>) -> Result<Self, Self::Error> {
        CountDist::from_counts(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_drops_zeros() {
        let d = CountDist::from_counts(vec![0, 3, 7, 0, 1]).unwrap();
        assert_eq!(d.counts(), &[7, 3, 1]);
        assert_eq!(d.total(), 11);
        assert_eq!(d.num_providers(), 3);
    }

    #[test]
    fn empty_is_error() {
        assert_eq!(
            CountDist::from_counts(vec![]),
            Err(MetricError::EmptyDistribution)
        );
        assert_eq!(
            CountDist::from_counts(vec![0, 0]),
            Err(MetricError::EmptyDistribution)
        );
    }

    #[test]
    fn from_labels_tallies() {
        let d = CountDist::from_labels(["cf", "cf", "aws", "cf", "ovh"]).unwrap();
        assert_eq!(d.counts(), &[3, 1, 1]);
    }

    #[test]
    fn shares_sum_to_one() {
        let d = CountDist::from_counts(vec![5, 3, 2]).unwrap();
        let s: f64 = d.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((d.top_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn providers_to_cover_boundaries() {
        let d = CountDist::from_counts(vec![60, 20, 10, 5, 5]).unwrap();
        assert_eq!(d.providers_to_cover(0.0), 1);
        assert_eq!(d.providers_to_cover(0.6), 1);
        assert_eq!(d.providers_to_cover(0.61), 2);
        assert_eq!(d.providers_to_cover(1.0), 5);
        // Out-of-range fractions clamp.
        assert_eq!(d.providers_to_cover(2.0), 5);
        assert_eq!(d.providers_to_cover(-1.0), 1);
    }

    #[test]
    fn cumulative_monotone() {
        let d = CountDist::from_counts(vec![4, 3, 2, 1]).unwrap();
        let cum = d.cumulative_shares();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_combines_mass() {
        let a = CountDist::from_counts(vec![5, 1]).unwrap();
        let b = CountDist::from_counts(vec![3]).unwrap();
        let p = a.pooled(&b);
        assert_eq!(p.total(), 9);
        assert_eq!(p.counts(), &[5, 3, 1]);
    }
}
