//! The paper's EMD instantiation (§3.2, Appendix A).
//!
//! Centralization is the Earth Mover's Distance between the observed
//! provider distribution `A = (a_1, ..., a_n)` and a fully decentralized
//! reference `R` with `C = sum a_i` buckets of size 1 (every website has its
//! own provider), under the ground distance
//!
//! ```text
//! d_ij = (a_i - r_j) / C = (a_i - 1) / C
//! ```
//!
//! Because `d_ij` does not depend on `j`, *any* feasible flow is optimal and
//! the work reduces to the closed form `S = sum (a_i/C)^2 - 1/C`. This
//! module exposes the instantiation explicitly — reference construction,
//! ground distance, and an evaluation path through the generic
//! [`crate::transport`] solver — so the closed form is independently
//! checkable and the framework remains customizable as §3.2 suggests
//! (alternative references, pairwise country comparisons, weighted sites).

use crate::dist::CountDist;
use crate::error::MetricError;
use crate::transport::min_cost_transport;

/// The fully decentralized reference distribution for a dataset of `C`
/// websites: `C` providers with one website each.
///
/// This is a *reference*, not an attainable or ideal state (§3.1): it anchors
/// zero centralization so all observed distributions can be compared against
/// the same origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecentralizedReference {
    total: u64,
}

impl DecentralizedReference {
    /// Reference for `total` websites. Panics if `total == 0`.
    pub fn new(total: u64) -> Self {
        assert!(total > 0, "reference requires at least one website");
        DecentralizedReference { total }
    }

    /// Reference matched to an observed distribution (same total mass).
    pub fn matching(dist: &CountDist) -> Self {
        DecentralizedReference {
            total: dist.total(),
        }
    }

    /// Number of reference buckets (`m = C`).
    pub fn num_buckets(&self) -> u64 {
        self.total
    }

    /// The reference mass vector `(1, 1, ..., 1)`; only sensible for small
    /// `C` (validation use).
    pub fn mass_vector(&self) -> Vec<f64> {
        vec![1.0; self.total as usize]
    }
}

/// The paper's ground distance `d_ij = (a_i - 1) / C` between observed
/// bucket `i` and any reference bucket.
pub fn ground_distance(a_i: u64, total: u64) -> f64 {
    debug_assert!(total > 0);
    (a_i as f64 - 1.0) / total as f64
}

/// EMD from `dist` to the matched fully decentralized reference, evaluated
/// with the closed form. Identical to
/// [`crate::centralization::centralization_score`]; exposed here under the
/// EMD vocabulary.
pub fn emd_to_decentralized(dist: &CountDist) -> f64 {
    crate::centralization::centralization_score(dist)
}

/// EMD from `dist` to the matched reference, evaluated through the generic
/// transportation solver instead of the closed form.
///
/// This materializes the full `C`-bucket reference, so it is only suitable
/// for small `C` (validation and property tests). The closed form and this
/// function agree to within float tolerance — asserted by tests and the
/// `appA_emd_equivalence` bench.
pub fn emd_to_decentralized_via_transport(dist: &CountDist) -> Result<f64, MetricError> {
    let total = dist.total();
    let supply: Vec<f64> = dist.counts().iter().map(|&a| a as f64).collect();
    let reference = DecentralizedReference::matching(dist).mass_vector();
    let counts = dist.counts().to_vec();
    let work = min_cost_transport(&supply, &reference, |i, _j| {
        ground_distance(counts[i], total)
    })?;
    // Normalize by total flow (== C), per Appendix A.
    Ok(work / total as f64)
}

/// EMD between two observed distributions under a caller-supplied ground
/// distance over *shares*. This supports the §3.2 extension of comparing
/// countries pairwise rather than against the reference.
///
/// Both distributions are converted to market shares (mass 1 each) so that
/// datasets of different sizes are comparable; `ground(i, j)` receives
/// bucket indices into the two share vectors.
pub fn emd_between<F>(a: &CountDist, b: &CountDist, ground: F) -> Result<f64, MetricError>
where
    F: Fn(usize, usize) -> f64,
{
    let sa = a.shares();
    let sb = b.shares();
    min_cost_transport(&sa, &sb, ground)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(counts: &[u64]) -> CountDist {
        CountDist::from_counts(counts.to_vec()).unwrap()
    }

    #[test]
    fn closed_form_matches_transport_solver() {
        for counts in [
            vec![5u64],
            vec![1, 1, 1, 1],
            vec![10, 5, 3, 1, 1],
            vec![7, 7, 7],
            vec![20, 1, 1, 1, 1, 1],
        ] {
            let dist = d(&counts);
            let closed = emd_to_decentralized(&dist);
            let solved = emd_to_decentralized_via_transport(&dist).unwrap();
            assert!(
                (closed - solved).abs() < 1e-9,
                "counts {counts:?}: closed {closed} vs solved {solved}"
            );
        }
    }

    #[test]
    fn reference_shape() {
        let r = DecentralizedReference::new(5);
        assert_eq!(r.num_buckets(), 5);
        assert_eq!(r.mass_vector(), vec![1.0; 5]);
    }

    #[test]
    #[should_panic(expected = "at least one website")]
    fn reference_rejects_zero() {
        let _ = DecentralizedReference::new(0);
    }

    #[test]
    fn ground_distance_is_zero_for_singleton_bucket() {
        // A provider with exactly one website is already "decentralized";
        // moving its site costs nothing.
        assert_eq!(ground_distance(1, 100), 0.0);
        assert!(ground_distance(50, 100) > 0.0);
    }

    #[test]
    fn pairwise_emd_is_symmetric_under_symmetric_ground() {
        let a = d(&[6, 3, 1]);
        let b = d(&[4, 4, 2]);
        // Symmetric ground distance over share-vector vertical difference.
        let sa = a.shares();
        let sb = b.shares();
        let g_ab = {
            let (sa, sb) = (sa.clone(), sb.clone());
            move |i: usize, j: usize| (sa[i] - sb[j]).abs()
        };
        let g_ba = move |i: usize, j: usize| (sb[i] - sa[j]).abs();
        let ab = emd_between(&a, &b, g_ab).unwrap();
        let ba = emd_between(&b, &a, g_ba).unwrap();
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn figure2_worked_example_ordering() {
        // Figure 2: Country B is more centralized than Country A
        // (EMD 0.32 vs 0.28). Reconstruct comparable head-heavy
        // distributions: B has a steeper head than A over the same total.
        let a = d(&[10, 6, 4, 3, 2]); // flatter
        let b = d(&[14, 5, 3, 2, 1]); // steeper
        assert!(emd_to_decentralized(&b) > emd_to_decentralized(&a));
    }
}
