//! The paper's EMD instantiation (§3.2, Appendix A).
//!
//! Centralization is the Earth Mover's Distance between the observed
//! provider distribution `A = (a_1, ..., a_n)` and a fully decentralized
//! reference `R` with `C = sum a_i` buckets of size 1 (every website has its
//! own provider), under the ground distance
//!
//! ```text
//! d_ij = (a_i - r_j) / C = (a_i - 1) / C
//! ```
//!
//! Because `d_ij` does not depend on `j`, *any* feasible flow is optimal and
//! the work reduces to the closed form `S = sum (a_i/C)^2 - 1/C`. This
//! module exposes the instantiation explicitly — reference construction,
//! ground distance, and an evaluation path through the generic
//! [`crate::transport`] solver — so the closed form is independently
//! checkable and the framework remains customizable as §3.2 suggests
//! (alternative references, pairwise country comparisons, weighted sites).

use crate::dist::CountDist;
use crate::error::MetricError;
use crate::transport::{min_cost_transport_with, TransportWorkspace};

/// The fully decentralized reference distribution for a dataset of `C`
/// websites: `C` providers with one website each.
///
/// This is a *reference*, not an attainable or ideal state (§3.1): it anchors
/// zero centralization so all observed distributions can be compared against
/// the same origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecentralizedReference {
    total: u64,
}

impl DecentralizedReference {
    /// Reference for `total` websites. Panics if `total == 0`.
    pub fn new(total: u64) -> Self {
        assert!(total > 0, "reference requires at least one website");
        DecentralizedReference { total }
    }

    /// Reference matched to an observed distribution (same total mass).
    pub fn matching(dist: &CountDist) -> Self {
        DecentralizedReference {
            total: dist.total(),
        }
    }

    /// Number of reference buckets (`m = C`).
    pub fn num_buckets(&self) -> u64 {
        self.total
    }

    /// The reference mass vector `(1, 1, ..., 1)`; only sensible for small
    /// `C` (validation use).
    pub fn mass_vector(&self) -> Vec<f64> {
        vec![1.0; self.total as usize]
    }
}

/// The paper's ground distance `d_ij = (a_i - 1) / C` between observed
/// bucket `i` and any reference bucket.
pub fn ground_distance(a_i: u64, total: u64) -> f64 {
    debug_assert!(total > 0);
    (a_i as f64 - 1.0) / total as f64
}

/// EMD from `dist` to the matched fully decentralized reference, evaluated
/// with the closed form. Identical to
/// [`crate::centralization::centralization_score`]; exposed here under the
/// EMD vocabulary.
pub fn emd_to_decentralized(dist: &CountDist) -> f64 {
    crate::centralization::centralization_score(dist)
}

/// The closed-form EMD over a raw count row, fused into a single pass in
/// the style of
/// [`crate::centralization::centralization_score_counts_ref`]: no
/// [`CountDist`] construction, no sort (the closed form is
/// order-independent), no allocation. Zero counts are skipped; returns
/// `None` when nothing is positive.
///
/// This is the kernel the batched per-country analysis loop calls against
/// dense cube rows at scale.
pub fn emd_to_decentralized_counts_ref(counts: &[u64]) -> Option<f64> {
    crate::centralization::centralization_score_counts_ref(counts)
}

/// Reusable scratch for the transport-evaluated EMD paths: share/mass
/// vectors plus the solver's graph buffers. One workspace serves any
/// mix of [`emd_to_decentralized_via_transport_with`] and
/// [`emd_between_with`] calls; buffers are cleared, never shrunk.
#[derive(Debug, Default)]
pub struct EmdWorkspace {
    supply: Vec<f64>,
    reference: Vec<f64>,
    shares_b: Vec<f64>,
    transport: TransportWorkspace,
}

impl EmdWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// EMD from `dist` to the matched reference, evaluated through the generic
/// transportation solver instead of the closed form.
///
/// This materializes the full `C`-bucket reference, so it is only suitable
/// for small `C` (validation and property tests). The closed form and this
/// function agree to within float tolerance — asserted by tests and the
/// `appA_emd_equivalence` bench.
pub fn emd_to_decentralized_via_transport(dist: &CountDist) -> Result<f64, MetricError> {
    emd_to_decentralized_via_transport_with(dist, &mut EmdWorkspace::new())
}

/// [`emd_to_decentralized_via_transport`] with caller-provided scratch:
/// per-country-per-layer loops reuse `ws` instead of building three fresh
/// `Vec`s and a solver graph per call. Results are identical.
pub fn emd_to_decentralized_via_transport_with(
    dist: &CountDist,
    ws: &mut EmdWorkspace,
) -> Result<f64, MetricError> {
    let total = dist.total();
    let counts = dist.counts();
    ws.supply.clear();
    ws.supply.extend(counts.iter().map(|&a| a as f64));
    ws.reference.clear();
    ws.reference.resize(total as usize, 1.0);
    let work = min_cost_transport_with(
        &ws.supply,
        &ws.reference,
        |i, _j| ground_distance(counts[i], total),
        &mut ws.transport,
    )?;
    // Normalize by total flow (== C), per Appendix A.
    Ok(work / total as f64)
}

/// EMD between two observed distributions under a caller-supplied ground
/// distance over *shares*. This supports the §3.2 extension of comparing
/// countries pairwise rather than against the reference.
///
/// Both distributions are converted to market shares (mass 1 each) so that
/// datasets of different sizes are comparable; `ground(i, j)` receives
/// bucket indices into the two share vectors.
pub fn emd_between<F>(a: &CountDist, b: &CountDist, ground: F) -> Result<f64, MetricError>
where
    F: Fn(usize, usize) -> f64,
{
    emd_between_with(a, b, ground, &mut EmdWorkspace::new())
}

/// [`emd_between`] with caller-provided scratch: the share vectors and the
/// solver graph live in `ws` and are reused across calls. Results are
/// identical to the allocating entry point.
pub fn emd_between_with<F>(
    a: &CountDist,
    b: &CountDist,
    ground: F,
    ws: &mut EmdWorkspace,
) -> Result<f64, MetricError>
where
    F: Fn(usize, usize) -> f64,
{
    a.shares_into(&mut ws.supply);
    b.shares_into(&mut ws.shares_b);
    min_cost_transport_with(&ws.supply, &ws.shares_b, ground, &mut ws.transport)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(counts: &[u64]) -> CountDist {
        CountDist::from_counts(counts.to_vec()).unwrap()
    }

    #[test]
    fn closed_form_matches_transport_solver() {
        for counts in [
            vec![5u64],
            vec![1, 1, 1, 1],
            vec![10, 5, 3, 1, 1],
            vec![7, 7, 7],
            vec![20, 1, 1, 1, 1, 1],
        ] {
            let dist = d(&counts);
            let closed = emd_to_decentralized(&dist);
            let solved = emd_to_decentralized_via_transport(&dist).unwrap();
            assert!(
                (closed - solved).abs() < 1e-9,
                "counts {counts:?}: closed {closed} vs solved {solved}"
            );
        }
    }

    #[test]
    fn reference_shape() {
        let r = DecentralizedReference::new(5);
        assert_eq!(r.num_buckets(), 5);
        assert_eq!(r.mass_vector(), vec![1.0; 5]);
    }

    #[test]
    #[should_panic(expected = "at least one website")]
    fn reference_rejects_zero() {
        let _ = DecentralizedReference::new(0);
    }

    #[test]
    fn ground_distance_is_zero_for_singleton_bucket() {
        // A provider with exactly one website is already "decentralized";
        // moving its site costs nothing.
        assert_eq!(ground_distance(1, 100), 0.0);
        assert!(ground_distance(50, 100) > 0.0);
    }

    #[test]
    fn pairwise_emd_is_symmetric_under_symmetric_ground() {
        let a = d(&[6, 3, 1]);
        let b = d(&[4, 4, 2]);
        // Symmetric ground distance over share-vector vertical difference.
        let sa = a.shares();
        let sb = b.shares();
        let g_ab = {
            let (sa, sb) = (sa.clone(), sb.clone());
            move |i: usize, j: usize| (sa[i] - sb[j]).abs()
        };
        let g_ba = move |i: usize, j: usize| (sb[i] - sa[j]).abs();
        let ab = emd_between(&a, &b, g_ab).unwrap();
        let ba = emd_between(&b, &a, g_ba).unwrap();
        assert!((ab - ba).abs() < 1e-9, "{ab} vs {ba}");
    }

    #[test]
    fn counts_ref_kernel_matches_closed_form() {
        for counts in [
            vec![5u64],
            vec![1, 1, 1, 1],
            vec![10, 5, 3, 1, 1],
            vec![0, 7, 0, 7, 7],
            vec![20, 1, 1, 1, 1, 1],
        ] {
            let via_dist = CountDist::from_counts(counts.clone())
                .map(|d| emd_to_decentralized(&d))
                .unwrap();
            let kernel = emd_to_decentralized_counts_ref(&counts).unwrap();
            // Same closed form; only f64 summation order differs (the
            // kernel skips the sort).
            assert!(
                (kernel - via_dist).abs() < 1e-12,
                "counts {counts:?}: {kernel} vs {via_dist}"
            );
        }
        assert_eq!(emd_to_decentralized_counts_ref(&[]), None);
        assert_eq!(emd_to_decentralized_counts_ref(&[0, 0]), None);
    }

    #[test]
    fn workspace_variants_match_allocating_paths() {
        let mut ws = EmdWorkspace::new();
        for counts in [vec![5u64], vec![10, 5, 3, 1, 1], vec![7, 7, 7]] {
            let dist = d(&counts);
            assert_eq!(
                emd_to_decentralized_via_transport(&dist).unwrap(),
                emd_to_decentralized_via_transport_with(&dist, &mut ws).unwrap(),
                "counts {counts:?}"
            );
        }
        let a = d(&[6, 3, 1]);
        let b = d(&[4, 4, 2]);
        let ground = |i: usize, j: usize| (i as f64 - j as f64).abs() * 0.1;
        assert_eq!(
            emd_between(&a, &b, ground).unwrap(),
            emd_between_with(&a, &b, ground, &mut ws).unwrap()
        );
    }

    #[test]
    fn figure2_worked_example_ordering() {
        // Figure 2: Country B is more centralized than Country A
        // (EMD 0.32 vs 0.28). Reconstruct comparable head-heavy
        // distributions: B has a steeper head than A over the same total.
        let a = d(&[10, 6, 4, 3, 2]); // flatter
        let b = d(&[14, 5, 3, 2, 1]); // steeper
        assert!(emd_to_decentralized(&b) > emd_to_decentralized(&a));
    }
}
