//! First-party observability primitives: atomic counters, gauges, and
//! fixed-bucket histograms behind a [`Registry`] that renders the
//! Prometheus text exposition format.
//!
//! No prometheus crate, matching the hand-rolled-HTTP ethos of the serve
//! crate: everything here is `std` atomics plus one mutex around the
//! registration table (never taken on the metric hot path). Handles are
//! cheap `Arc` clones — instrument a hot loop by cloning the handle once
//! and calling [`Counter::add`] / [`Histogram::observe`], which cost one
//! `fetch_add` (plus a bounded bucket scan for histograms).
//!
//! Two usage shapes:
//! - process-wide subsystems (the measurement pipeline, the run journal)
//!   register in [`global()`], so any exporter in the process can render
//!   them;
//! - per-instance subsystems (one HTTP server among several in a test
//!   process) own a private `Registry` and render both, concatenated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; all increments use atomic RMW
/// (`fetch_add`), so concurrent updates are never lost.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic word).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not (yet) attached to any registry, initialized to 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default latency buckets in seconds: 50µs … 2.5s, a decade ladder wide
/// enough for both cache hits (~µs) and cold bootstrap routes (~100ms).
pub const LATENCY_SECONDS: &[f64] = &[
    50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5,
];

#[derive(Debug)]
struct HistogramInner {
    /// Finite upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows.
    bounds: Vec<f64>,
    /// One cell per finite bound plus the `+Inf` cell.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram with p50/p90/p99 readout.
///
/// Buckets are chosen at construction and never change, so `observe` is
/// wait-free apart from the sum's CAS loop.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A histogram over the given finite bucket bounds (must be strictly
    /// increasing and non-empty; a `+Inf` bucket is always appended).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one observation given as a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0 < q < 1`) by linear interpolation inside
    /// the bucket holding the target rank; observations in the `+Inf`
    /// bucket clamp to the largest finite bound. `None` before the first
    /// observation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let inner = &self.0;
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, cell) in inner.buckets.iter().enumerate() {
            let in_bucket = cell.load(Ordering::Relaxed);
            if cum + in_bucket >= target {
                let hi = match inner.bounds.get(i) {
                    Some(&b) => b,
                    // +Inf bucket: clamp to the last finite bound.
                    None => return Some(*inner.bounds.last().expect("non-empty bounds")),
                };
                let lo = if i == 0 { 0.0 } else { inner.bounds[i - 1] };
                let into = (target - cum) as f64 / in_bucket.max(1) as f64;
                return Some(lo + (hi - lo) * into);
            }
            cum += in_bucket;
        }
        Some(*inner.bounds.last().expect("non-empty bounds"))
    }

    /// Cumulative `(upper_bound, count)` pairs, `+Inf` last — the shape
    /// the text format wants.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let inner = &self.0;
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(inner.buckets.len());
        for (i, cell) in inner.buckets.iter().enumerate() {
            cum += cell.load(Ordering::Relaxed);
            let bound = inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A named collection of metrics, rendered in the Prometheus text
/// exposition format (version 0.0.4).
///
/// Registration is idempotent: asking for an existing `(name, labels)`
/// pair returns a clone of the existing handle, so call sites never need
/// to coordinate "who registers first".
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Checks a metric or label name against the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`; labels without the colon).
fn valid_name(name: &str, allow_colon: bool) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    let ok_first = first.is_ascii_alphabetic() || first == '_' || (allow_colon && first == ':');
    ok_first && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':'))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name, true), "bad metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k, false), "bad label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
                let handle = series.handle.clone();
                let fresh = make();
                assert!(
                    handle.kind() == fresh.kind(),
                    "metric {name:?} re-registered as a different kind ({} vs {})",
                    handle.kind(),
                    fresh.kind(),
                );
                return handle;
            }
            let handle = make();
            family.series.push(Series {
                labels,
                handle: handle.clone(),
            });
            return handle;
        }
        let handle = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            series: vec![Series {
                labels,
                handle: handle.clone(),
            }],
        });
        handle
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or fetches) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or fetches) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or fetches) an unlabeled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Registers (or fetches) a labeled histogram over `bounds`.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.register(name, help, labels, || {
            Handle::Histogram(Histogram::new(bounds))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Renders every family in registration order as Prometheus text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("metrics registry poisoned");
        for family in families.iter() {
            if !family.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(&family.name);
                out.push(' ');
                out.push_str(&escape_help(&family.help));
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.series[0].handle.kind());
            out.push('\n');
            for series in &family.series {
                render_series(&mut out, &family.name, series);
            }
        }
        out
    }
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.handle {
        Handle::Counter(c) => {
            render_sample(out, name, &series.labels, None, &fmt_u64(c.get()));
        }
        Handle::Gauge(g) => {
            render_sample(out, name, &series.labels, None, &fmt_f64(g.get()));
        }
        Handle::Histogram(h) => {
            let bucket_name = format!("{name}_bucket");
            for (bound, cum) in h.cumulative_buckets() {
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    fmt_f64(bound)
                };
                render_sample(
                    out,
                    &bucket_name,
                    &series.labels,
                    Some(("le", &le)),
                    &fmt_u64(cum),
                );
            }
            render_sample(
                out,
                &format!("{name}_sum"),
                &series.labels,
                None,
                &fmt_f64(h.sum()),
            );
            render_sample(
                out,
                &format!("{name}_count"),
                &series.labels,
                None,
                &fmt_u64(h.count()),
            );
        }
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn fmt_u64(v: u64) -> String {
    v.to_string()
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral floats render without an exponent or trailing noise.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// The process-wide registry: subsystems without a natural owner (the
/// measurement pipeline, the run journal) register here, and exporters
/// render it alongside their own.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_under_contention() {
        let reg = Registry::new();
        let c = reg.counter("test_total", "help");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter_with("dup_total", "h", &[("k", "v")]);
        let b = reg.counter_with("dup_total", "h", &[("k", "v")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a distinct series in the same family.
        let other = reg.counter_with("dup_total", "h", &[("k", "w")]);
        assert_eq!(other.get(), 0);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE dup_total counter").count(), 1);
        assert!(text.contains("dup_total{k=\"v\"} 3"));
        assert!(text.contains("dup_total{k=\"w\"} 0"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x_total", "h");
        let _ = reg.gauge("x_total", "h");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None);
        for v in [0.5, 1.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.5).abs() < 1e-9);
        let cum = h.cumulative_buckets();
        assert_eq!(cum[0], (1.0, 1));
        assert_eq!(cum[1], (2.0, 3));
        assert_eq!(cum[2], (4.0, 4));
        assert_eq!(cum[3].1, 5);
        assert!(cum[3].0.is_infinite());
        // p50 lands in the (1, 2] bucket; +Inf observations clamp to 4.
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(0.99), Some(4.0));
    }

    #[test]
    fn histogram_renders_prometheus_shape() {
        let reg = Registry::new();
        let h = reg.histogram_with("lat_seconds", "latency", &[("route", "x")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        let text = reg.render();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{route=\"x\",le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{route=\"x\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count{route=\"x\"} 2"));
        assert!(text.contains("lat_seconds_sum{route=\"x\"} 0.55"));
    }

    #[test]
    fn gauge_roundtrips_floats() {
        let g = Gauge::new();
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        let _ = reg.counter_with("esc_total", "h", &[("k", "a\"b\\c\nd")]);
        assert!(reg.render().contains("esc_total{k=\"a\\\"b\\\\c\\nd\"} 0"));
    }
}
