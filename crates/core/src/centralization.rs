//! The centralization score `S` (paper §3.2, Appendix A).
//!
//! `S` is the Earth Mover's Distance from the observed provider distribution
//! to a fully decentralized reference in which every website has its own
//! provider, with ground distance `d_ij = (a_i - 1) / C`. The paper derives
//! the closed form
//!
//! ```text
//! S = sum_i (a_i / C)^2 - 1/C
//! ```
//!
//! `sum_i (a_i/C)^2` is the Herfindahl–Hirschman Index (HHI) of the market,
//! so `S = HHI - 1/C`: the paper's score is an EMD instantiation that equals
//! HHI up to a constant that vanishes as the number of websites grows.

use crate::dist::CountDist;
use serde::{Deserialize, Serialize};

/// Computes the centralization score `S` of an observed distribution.
///
/// Bounds: `0 <= S <= 1 - 1/C`, where the lower bound is attained exactly
/// when every website has its own provider and the upper bound when a single
/// provider serves all `C` websites.
///
/// ```
/// use webdep_core::{CountDist, centralization_score};
/// let d = CountDist::from_counts(vec![1, 1, 1, 1]).unwrap();
/// assert!(centralization_score(&d).abs() < 1e-12); // fully decentralized
/// ```
pub fn centralization_score(dist: &CountDist) -> f64 {
    let c = dist.total() as f64;
    hhi(dist) - 1.0 / c
}

/// [`centralization_score`] on raw counts, for callers that do not need to
/// keep a [`CountDist`] around. Zeros are ignored; returns `None` for an
/// empty distribution.
///
/// This is the fused kernel the analysis cube runs over contiguous count
/// rows: one pass accumulating the total and the sum of squared counts,
/// no sort and no allocation. `S = Σa² / C² − 1/C` is algebraically the
/// sorted-share formulation with one division hoisted out of the loop, so
/// the result is exact for any counts a `CountDist` could hold (integer
/// squares and sums stay below 2⁵³).
pub fn centralization_score_counts_ref(counts: &[u64]) -> Option<f64> {
    let mut total: u64 = 0;
    let mut sum_sq: f64 = 0.0;
    for &a in counts {
        if a == 0 {
            continue;
        }
        total += a;
        let af = a as f64;
        sum_sq += af * af;
    }
    if total == 0 {
        return None;
    }
    let c = total as f64;
    Some(sum_sq / (c * c) - 1.0 / c)
}

/// Deprecated spelling of [`centralization_score_counts_ref`]. The old
/// implementation cloned the counts into a fresh `CountDist` per call; the
/// replacement is a borrowed single-pass kernel.
#[deprecated(note = "use centralization_score_counts_ref; this no longer clones either")]
pub fn centralization_score_counts(counts: &[u64]) -> Option<f64> {
    centralization_score_counts_ref(counts)
}

/// Herfindahl–Hirschman Index: the sum of squared market shares.
///
/// Used in US antitrust practice; the paper notes `S = HHI - 1/C`.
pub fn hhi(dist: &CountDist) -> f64 {
    let c = dist.total() as f64;
    dist.counts()
        .iter()
        .map(|&a| {
            let s = a as f64 / c;
            s * s
        })
        .sum()
}

/// Maximum attainable score for a dataset of `total` websites
/// (one provider serving everything): `1 - 1/C`.
pub fn max_score(total: u64) -> f64 {
    assert!(total > 0, "total must be positive");
    1.0 - 1.0 / total as f64
}

/// US DoJ Horizontal Merger Guidelines interpretation bands for HHI, which
/// the paper offers as context for reading `S` values (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConcentrationBand {
    /// HHI below 0.10: an unconcentrated ("competitive") market.
    Competitive,
    /// HHI in `[0.10, 0.18]`: moderately concentrated.
    ModeratelyConcentrated,
    /// HHI above 0.18: highly concentrated.
    HighlyConcentrated,
}

impl ConcentrationBand {
    /// Classifies an HHI (or `S`) value into a DoJ band.
    pub fn classify(value: f64) -> Self {
        if value < 0.10 {
            ConcentrationBand::Competitive
        } else if value <= 0.18 {
            ConcentrationBand::ModeratelyConcentrated
        } else {
            ConcentrationBand::HighlyConcentrated
        }
    }

    /// Human-readable label matching the guidelines' wording.
    pub fn label(&self) -> &'static str {
        match self {
            ConcentrationBand::Competitive => "competitive",
            ConcentrationBand::ModeratelyConcentrated => "moderately concentrated",
            ConcentrationBand::HighlyConcentrated => "highly concentrated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(counts: &[u64]) -> CountDist {
        CountDist::from_counts(counts.to_vec()).unwrap()
    }

    #[test]
    fn fully_decentralized_scores_zero() {
        let dist = d(&[1; 100]);
        assert!(centralization_score(&dist).abs() < 1e-12);
    }

    #[test]
    fn monopoly_scores_max() {
        let dist = d(&[100]);
        let s = centralization_score(&dist);
        assert!((s - max_score(100)).abs() < 1e-12);
        assert!((s - 0.99).abs() < 1e-12);
    }

    #[test]
    fn score_increases_with_concentration() {
        // Same total, increasingly concentrated.
        let less = d(&[25, 25, 25, 25]);
        let more = d(&[70, 10, 10, 10]);
        let most = d(&[97, 1, 1, 1]);
        let (s1, s2, s3) = (
            centralization_score(&less),
            centralization_score(&more),
            centralization_score(&most),
        );
        assert!(s1 < s2 && s2 < s3, "{s1} {s2} {s3}");
    }

    #[test]
    fn hhi_relation_holds() {
        let dist = d(&[42, 17, 9, 3, 3, 1]);
        let c = dist.total() as f64;
        assert!((centralization_score(&dist) - (hhi(&dist) - 1.0 / c)).abs() < 1e-15);
    }

    #[test]
    fn paper_example_azerbaijan_vs_hong_kong() {
        // §3.1: AZ and HK both have 59% of sites in their top five providers,
        // but AZ's steeper head (42% vs 33% top-1) must yield a higher S.
        // We synthesize 100-site distributions matching the quoted shares.
        let az = d(&[42, 5, 4, 4, 4, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2]);
        let hk = d(&[33, 12, 6, 4, 4, 4, 4, 4, 4, 4, 3, 3, 3, 3, 3, 2, 2, 1, 1]);
        assert!(centralization_score(&az) > centralization_score(&hk));
    }

    #[test]
    fn counts_helper_matches() {
        let counts = [10u64, 0, 5, 5];
        let via_helper = centralization_score_counts_ref(&counts).unwrap();
        let via_dist = centralization_score(&d(&counts));
        assert!((via_helper - via_dist).abs() < 1e-15);
        assert!(centralization_score_counts_ref(&[]).is_none());
        assert!(centralization_score_counts_ref(&[0, 0]).is_none());
        // The deprecated alias delegates to the fused kernel.
        #[allow(deprecated)]
        let via_alias = centralization_score_counts(&counts).unwrap();
        assert_eq!(via_alias, via_helper);
    }

    #[test]
    fn fused_kernel_matches_sorted_shares_on_large_rows() {
        // The fused kernel iterates in storage order; the CountDist path
        // sums sorted shares. Both must agree to float precision on a
        // realistic long-tailed row.
        let counts: Vec<u64> = (1..=400u64).map(|i| (4000 / i).max(1)).collect();
        let fused = centralization_score_counts_ref(&counts).unwrap();
        let via_dist = centralization_score(&d(&counts));
        assert!((fused - via_dist).abs() < 1e-12, "{fused} vs {via_dist}");
    }

    #[test]
    fn doj_bands() {
        assert_eq!(
            ConcentrationBand::classify(0.05),
            ConcentrationBand::Competitive
        );
        assert_eq!(
            ConcentrationBand::classify(0.10),
            ConcentrationBand::ModeratelyConcentrated
        );
        assert_eq!(
            ConcentrationBand::classify(0.18),
            ConcentrationBand::ModeratelyConcentrated
        );
        assert_eq!(
            ConcentrationBand::classify(0.181),
            ConcentrationBand::HighlyConcentrated
        );
        assert_eq!(ConcentrationBand::classify(0.05).label(), "competitive");
    }

    #[test]
    #[should_panic(expected = "total must be positive")]
    fn max_score_requires_positive_total() {
        let _ = max_score(0);
    }
}
