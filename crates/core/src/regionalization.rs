//! Provider-side regionalization metrics (§3.3): usage, endemicity, and the
//! endemicity ratio.
//!
//! A provider's *usage curve* lists, for every country, the percentage of
//! that country's popular websites using the provider, sorted nonincreasing.
//! From the curve:
//!
//! * **usage** `U = sum_i u_i` — the area under the curve; sheer scale;
//! * **endemicity** `E = sum_i (u_1 - u_i)` — the area between the curve and
//!   the horizontal line at its maximum; deviation from globally consistent
//!   use, prioritizing unusual popularity over unusual unpopularity;
//! * **endemicity ratio** `E_R = E / (U + E)` in `[0, 1]` — endemicity
//!   normalized by provider size; small = global reach, large = regional
//!   concentration.

use serde::{Deserialize, Serialize};

/// A provider's usage curve: per-country usage percentages sorted in
/// nonincreasing order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageCurve {
    values: Vec<f64>,
}

impl UsageCurve {
    /// Builds a usage curve from per-country usage percentages (any order,
    /// values in `[0, 100]`; out-of-range values are clamped, NaNs dropped).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        for v in &mut values {
            *v = v.clamp(0.0, 100.0);
        }
        values.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaNs removed"));
        UsageCurve { values }
    }

    /// The sorted usage values (nonincreasing), as percentages.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of countries on the curve.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the curve has no countries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Peak usage `u_1` (0 for an empty curve).
    pub fn peak(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Usage `U`: area under the curve.
    pub fn usage(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Endemicity `E`: area between the curve and the flat line at its peak.
    pub fn endemicity(&self) -> f64 {
        let peak = self.peak();
        self.values.iter().map(|&u| peak - u).sum()
    }

    /// Endemicity ratio `E_R = E / (U + E)`, in `[0, 1]`.
    ///
    /// A provider used identically everywhere scores 0 (fully global); a
    /// provider used in exactly one country approaches 1 as the number of
    /// countries grows. An all-zero or empty curve scores 0 by convention.
    pub fn endemicity_ratio(&self) -> f64 {
        let u = self.usage();
        let e = self.endemicity();
        if u + e == 0.0 {
            0.0
        } else {
            e / (u + e)
        }
    }
}

/// Usage `U` of per-country usage percentages; see [`UsageCurve::usage`].
pub fn usage(per_country_usage: &[f64]) -> f64 {
    UsageCurve::new(per_country_usage.to_vec()).usage()
}

/// Endemicity `E`; see [`UsageCurve::endemicity`].
pub fn endemicity(per_country_usage: &[f64]) -> f64 {
    UsageCurve::new(per_country_usage.to_vec()).endemicity()
}

/// Endemicity ratio `E_R`; see [`UsageCurve::endemicity_ratio`].
pub fn endemicity_ratio(per_country_usage: &[f64]) -> f64 {
    UsageCurve::new(per_country_usage.to_vec()).endemicity_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globally_uniform_provider_has_zero_endemicity() {
        let curve = UsageCurve::new(vec![20.0; 150]);
        assert!((curve.usage() - 3000.0).abs() < 1e-9);
        assert!(curve.endemicity().abs() < 1e-9);
        assert!(curve.endemicity_ratio().abs() < 1e-9);
    }

    #[test]
    fn single_country_provider_is_highly_endemic() {
        let mut usage = vec![0.0; 150];
        usage[0] = 18.0;
        let curve = UsageCurve::new(usage);
        assert!((curve.usage() - 18.0).abs() < 1e-9);
        // E = 149 * 18
        assert!((curve.endemicity() - 149.0 * 18.0).abs() < 1e-9);
        let er = curve.endemicity_ratio();
        assert!((er - 149.0 / 150.0).abs() < 1e-9);
        assert!(er > 0.9);
    }

    #[test]
    fn global_provider_less_endemic_than_regional() {
        // Figure 4's two shapes: Cloudflare-like (high everywhere) vs
        // Beget-like (high in a handful of countries, ~0 elsewhere).
        let global: Vec<f64> = (0..150).map(|i| 60.0 - 0.2 * i as f64).collect();
        let mut regional = vec![0.2; 150];
        for v in regional.iter_mut().take(6) {
            *v = 18.0;
        }
        let g = UsageCurve::new(global);
        let r = UsageCurve::new(regional);
        assert!(g.usage() > r.usage(), "global provider is larger");
        assert!(
            g.endemicity_ratio() < r.endemicity_ratio(),
            "regional provider is more endemic: {} vs {}",
            g.endemicity_ratio(),
            r.endemicity_ratio()
        );
    }

    #[test]
    fn ratio_bounds() {
        for values in [
            vec![0.0; 10],
            vec![100.0; 10],
            vec![50.0, 0.0, 0.0],
            vec![1.0, 2.0, 3.0],
        ] {
            let er = UsageCurve::new(values).endemicity_ratio();
            assert!((0.0..=1.0).contains(&er), "{er}");
        }
        assert_eq!(UsageCurve::new(vec![]).endemicity_ratio(), 0.0);
    }

    #[test]
    fn curve_sorts_and_sanitizes() {
        let curve = UsageCurve::new(vec![5.0, f64::NAN, 150.0, -3.0, 10.0]);
        assert_eq!(curve.values(), &[100.0, 10.0, 5.0, 0.0]);
        assert_eq!(curve.len(), 4);
        assert!(!curve.is_empty());
        assert_eq!(curve.peak(), 100.0);
    }

    #[test]
    fn helper_functions_match_curve_methods() {
        let v = vec![30.0, 10.0, 5.0, 0.0];
        let c = UsageCurve::new(v.clone());
        assert_eq!(usage(&v), c.usage());
        assert_eq!(endemicity(&v), c.endemicity());
        assert_eq!(endemicity_ratio(&v), c.endemicity_ratio());
    }
}
