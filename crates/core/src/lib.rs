//! # webdep-core
//!
//! Core metric suite from *Formalizing Dependence of Web Infrastructure*
//! (SIGCOMM 2025): a statistical toolkit for quantifying **centralization**
//! and **regionalization** of Internet functions.
//!
//! ## Centralization
//!
//! The paper formalizes centralization as the statistical distance of an
//! observed distribution of dependencies from a fully decentralized reference
//! distribution, quantified with Earth Mover's Distance (Wasserstein-1).
//! With the paper's choice of reference (every website has its own provider)
//! and ground distance (normalized vertical difference), the score admits the
//! closed form
//!
//! ```text
//! S = sum_i (a_i / C)^2  -  1 / C
//! ```
//!
//! where `a_i` is the number of websites using provider `i` and
//! `C = sum_i a_i`. See [`centralization`] for the closed form and [`emd`]
//! for the general solver it is validated against.
//!
//! ## Regionalization
//!
//! [`regionalization`] implements the provider-side measures (usage `U`,
//! endemicity `E`, endemicity ratio `E_R`) and [`insularity`] the
//! country-side measure (fraction of websites served from in-country
//! providers).
//!
//! ## Baselines
//!
//! [`topn`] implements the top-N market-share heuristic the paper improves
//! upon, and [`fdiv`] the f-divergence family the paper evaluates and
//! rejects for this task (they saturate on disjoint supports).
//!
//! ## Observability
//!
//! [`metrics`] is not a paper measure: it is the repo's first-party
//! telemetry toolkit — atomic counters, gauges, and fixed-bucket latency
//! histograms behind a registry that renders the Prometheus text format —
//! shared by the measurement pipeline and the query service.
//!
//! ## Quick start
//!
//! ```
//! use webdep_core::prelude::*;
//!
//! // Counts of websites per hosting provider, largest first.
//! let observed = CountDist::from_counts(vec![60, 20, 10, 5, 5]).unwrap();
//! let s = centralization_score(&observed);
//! assert!(s > 0.0 && s < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralization;
pub mod dist;
pub mod emd;
pub mod error;
pub mod fdiv;
pub mod insularity;
pub mod intern;
pub mod metrics;
pub mod regionalization;
pub mod topn;
pub mod transport;
pub mod weighted;

pub use centralization::{
    centralization_score, centralization_score_counts_ref, hhi, ConcentrationBand,
};
pub use dist::CountDist;
pub use emd::{emd_to_decentralized_counts_ref, EmdWorkspace};
pub use error::MetricError;
pub use intern::Interner;
pub use transport::TransportWorkspace;

/// Convenience re-exports for the common entry points.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::centralization::{
        centralization_score, centralization_score_counts, centralization_score_counts_ref, hhi,
        ConcentrationBand,
    };
    pub use crate::dist::CountDist;
    pub use crate::emd::{emd_to_decentralized, DecentralizedReference};
    pub use crate::error::MetricError;
    pub use crate::insularity::{insularity, InsularityInput};
    pub use crate::regionalization::{endemicity, endemicity_ratio, usage, UsageCurve};
    pub use crate::topn::{provider_rank_curve, top_n_share};
}
