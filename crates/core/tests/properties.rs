//! Property-based tests for the metric invariants (Appendix A equivalence,
//! bounds, monotonicity).

use proptest::prelude::*;
use webdep_core::centralization::{centralization_score, hhi, max_score};
use webdep_core::dist::CountDist;
use webdep_core::emd::{emd_to_decentralized, emd_to_decentralized_via_transport};
use webdep_core::fdiv::{hellinger_distance, js_divergence, total_variation};
use webdep_core::regionalization::UsageCurve;
use webdep_core::topn::top_n_share;
use webdep_core::transport::{min_cost_transport, wasserstein1_binned};

fn small_counts() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..12, 1..8)
}

fn any_counts() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..10_000, 1..64)
}

proptest! {
    /// Appendix A: the closed form equals the generic transportation solver.
    #[test]
    fn closed_form_equals_transport(counts in small_counts()) {
        let dist = CountDist::from_counts(counts).unwrap();
        let closed = emd_to_decentralized(&dist);
        let solved = emd_to_decentralized_via_transport(&dist).unwrap();
        prop_assert!((closed - solved).abs() < 1e-7, "{closed} vs {solved}");
    }

    /// S is bounded by [0, 1 - 1/C].
    #[test]
    fn score_bounds(counts in any_counts()) {
        let dist = CountDist::from_counts(counts).unwrap();
        let s = centralization_score(&dist);
        prop_assert!(s >= -1e-12, "{s}");
        prop_assert!(s <= max_score(dist.total()) + 1e-12, "{s}");
    }

    /// S = HHI - 1/C exactly.
    #[test]
    fn hhi_identity(counts in any_counts()) {
        let dist = CountDist::from_counts(counts).unwrap();
        let c = dist.total() as f64;
        prop_assert!((centralization_score(&dist) - (hhi(&dist) - 1.0 / c)).abs() < 1e-12);
    }

    /// Merging two providers (same C) never decreases S: consolidation is
    /// monotone under the metric.
    #[test]
    fn merging_providers_increases_score(counts in prop::collection::vec(1u64..100, 2..16)) {
        let before = CountDist::from_counts(counts.clone()).unwrap();
        let mut merged = counts.clone();
        let b = merged.pop().unwrap();
        merged[0] += b;
        let after = CountDist::from_counts(merged).unwrap();
        prop_assert!(centralization_score(&after) >= centralization_score(&before) - 1e-12);
    }

    /// Scaling every count by k leaves S unchanged (shape invariance,
    /// requirement 3 in §3.1).
    #[test]
    fn scale_invariance(counts in prop::collection::vec(1u64..100, 1..16), k in 1u64..20) {
        let base = CountDist::from_counts(counts.clone()).unwrap();
        let scaled = CountDist::from_counts(counts.iter().map(|&c| c * k).collect()).unwrap();
        let s0 = centralization_score(&base);
        let s1 = centralization_score(&scaled);
        // S changes only through the 1/C term; compare HHI which is exactly
        // shape-invariant.
        prop_assert!((hhi(&base) - hhi(&scaled)).abs() < 1e-12);
        // And the scores converge as C grows.
        prop_assert!((s0 - s1).abs() <= 1.0 / base.total() as f64 + 1e-12);
    }

    /// top_n_share is monotone in n and reaches 1.
    #[test]
    fn topn_monotone(counts in any_counts()) {
        let dist = CountDist::from_counts(counts).unwrap();
        let mut prev = 0.0;
        for n in 1..=dist.num_providers() {
            let t = top_n_share(&dist, n);
            prop_assert!(t >= prev - 1e-12);
            prev = t;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
    }

    /// Endemicity ratio is always within [0, 1] and zero for flat curves.
    #[test]
    fn endemicity_ratio_bounds(values in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let er = UsageCurve::new(values).endemicity_ratio();
        prop_assert!((0.0..=1.0).contains(&er));
    }

    /// The binned Wasserstein closed form agrees with the generic solver on
    /// a line metric.
    #[test]
    fn wasserstein_agrees_with_transport(
        a in prop::collection::vec(0u8..6, 2..6),
    ) {
        let af: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let total: f64 = af.iter().sum();
        prop_assume!(total > 0.0);
        // Uniform demand with the same mass.
        let b = vec![total / af.len() as f64; af.len()];
        let w1 = wasserstein1_binned(&af, &b).unwrap();
        let w2 = min_cost_transport(&af, &b, |i, j| (i as f64 - j as f64).abs()).unwrap();
        prop_assert!((w1 - w2).abs() < 1e-7, "{w1} vs {w2}");
    }

    /// f-divergences respect their bounds on arbitrary distribution pairs.
    #[test]
    fn fdiv_bounds(
        raw_p in prop::collection::vec(0.01f64..10.0, 2..12),
        raw_q in prop::collection::vec(0.01f64..10.0, 2..12),
    ) {
        let n = raw_p.len().min(raw_q.len());
        let norm = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v[..n].iter().sum();
            v[..n].iter().map(|x| x / s).collect()
        };
        let p = norm(&raw_p);
        let q = norm(&raw_q);
        let tv = total_variation(&p, &q).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv));
        let h = hellinger_distance(&p, &q).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        let js = js_divergence(&p, &q).unwrap();
        prop_assert!((-1e-12..=std::f64::consts::LN_2 + 1e-9).contains(&js));
    }
}
