//! The scheduler and cache knobs must never change *what* is measured:
//! same world + config ⇒ identical dataset for any worker count,
//! scheduling mode, or cache sharing, and the shared cache must strictly
//! reduce wire traffic.

use webdep_pipeline::run::{measure, measure_with_stats, PipelineConfig, Scheduling};
use webdep_webgen::{DeployConfig, World, WorldConfig};

fn config(workers: usize, scheduling: Scheduling, shared_cache: bool) -> PipelineConfig {
    PipelineConfig {
        workers,
        scheduling,
        shared_cache,
        ..Default::default()
    }
}

#[test]
fn dataset_identical_across_worker_counts() {
    let world = World::generate(WorldConfig::tiny());
    let dep = DeployConfig::default();
    let dep = webdep_webgen::DeployedWorld::deploy(&world, dep);

    let solo = measure(&world, &dep, &config(1, Scheduling::Dynamic, true));
    let eight = measure(&world, &dep, &config(8, Scheduling::Dynamic, true));
    assert_eq!(solo, eight, "worker count changed the measured dataset");
}

#[test]
fn dataset_identical_across_scheduling_and_cache_modes() {
    let world = World::generate(WorldConfig::tiny());
    let dep = webdep_webgen::DeployedWorld::deploy(&world, DeployConfig::default());

    let baseline = measure(&world, &dep, &config(4, Scheduling::Static, false));
    let dynamic = measure(&world, &dep, &config(4, Scheduling::Dynamic, false));
    let cached = measure(&world, &dep, &config(4, Scheduling::Dynamic, true));
    assert_eq!(baseline, dynamic, "scheduling mode changed the dataset");
    assert_eq!(baseline, cached, "shared cache changed the dataset");
}

#[test]
fn dataset_identical_across_rack_serving_modes() {
    let world = World::generate(WorldConfig::tiny());
    let threaded = webdep_webgen::DeployedWorld::deploy(
        &world,
        DeployConfig {
            inline_racks: false,
            ..DeployConfig::default()
        },
    );
    let inline = webdep_webgen::DeployedWorld::deploy(&world, DeployConfig::default());

    let from_threads = measure(&world, &threaded, &config(4, Scheduling::Dynamic, true));
    let from_inline = measure(&world, &inline, &config(4, Scheduling::Dynamic, true));
    assert_eq!(
        from_threads, from_inline,
        "rack serving mode changed the dataset"
    );
}

#[test]
fn dataset_identical_with_and_without_referral_caching() {
    let world = World::generate(WorldConfig::tiny());
    let dep = webdep_webgen::DeployedWorld::deploy(&world, DeployConfig::default());

    let mut query_driven = config(4, Scheduling::Dynamic, true);
    query_driven.resolver.cache_referrals = false;
    let strict = measure(&world, &dep, &query_driven);
    let cached = measure(&world, &dep, &config(4, Scheduling::Dynamic, true));
    assert_eq!(strict, cached, "referral caching changed the dataset");
}

#[test]
fn shared_cache_reduces_wire_queries() {
    let world = World::generate(WorldConfig::tiny());
    let dep = webdep_webgen::DeployedWorld::deploy(&world, DeployConfig::default());

    let (_, private_only) =
        measure_with_stats(&world, &dep, &config(8, Scheduling::Dynamic, false));
    let (_, shared) = measure_with_stats(&world, &dep, &config(8, Scheduling::Dynamic, true));

    assert!(
        shared.wire_queries < private_only.wire_queries,
        "shared cache should cut wire queries: shared {} vs private {}",
        shared.wire_queries,
        private_only.wire_queries
    );
    assert!(shared.shared_cache_hits > 0);
    assert_eq!(private_only.shared_cache_hits, 0);
}

/// The determinism contract extends to the on-disk chunk store: per-chunk
/// string interning happens in site order at encode time, so the interner
/// id assignments — and therefore every chunk file's bytes — must be
/// identical no matter how many workers raced to commit, including the
/// manifest. One worker vs two vs eight, compared file-by-file.
#[test]
fn streamed_chunks_identical_across_worker_counts() {
    let mut wc = WorldConfig::tiny();
    // Reduced: this measures the world three times.
    wc.sites_per_country = 100;
    wc.global_pool_size = 300;
    let world = World::generate(wc);
    let dep = webdep_webgen::DeployedWorld::deploy(&world, DeployConfig::default());

    let dir_for = |workers: usize| {
        std::env::temp_dir().join(format!(
            "webdep-determinism-chunks-{workers}w-{}",
            std::process::id()
        ))
    };
    for workers in [1, 2, 8] {
        webdep_pipeline::measure_streamed(
            &world,
            &dep,
            &config(workers, Scheduling::Dynamic, true),
            &dir_for(workers),
            None,
        )
        .unwrap();
    }

    let reference = dir_for(1);
    let mut names: Vec<_> = std::fs::read_dir(&reference)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    names.sort();
    assert!(names.len() > 2, "expected a manifest and ≥2 chunks");
    for workers in [2, 8] {
        let dir = dir_for(workers);
        let mut other: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        other.sort();
        assert_eq!(names, other, "file set differs at {workers} workers");
        for name in &names {
            assert_eq!(
                std::fs::read(reference.join(name)).unwrap(),
                std::fs::read(dir.join(name)).unwrap(),
                "{name:?} differs between 1 and {workers} workers"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&reference);
}
