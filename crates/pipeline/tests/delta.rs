//! Incremental epoch measurement: `measure_delta` must materialize a store
//! byte-identical to a from-scratch `measure_streamed` of the evolved
//! world — the same determinism contract as crash-resume — at any worker
//! count, while re-measuring only the dirty site set.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use webdep_pipeline::run::{measure_streamed, PipelineConfig};
use webdep_pipeline::{measure_delta, ChunkStore};
use webdep_webgen::{
    provider_site_counts, DeployConfig, DeployedWorld, EpochKnobs, EvolutionPlan, World,
    WorldConfig,
};

/// Big enough to span several 4096-site chunks (so clean-chunk adoption is
/// actually exercised), small enough to measure in seconds.
fn small_world() -> World {
    World::generate(WorldConfig {
        seed: 42,
        sites_per_country: 90,
        global_pool_size: 120,
        tail_scale: 0.04,
        pool_target: 40,
    })
}

fn cfg(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("webdep-delta-{name}-{}", std::process::id()))
}

/// Byte-level store equality: manifest and every chunk file.
fn assert_stores_identical(a: &Path, b: &Path, what: &str) {
    let store = ChunkStore::open(a).unwrap();
    let files: Vec<String> = std::iter::once("manifest.json".to_string())
        .chain((0..store.num_chunks()).map(|c| format!("chunk-{c:06}.col")))
        .collect();
    for f in &files {
        assert_eq!(
            std::fs::read(a.join(f)).unwrap(),
            std::fs::read(b.join(f)).unwrap(),
            "{what}: {f} differs"
        );
    }
    assert_eq!(
        std::fs::read_dir(a).unwrap().count(),
        std::fs::read_dir(b).unwrap().count(),
        "{what}: stray files"
    );
}

/// Churn-only evolution (no in-place migration): every chunk below the old
/// final partial one is clean, so the delta path must adopt it wholesale,
/// and the result must match the from-scratch store byte for byte at 1, 2,
/// and 8 workers.
#[test]
fn delta_store_byte_identical_and_adopts_clean_chunks() {
    let base = small_world();
    let census = Arc::new(provider_site_counts(&base));
    let pinned = DeployConfig {
        pool_sites: Some(Arc::clone(&census)),
        ..DeployConfig::default()
    };
    let dep1 = DeployedWorld::deploy(&base, pinned.clone());
    let epoch1 = tmp("adopt-e1");
    let _ = std::fs::remove_dir_all(&epoch1);
    measure_streamed(&base, &dep1, &cfg(4), &epoch1, None).unwrap();

    let plan = EvolutionPlan {
        seed: 7,
        epochs: vec![EpochKnobs {
            migration: 0.0,
            ..EpochKnobs::steady(0.10)
        }],
    };
    let (evolved, delta) = plan.evolve_epoch(&base, 0);
    delta.certify_unchanged(&base, &evolved).unwrap();
    assert!(delta.migrated.is_empty());

    // From-scratch comparator: the evolved world deployed with the *base*
    // epoch's pinned pool census, exactly like the delta path.
    let dep2 = DeployedWorld::deploy(&evolved, pinned.clone());
    let full = tmp("adopt-full");
    let _ = std::fs::remove_dir_all(&full);
    measure_streamed(&evolved, &dep2, &cfg(4), &full, None).unwrap();

    for workers in [1usize, 2, 8] {
        let dir = tmp(&format!("adopt-w{workers}"));
        let _ = std::fs::remove_dir_all(&dir);
        let stats =
            measure_delta(&evolved, &dep2, &cfg(workers), &delta, &epoch1, &dir, None).unwrap();
        assert_eq!(stats.sites_total, evolved.sites.len());
        assert_eq!(stats.sites_remeasured, delta.dirty_count());
        assert!(
            stats.chunks_adopted > 0,
            "churn-only evolution must adopt the clean full chunks"
        );
        assert_stores_identical(&full, &dir, &format!("delta at {workers} workers"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&epoch1).unwrap();
    std::fs::remove_dir_all(&full).unwrap();
}

/// In-place provider migration dirties mid-store sites, so chunks lose
/// adoption eligibility and their clean rows are re-committed from the
/// previous store instead — still byte-identical to from-scratch, still
/// only dirty sites re-measured.
#[test]
fn delta_with_migration_recommits_clean_rows() {
    let base = small_world();
    let census = Arc::new(provider_site_counts(&base));
    let pinned = DeployConfig {
        pool_sites: Some(Arc::clone(&census)),
        ..DeployConfig::default()
    };
    let dep1 = DeployedWorld::deploy(&base, pinned.clone());
    let epoch1 = tmp("mig-e1");
    let _ = std::fs::remove_dir_all(&epoch1);
    measure_streamed(&base, &dep1, &cfg(4), &epoch1, None).unwrap();

    let plan = EvolutionPlan::continuous(1, 0.10, 3);
    let (evolved, delta) = plan.evolve_epoch(&base, 0);
    delta.certify_unchanged(&base, &evolved).unwrap();
    assert!(
        !delta.migrated.is_empty(),
        "steady preset migrates sites in place"
    );

    let dep2 = DeployedWorld::deploy(&evolved, pinned.clone());
    let full = tmp("mig-full");
    let _ = std::fs::remove_dir_all(&full);
    measure_streamed(&evolved, &dep2, &cfg(4), &full, None).unwrap();

    let dir = tmp("mig-delta");
    let _ = std::fs::remove_dir_all(&dir);
    let stats = measure_delta(&evolved, &dep2, &cfg(4), &delta, &epoch1, &dir, None).unwrap();
    assert_eq!(stats.sites_remeasured, delta.dirty_count());
    assert!(
        stats.rows_recommitted > 0,
        "dirtied chunks re-commit their clean rows from the previous store"
    );
    assert_stores_identical(&full, &dir, "delta with migration");

    // The migrated sites' observations really moved provider.
    let ds_old = ChunkStore::open(&epoch1)
        .unwrap()
        .load_dataset(&base)
        .unwrap();
    let ds_new = ChunkStore::open(&dir)
        .unwrap()
        .load_dataset(&evolved)
        .unwrap();
    let mut changed = 0;
    for &i in &delta.migrated {
        if ds_old.observations[i as usize].hosting_org
            != ds_new.observations[i as usize].hosting_org
        {
            changed += 1;
        }
    }
    assert!(changed > 0, "migration must be visible in the measurements");

    std::fs::remove_dir_all(&epoch1).unwrap();
    std::fs::remove_dir_all(&full).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A delta against the wrong store or wrong world is refused up front.
#[test]
fn delta_guards_label_and_site_count() {
    let base = small_world();
    let census = Arc::new(provider_site_counts(&base));
    let pinned = DeployConfig {
        pool_sites: Some(census),
        ..DeployConfig::default()
    };
    let dep = DeployedWorld::deploy(&base, pinned.clone());
    let epoch1 = tmp("guard-e1");
    let _ = std::fs::remove_dir_all(&epoch1);
    measure_streamed(&base, &dep, &cfg(2), &epoch1, None).unwrap();

    let (evolved, delta) = EvolutionPlan::continuous(1, 0.05, 1).evolve_epoch(&base, 0);
    let dep2 = DeployedWorld::deploy(&evolved, pinned);
    let out = tmp("guard-out");
    // Wrong world for the delta (the base, not the evolved epoch).
    assert!(measure_delta(&base, &dep, &cfg(2), &delta, &epoch1, &out, None).is_err());
    // Wrong previous store (point it at the output dir, which is empty).
    let _ = std::fs::remove_dir_all(&out);
    assert!(measure_delta(&evolved, &dep2, &cfg(2), &delta, &out, &out, None).is_err());
    std::fs::remove_dir_all(&epoch1).unwrap();
}
