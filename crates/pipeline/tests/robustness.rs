//! Robustness of the measurement pipeline: failure injection (packet
//! loss) and the geolocation-accuracy ablation.

use std::time::Duration;
use webdep_dns::resolver::ResolverConfig;
use webdep_pipeline::{measure, PipelineConfig};
use webdep_tls::scanner::ScannerConfig;
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn tiny_world() -> World {
    let mut cfg = WorldConfig::tiny();
    // Smaller still: robustness runs deploy several worlds.
    cfg.sites_per_country = 100;
    cfg.global_pool_size = 300;
    World::generate(cfg)
}

#[test]
fn retries_carry_measurement_through_packet_loss() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(
        &world,
        DeployConfig {
            loss_rate: 0.05,
            ..Default::default()
        },
    );
    let ds = measure(
        &world,
        &dep,
        &PipelineConfig {
            workers: 4,
            resolver: ResolverConfig {
                timeout: Duration::from_millis(40),
                retries: 8,
                ..Default::default()
            },
            scanner: ScannerConfig {
                timeout: Duration::from_millis(40),
                retries: 8,
                site_deadline: None,
            },
            ..Default::default()
        },
    );
    let rate = ds.success_rate();
    assert!(rate > 0.95, "success rate under 5% loss: {rate}");
}

#[test]
fn geolocation_noise_does_not_move_org_attribution() {
    let world = tiny_world();
    let clean = DeployedWorld::deploy(&world, DeployConfig::default());
    let noisy = DeployedWorld::deploy(
        &world,
        DeployConfig {
            geo_accuracy: 0.80, // exaggerated so the per-range error process is visible even on few dominant prefixes (the paper's knob is 0.894)
            ..Default::default()
        },
    );
    let ds_clean = measure(&world, &clean, &PipelineConfig::default());
    let ds_noisy = measure(&world, &noisy, &PipelineConfig::default());

    // Organization attribution (pfx2as + AS-org) is untouched by the
    // geolocation error process...
    let mut geo_diffs = 0usize;
    let mut geo_total = 0usize;
    for (a, b) in ds_clean.observations.iter().zip(&ds_noisy.observations) {
        assert_eq!(a.hosting_org, b.hosting_org, "{}", a.domain);
        assert_eq!(a.dns_org, b.dns_org, "{}", a.domain);
        assert_eq!(a.ca_owner, b.ca_owner, "{}", a.domain);
        if let (Some(x), Some(y)) = (&a.hosting_ip_country, &b.hosting_ip_country) {
            geo_total += 1;
            if x != y {
                geo_diffs += 1;
            }
        }
    }
    // ...while the geolocation column visibly degrades.
    let diff_rate = geo_diffs as f64 / geo_total.max(1) as f64;
    assert!(
        diff_rate > 0.005,
        "expected visible geolocation noise, got {diff_rate}"
    );
    assert!(
        diff_rate < 0.6,
        "noise should stay bounded by the error budget, got {diff_rate}"
    );
}
