//! Adversarial-world tests for the fault-injection layer: when the
//! substrate degrades arbitrarily — total loss, every server out, a flaky
//! majority — the pipeline must terminate without panicking, account for
//! every failure in the taxonomy, and stay byte-deterministic across
//! worker counts.

use std::sync::Arc;
use std::time::Duration;
use webdep_dns::resolver::ResolverConfig;
use webdep_netsim::{FaultKind, FaultPlan};
use webdep_pipeline::{measure, FailureCause, MeasuredDataset, PipelineConfig};
use webdep_tls::scanner::ScannerConfig;
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn small_world() -> World {
    World::generate(WorldConfig {
        seed: 42,
        sites_per_country: 60,
        global_pool_size: 300,
        tail_scale: 0.04,
        pool_target: 40,
    })
}

/// Short timeouts, no retries: faults are deterministic, so a retry of a
/// faulted query can never succeed — only rotation to a different server
/// can, and that needs no retry budget.
fn fast_config(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        resolver: ResolverConfig {
            timeout: Duration::from_millis(5),
            retries: 0,
            ..Default::default()
        },
        scanner: ScannerConfig {
            timeout: Duration::from_millis(5),
            retries: 0,
            site_deadline: None,
        },
        ..Default::default()
    }
}

fn deploy_with_faults(world: &World, plan: FaultPlan) -> DeployedWorld {
    DeployedWorld::deploy(
        world,
        DeployConfig {
            faults: Some(Arc::new(plan)),
            ..Default::default()
        },
    )
}

fn assert_failures_total(ds: &MeasuredDataset) {
    let tax = ds.failure_taxonomy();
    assert_eq!(tax.total, ds.observations.len() as u64);
    // Every observation is either clean or carries at least one layer
    // error — the taxonomy never loses a site.
    let with_errors = ds
        .observations
        .iter()
        .filter(|o| o.hosting_error.is_some() || o.dns_error.is_some() || o.ca_error.is_some())
        .count() as u64;
    assert_eq!(tax.clean + with_errors, tax.total);
}

/// `loss_rate = 1.0`: no datagram is ever delivered. The run must come
/// back with every site timed out, not hang or panic.
#[test]
fn total_packet_loss_terminates_with_all_timeouts() {
    let world = small_world();
    let dep = DeployedWorld::deploy(
        &world,
        DeployConfig {
            loss_rate: 1.0,
            ..Default::default()
        },
    );
    let ds = measure(&world, &dep, &fast_config(8));
    assert_eq!(ds.success_rate(), 0.0);
    assert_failures_total(&ds);
    let tax = ds.failure_taxonomy();
    assert_eq!(tax.clean, 0, "no site can measure under total loss");
    assert_eq!(
        tax.count("hosting", FailureCause::Timeout),
        tax.total,
        "total loss should time every hosting lookup out: {}",
        tax.to_markdown()
    );
}

/// Every unprotected server down for the whole run. The protected root
/// still answers, so resolution dies one hop later — still a timeout,
/// still accounted, still terminating.
#[test]
fn all_servers_out_terminates_and_accounts() {
    let world = small_world();
    let dep = deploy_with_faults(&world, FaultPlan::outages(11, 1.0));
    let ds = measure(&world, &dep, &fast_config(8));
    assert_eq!(ds.success_rate(), 0.0);
    assert_failures_total(&ds);
    let tax = ds.failure_taxonomy();
    assert_eq!(tax.clean, 0);
    // Outages are transport-level black holes: the only visible cause is
    // a timeout (never SERVFAIL or malformed answers).
    for cause in FailureCause::ALL {
        let n = tax.count("hosting", cause) + tax.count("dns", cause);
        match cause {
            FailureCause::Timeout => assert!(n > 0),
            FailureCause::Skipped => {}
            _ => assert_eq!(n, 0, "unexpected {} under outages", cause.name()),
        }
    }
}

/// A flaky majority (75% of servers, 90% fail rate, full repertoire minus
/// Delay — the sleeps would dominate the test) must still terminate and
/// the taxonomy must show only causes the injected kinds can produce.
#[test]
fn flaky_majority_terminates_with_matching_taxonomy() {
    let world = small_world();
    let plan = FaultPlan::flaky(
        13,
        0.75,
        0.9,
        vec![
            FaultKind::Drop,
            FaultKind::ServFail,
            FaultKind::Truncate,
            FaultKind::Garble,
        ],
    );
    let dep = deploy_with_faults(&world, plan);
    let ds = measure(&world, &dep, &fast_config(8));
    assert_failures_total(&ds);
    let tax = ds.failure_taxonomy();
    assert!(tax.clean < tax.total, "a flaky majority must leave a mark");
    // Drop/Truncate/Garble surface as timeouts (nothing usable arrives
    // before the deadline), ServFail as a refusal; rack faults can also
    // skip the CA scan. NxDomain/NoRecords would mean the faults corrupted
    // *content*, which they never do.
    for layer in ["hosting", "dns", "ca"] {
        assert_eq!(tax.count(layer, FailureCause::NxDomain), 0, "{layer}");
        assert_eq!(tax.count(layer, FailureCause::NoRecords), 0, "{layer}");
    }
    let refused = tax.count("hosting", FailureCause::Refused)
        + tax.count("dns", FailureCause::Refused)
        + tax.count("ca", FailureCause::Refused);
    assert!(
        refused > 0,
        "ServFail in the repertoire must show up as refusals"
    );
}

/// The determinism law under faults: same seed + same plan ⇒ the same
/// dataset, byte for byte, no matter how many workers measure it.
#[test]
fn faulted_dataset_identical_across_worker_counts() {
    let world = small_world();
    let plan = FaultPlan::flaky(
        17,
        0.5,
        0.5,
        vec![FaultKind::Drop, FaultKind::ServFail, FaultKind::Truncate],
    );
    let dep = deploy_with_faults(&world, plan);
    let solo = measure(&world, &dep, &fast_config(1));
    let eight = measure(&world, &dep, &fast_config(8));
    assert_eq!(solo, eight, "worker count changed the faulted dataset");

    // And a separately constructed deployment with an equal plan agrees
    // too: fault decisions are functions of the plan, not the process.
    let plan2 = FaultPlan::flaky(
        17,
        0.5,
        0.5,
        vec![FaultKind::Drop, FaultKind::ServFail, FaultKind::Truncate],
    );
    let dep2 = deploy_with_faults(&world, plan2);
    let again = measure(&world, &dep2, &fast_config(4));
    assert_eq!(solo, again, "redeployment changed the faulted dataset");
}

/// The same law for an *outage* plan. Outages are enforced in the
/// network's send path, where a careless implementation could black-hole
/// replies to the vantage endpoints too — and vantage addresses are
/// assigned by worker arrival order, which would make the dataset depend
/// on worker count. Outages must key on the deployment's fixed serving
/// addresses only.
#[test]
fn outage_dataset_identical_across_worker_counts() {
    let world = small_world();
    let dep = deploy_with_faults(&world, FaultPlan::outages(23, 0.3));
    let solo = measure(&world, &dep, &fast_config(1));
    let eight = measure(&world, &dep, &fast_config(8));
    assert_eq!(solo, eight, "worker count changed the outage dataset");
    // The comparison only bites if the outage actually splits the world:
    // some sites must fail and some must still measure cleanly.
    let tax = solo.failure_taxonomy();
    assert!(tax.clean > 0, "a 30% outage should leave survivors");
    assert!(tax.clean < tax.total, "a 30% outage should leave a mark");
}

/// Flaky servers leave fingerprints in the observability counters:
/// truncated datagrams are malformed, garbled ones mismatch their id, and
/// both must be visible in the run's aggregate stats.
#[test]
fn corruption_faults_show_up_in_run_counters() {
    let world = small_world();
    let plan = FaultPlan::flaky(19, 0.6, 0.8, vec![FaultKind::Truncate, FaultKind::Garble]);
    let dep = deploy_with_faults(&world, plan);
    let (_, stats) = webdep_pipeline::measure_with_stats(&world, &dep, &fast_config(8));
    assert!(
        stats.malformed_datagrams > 0,
        "truncation must be counted as malformed datagrams"
    );
    assert!(
        stats.mismatched_ids > 0,
        "garbling must be counted as id mismatches"
    );
}
