//! Supervision, chaos, and crash-resume: a panicking site must cost only
//! itself, a dying worker must cost only one retry of its in-flight
//! batch, a hung worker must be caught by the watchdog, and a run resumed
//! from its journal must reassemble a byte-identical dataset.

use std::path::{Path, PathBuf};
use std::time::Duration;
use webdep_pipeline::run::measure_with_stats;
use webdep_pipeline::{
    measure, measure_journaled, measure_streamed, resume_from_journal, resume_streamed, ChaosPlan,
    ChunkStore, FailureCause, MeasuredDataset, PipelineConfig, SupervisorConfig,
};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn tiny_world() -> World {
    let mut cfg = WorldConfig::tiny();
    // Smaller still: these tests deploy and measure several times.
    cfg.sites_per_country = 100;
    cfg.global_pool_size = 300;
    World::generate(cfg)
}

fn config(chaos: Option<ChaosPlan>) -> PipelineConfig {
    PipelineConfig {
        workers: 4,
        chaos,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("webdep-supervision-{name}-{}", std::process::id()))
}

/// Byte-level identity, not just `PartialEq`: the journal round-trips
/// through JSON, so the acceptance bar is the serialized form.
fn assert_byte_identical(a: &MeasuredDataset, b: &MeasuredDataset, what: &str) {
    assert_eq!(a, b, "{what}: datasets differ structurally");
    for (x, y) in a.observations.iter().zip(&b.observations) {
        assert_eq!(
            serde_json::to_string(x).unwrap(),
            serde_json::to_string(y).unwrap(),
            "{what}: serialized observation differs for {}",
            x.domain
        );
    }
}

#[test]
fn injected_panic_is_isolated_to_its_site() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let target = world.sites.len() / 2;

    let clean = measure(&world, &dep, &config(None));
    let (ds, stats) =
        measure_with_stats(&world, &dep, &config(Some(ChaosPlan::panic_at(&[target]))));

    assert_eq!(stats.supervision.panics_isolated, 1);
    assert_eq!(
        stats.supervision.workers_lost, 0,
        "a panic must not kill its worker"
    );
    for (i, (want, got)) in clean.observations.iter().zip(&ds.observations).enumerate() {
        if i == target {
            let e = got
                .hosting_error
                .as_ref()
                .expect("panicked site records a failure");
            assert_eq!(e.cause, FailureCause::Internal);
            assert!(
                e.detail.starts_with("panic:"),
                "panic payload should surface in the detail: {}",
                e.detail
            );
        } else {
            assert_eq!(want, got, "site {i} was disturbed by a panic elsewhere");
        }
    }
}

#[test]
fn worker_death_costs_one_retry_and_zero_bytes() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let target = world.sites.len() / 2;

    let clean = measure(&world, &dep, &config(None));
    let (ds, stats) =
        measure_with_stats(&world, &dep, &config(Some(ChaosPlan::kill_at(&[target]))));

    // The kill fires on the first attempt only, so the requeued batch
    // re-measures cleanly: exactly one loss, one requeue, one respawn.
    assert_eq!(stats.supervision.workers_lost, 1);
    assert_eq!(stats.supervision.batches_requeued, 1);
    assert_eq!(stats.supervision.workers_respawned, 1);
    assert_eq!(stats.supervision.sites_poisoned, 0);
    assert_byte_identical(&clean, &ds, "worker death");
}

#[test]
fn poisoned_batch_is_failed_not_retried_forever() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();
    let target = n / 2;
    // Dynamic batches are 16-aligned; the poisoned site takes down the
    // rest of its batch (earlier sites were committed before the kill).
    let batch_hi = ((target / 16 + 1) * 16).min(n);

    let clean = measure(&world, &dep, &config(None));
    let (ds, stats) =
        measure_with_stats(&world, &dep, &config(Some(ChaosPlan::poison_at(&[target]))));

    assert_eq!(
        stats.supervision.workers_lost, 2,
        "poison threshold is two kills"
    );
    assert_eq!(
        stats.supervision.batches_requeued, 1,
        "the second kill poisons, not requeues"
    );
    assert_eq!(stats.supervision.sites_poisoned, (batch_hi - target) as u64);
    for (i, (want, got)) in clean.observations.iter().zip(&ds.observations).enumerate() {
        if (target..batch_hi).contains(&i) {
            let e = got
                .hosting_error
                .as_ref()
                .expect("poisoned site records a failure");
            assert_eq!(e.cause, FailureCause::Internal, "site {i}");
            assert_eq!(
                got.error.as_deref(),
                Some("internal: site batch abandoned after killing 2 workers"),
                "site {i}"
            );
        } else {
            assert_eq!(
                want, got,
                "site {i} outside the poisoned batch was disturbed"
            );
        }
    }
}

#[test]
fn hung_worker_is_caught_by_the_watchdog() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let target = world.sites.len() / 3;

    let clean = measure(&world, &dep, &config(None));
    let mut cfg = config(Some(ChaosPlan::hang_at(&[target])));
    // Short deadline so the stale-heartbeat path (not thread death)
    // triggers; healthy sites measure in well under this.
    cfg.supervisor = SupervisorConfig {
        site_deadline: Duration::from_millis(500),
        ..SupervisorConfig::default()
    };
    let (ds, stats) = measure_with_stats(&world, &dep, &cfg);

    assert!(
        stats.supervision.workers_lost >= 1,
        "the watchdog never fired: {:?}",
        stats.supervision
    );
    assert!(stats.supervision.batches_requeued >= 1);
    assert_eq!(
        stats.supervision.sites_poisoned, 0,
        "the hang fires once; the retry succeeds"
    );
    assert_byte_identical(&clean, &ds, "hung worker");
}

#[test]
fn resume_is_byte_identical_at_three_progress_points() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();

    let clean = measure(&world, &dep, &config(None));
    let full_path = tmp("full");
    let (full, _) = measure_journaled(&world, &dep, &config(None), &full_path).unwrap();
    assert_byte_identical(&clean, &full, "journaled run");

    let text = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), n + 1, "header + one record per site");

    for (point, frac) in [(0, 0.08), (1, 0.5), (2, 0.92)] {
        let k = ((n as f64) * frac) as usize;
        // Simulate a run killed after k commits: keep the header and the
        // first k records, exactly what a crashed process leaves behind.
        let cut_path = tmp(&format!("cut-{point}"));
        std::fs::write(&cut_path, format!("{}\n", lines[..=k].join("\n"))).unwrap();

        let (resumed, stats) = resume_from_journal(&world, &dep, &config(None), &cut_path).unwrap();
        assert_eq!(stats.supervision.sites_resumed, k as u64);
        assert_byte_identical(&clean, &resumed, &format!("resume from {k}/{n} records"));

        // The healed journal is complete: resuming again measures nothing.
        let (again, stats2) = resume_from_journal(&world, &dep, &config(None), &cut_path).unwrap();
        assert_eq!(stats2.supervision.sites_resumed, n as u64);
        assert_byte_identical(&clean, &again, "second resume (fully journaled)");
        let _ = std::fs::remove_file(&cut_path);
    }
    let _ = std::fs::remove_file(&full_path);
}

#[test]
fn a_torn_journal_tail_heals_on_resume() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();

    let clean = measure(&world, &dep, &config(None));
    let full_path = tmp("torn-full");
    let (_, _) = measure_journaled(&world, &dep, &config(None), &full_path).unwrap();
    let text = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // A crash mid-write leaves k whole records and half of record k+1.
    let k = n / 4;
    let half = &lines[k + 1][..lines[k + 1].len() / 2];
    let torn_path = tmp("torn");
    std::fs::write(&torn_path, format!("{}\n{half}", lines[..=k].join("\n"))).unwrap();

    let (resumed, stats) = resume_from_journal(&world, &dep, &config(None), &torn_path).unwrap();
    assert_eq!(
        stats.supervision.sites_resumed, k as u64,
        "the torn record is dropped"
    );
    assert_byte_identical(&clean, &resumed, "resume over a torn tail");
    let _ = std::fs::remove_file(&torn_path);
    let _ = std::fs::remove_file(&full_path);
}

/// The tier-1 chaos smoke: one worker death plus a kill-and-resume cycle
/// on the smallest world that still exercises batching.
#[test]
fn chaos_smoke_one_worker_death_and_resume() {
    let mut wc = WorldConfig::tiny();
    wc.sites_per_country = 30;
    wc.global_pool_size = 100;
    let world = World::generate(wc);
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();
    let target = n / 2;

    let clean = measure(&world, &dep, &config(None));
    let path = tmp("smoke");
    let (ds, stats) = measure_journaled(
        &world,
        &dep,
        &config(Some(ChaosPlan::kill_at(&[target]))),
        &path,
    )
    .unwrap();
    assert_eq!(stats.supervision.workers_lost, 1);
    assert_byte_identical(&clean, &ds, "chaos smoke (journaled, one death)");

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let cut = tmp("smoke-cut");
    std::fs::write(&cut, format!("{}\n", lines[..=n / 2].join("\n"))).unwrap();
    let (resumed, rstats) = resume_from_journal(&world, &dep, &config(None), &cut).unwrap();
    assert_eq!(rstats.supervision.sites_resumed, (n / 2) as u64);
    assert_byte_identical(&clean, &resumed, "chaos smoke resume");
    let _ = std::fs::remove_file(&cut);
    let _ = std::fs::remove_file(&path);
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// A journaled streamed run killed mid-chunk: the crash scene keeps the
/// durable chunks, tears one chunk file mid-write, loses the final chunk
/// entirely, and cuts the journal at 60%. Resuming over the chunk store
/// must compose all three recovery tiers — durable chunks wholesale,
/// journal records healing the torn/missing chunks, re-measurement for
/// the rest — and reload byte-identical to an uninterrupted run.
#[test]
fn a_killed_streamed_run_heals_over_the_chunk_store() {
    let world = tiny_world();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();
    let clean = measure(&world, &dep, &config(None));

    // Uninterrupted streamed reference: store reloads byte-identical.
    let store_full = tmp("stream-full-store");
    let journal_full = tmp("stream-full-journal");
    measure_streamed(
        &world,
        &dep,
        &config(None),
        &store_full,
        Some(&journal_full),
    )
    .unwrap();
    let full = ChunkStore::open(&store_full)
        .unwrap()
        .load_dataset(&world)
        .unwrap();
    assert_byte_identical(&clean, &full, "uninterrupted streamed run");

    // The crash scene.
    let store_cut = tmp("stream-cut-store");
    let _ = std::fs::remove_dir_all(&store_cut);
    copy_dir(&store_full, &store_cut);
    let mut chunks: Vec<PathBuf> = std::fs::read_dir(&store_cut)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "col"))
        .collect();
    chunks.sort();
    assert!(chunks.len() >= 3, "need ≥3 chunks, got {}", chunks.len());
    std::fs::remove_file(chunks.last().unwrap()).unwrap();
    let torn = std::fs::read(&chunks[0]).unwrap();
    std::fs::write(&chunks[0], &torn[..torn.len() - 7]).unwrap();

    let text = std::fs::read_to_string(&journal_full).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let k = n * 6 / 10;
    let journal_cut = tmp("stream-cut-journal");
    std::fs::write(&journal_cut, format!("{}\n", lines[..=k].join("\n"))).unwrap();

    let stats = resume_streamed(&world, &dep, &config(None), &store_cut, &journal_cut).unwrap();
    let resumed = stats.supervision.sites_resumed;
    assert!(
        resumed > 0 && resumed < n as u64,
        "expected partial recovery, resumed {resumed}/{n}"
    );
    let healed = ChunkStore::open(&store_cut)
        .unwrap()
        .load_dataset(&world)
        .unwrap();
    assert_byte_identical(&clean, &healed, "resume over a torn chunk store");

    // Every chunk file healed to the uninterrupted run's exact bytes.
    for chunk in &chunks {
        let name = chunk.file_name().unwrap();
        assert_eq!(
            std::fs::read(chunk).unwrap(),
            std::fs::read(store_full.join(name)).unwrap(),
            "chunk {name:?} differs from the uninterrupted run"
        );
    }

    // The store is complete now: a second resume re-measures nothing.
    let stats2 = resume_streamed(&world, &dep, &config(None), &store_cut, &journal_cut).unwrap();
    assert_eq!(stats2.supervision.sites_resumed, n as u64);

    let _ = std::fs::remove_dir_all(&store_full);
    let _ = std::fs::remove_dir_all(&store_cut);
    let _ = std::fs::remove_file(&journal_full);
    let _ = std::fs::remove_file(&journal_cut);
}
