//! Vantage-point re-measurement (§3.4's RIPE Atlas validation).
//!
//! The paper validates its Stanford vantage by re-resolving each country's
//! toplist through RIPE probes *in that country* and correlating the
//! resulting centralization scores (ρ = 0.96). Here the analogue resolves
//! a sample of a country's sites from the country's own continent; CDN
//! providers answer GeoDNS-style, so the serving IP (and thus, in a world
//! with geolocation noise, occasionally the inferred org) can differ.

use webdep_dns::resolver::{IterativeResolver, ResolverConfig};
use webdep_dns::DomainName;
use webdep_webgen::{Continent, DeployedWorld, World};

/// Resolves a sample of `country_idx`'s toplist from `vantage`, returning
/// the hosting organization id per sampled site (`None` on failure).
///
/// `sample` caps the number of sites (evenly strided through the toplist)
/// to keep per-country re-measurement affordable.
pub fn resolve_hosting_orgs(
    world: &World,
    dep: &DeployedWorld,
    country_idx: usize,
    vantage: Continent,
    sample: usize,
) -> Vec<Option<u32>> {
    let toplist = &world.toplists[country_idx];
    let stride = (toplist.len() / sample.max(1)).max(1);
    let ep = dep.vantage(vantage);
    let mut resolver = IterativeResolver::new(ep, dep.roots.clone(), ResolverConfig::default());
    toplist
        .iter()
        .step_by(stride)
        .take(sample)
        .map(|&site_idx| {
            let site = &world.sites[site_idx as usize];
            let name = DomainName::parse(&site.domain).ok()?;
            let addrs = resolver.resolve_a(&name).ok()?;
            let ip = *addrs.first()?;
            let (&asn, _) = dep.pfx2as.lookup(ip)?;
            dep.asorg.org_of_asn(asn).map(|o| o.org_id)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdep_webgen::{DeployConfig, WorldConfig};

    #[test]
    fn vantage_resolution_recovers_orgs() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let th = World::country_index("TH").unwrap();
        let orgs = resolve_hosting_orgs(&world, &dep, th, Continent::Asia, 30);
        assert_eq!(orgs.len(), 30);
        let resolved = orgs.iter().filter(|o| o.is_some()).count();
        assert!(resolved >= 29, "resolved {resolved}/30");

        // Org attribution is vantage-independent even though serving IPs
        // differ (the provider owns its regional prefixes).
        let orgs_na = resolve_hosting_orgs(&world, &dep, th, Continent::NorthAmerica, 30);
        assert_eq!(orgs, orgs_na);
    }
}
