//! Process-wide pipeline telemetry, registered in the
//! [`webdep_core::metrics::global`] registry so any exporter in the
//! process (notably the serve crate's `GET /metrics`) can render it.
//!
//! The measurement hot loop keeps its existing contention-free shape:
//! workers accumulate plain `u64`s privately and the run fold-in
//! ([`record_run`]) adds the per-run totals to the global counters once,
//! after the parallel section — so instrumentation costs a handful of
//! `fetch_add`s per *run*, not per site. Only genuinely rare events
//! (journal fsync batches, supervisor interventions) touch an atomic at
//! event time.

use crate::run::MeasureStats;
use std::sync::OnceLock;
use webdep_core::metrics::{global, Counter};

/// Handles for every pipeline-level counter.
pub struct PipelineMetrics {
    /// Completed measurement runs (any entry point).
    pub runs: Counter,
    /// Sites that flowed through a completed run.
    pub sites_measured: Counter,
    /// DNS queries that missed every cache tier and hit the simulated
    /// wire.
    pub dns_cache_misses: Counter,
    /// Answers served from workers' private resolver caches.
    pub dns_local_cache_hits: Counter,
    /// Answers/delegations served from the shared cache tier.
    pub dns_shared_cache_hits: Counter,
    /// Replies discarded as undecodable datagrams.
    pub malformed_datagrams: Counter,
    /// Replies discarded for a transaction-id mismatch.
    pub mismatched_ids: Counter,
    /// Per-site panics isolated into failed observations.
    pub panics_isolated: Counter,
    /// Workers declared lost by the watchdog.
    pub workers_lost: Counter,
    /// Replacement workers spawned.
    pub workers_respawned: Counter,
    /// In-flight batches requeued after a worker loss.
    pub batches_requeued: Counter,
    /// Sites failed by the poison threshold.
    pub sites_poisoned: Counter,
    /// Sites restored from a journal instead of re-measured.
    pub sites_resumed: Counter,
    /// Journal flush+fsync batches pushed to stable storage.
    pub journal_fsyncs: Counter,
    /// Site records appended to a run journal.
    pub journal_records: Counter,
}

/// The process-wide pipeline metrics, registered on first use.
pub fn metrics() -> &'static PipelineMetrics {
    static METRICS: OnceLock<PipelineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        PipelineMetrics {
            runs: r.counter(
                "webdep_pipeline_runs_total",
                "Completed measurement runs in this process",
            ),
            sites_measured: r.counter(
                "webdep_pipeline_sites_measured_total",
                "Sites that flowed through a completed measurement run",
            ),
            dns_cache_misses: r.counter(
                "webdep_pipeline_dns_cache_misses_total",
                "DNS queries that missed every cache tier and hit the simulated wire",
            ),
            dns_local_cache_hits: r.counter(
                "webdep_pipeline_dns_local_cache_hits_total",
                "DNS answers served from workers' private resolver caches",
            ),
            dns_shared_cache_hits: r.counter(
                "webdep_pipeline_dns_shared_cache_hits_total",
                "DNS answers and delegations served from the shared cache tier",
            ),
            malformed_datagrams: r.counter(
                "webdep_pipeline_malformed_datagrams_total",
                "DNS replies discarded as undecodable",
            ),
            mismatched_ids: r.counter(
                "webdep_pipeline_mismatched_ids_total",
                "DNS replies discarded for a transaction-id mismatch",
            ),
            panics_isolated: r.counter(
                "webdep_pipeline_panics_isolated_total",
                "Per-site panics isolated into failed observations",
            ),
            workers_lost: r.counter(
                "webdep_pipeline_workers_lost_total",
                "Workers declared lost by the supervisor watchdog",
            ),
            workers_respawned: r.counter(
                "webdep_pipeline_workers_respawned_total",
                "Replacement workers spawned by the supervisor",
            ),
            batches_requeued: r.counter(
                "webdep_pipeline_batches_requeued_total",
                "In-flight batches requeued after a worker loss",
            ),
            sites_poisoned: r.counter(
                "webdep_pipeline_sites_poisoned_total",
                "Sites failed because their batch hit the poison threshold",
            ),
            sites_resumed: r.counter(
                "webdep_pipeline_sites_resumed_total",
                "Sites restored from a journal instead of re-measured",
            ),
            journal_fsyncs: r.counter(
                "webdep_pipeline_journal_fsyncs_total",
                "Journal flush+fsync batches pushed to stable storage",
            ),
            journal_records: r.counter(
                "webdep_pipeline_journal_records_total",
                "Site records appended to a run journal",
            ),
        }
    })
}

/// Folds one completed run's [`MeasureStats`] into the global counters.
pub(crate) fn record_run(sites: usize, stats: &MeasureStats) {
    let m = metrics();
    m.runs.inc();
    m.sites_measured.add(sites as u64);
    m.dns_cache_misses.add(stats.wire_queries);
    m.dns_local_cache_hits.add(stats.local_cache_hits);
    m.dns_shared_cache_hits.add(stats.shared_cache_hits);
    m.malformed_datagrams.add(stats.malformed_datagrams);
    m.mismatched_ids.add(stats.mismatched_ids);
    let sup = &stats.supervision;
    m.panics_isolated.add(sup.panics_isolated);
    m.workers_lost.add(sup.workers_lost);
    m.workers_respawned.add(sup.workers_respawned);
    m.batches_requeued.add(sup.batches_requeued);
    m.sites_poisoned.add(sup.sites_poisoned);
    m.sites_resumed.add(sup.sites_resumed);
}
