//! Incremental epoch measurement: re-measure only what changed.
//!
//! A continuous measurement loop evolves the world each epoch
//! ([`webdep_webgen::EvolutionPlan`]) and hands [`measure_delta`] the
//! previous epoch's chunk store plus the [`WorldDelta`] naming the dirty
//! site set. Clean sites never touch the network again:
//!
//! * a chunk with no dirty site and an unchanged row count is **adopted**
//!   wholesale — hard-linked (copy fallback) from the previous store and
//!   checksum-verified, zero decode and zero re-encode;
//! * a chunk containing dirty rows (or the previous store's short final
//!   chunk, whose row count grows with the site table) has its *clean*
//!   rows decoded from the previous store and re-committed, while its
//!   dirty rows go to the measurement workers;
//! * every dirty site is re-measured under the same supervised runner as
//!   [`crate::run::measure_streamed`].
//!
//! Because per-site measurement is deterministic and chunk bytes are a
//! pure function of their rows, the finished store is **byte-identical**
//! to a from-scratch `measure_streamed` of the evolved world — provided
//! the evolved world is deployed with the base epoch's pinned pool census
//! ([`webdep_webgen::DeployConfig::pool_sites`]), which keeps unchanged
//! sites' serving IPs fixed while customer counts churn. The identity
//! holds across worker counts (`tests/delta.rs`), the same contract as
//! crash-resume.

use crate::journal::JournalWriter;
use crate::run::{finish_streaming, run_supervised, MeasureStats, PipelineConfig, Sink};
use crate::store::{ChunkStore, ChunkStoreWriter};
use std::io;
use std::path::Path;
use webdep_webgen::{DeployedWorld, World, WorldDelta};

/// Accounting for one [`measure_delta`] run.
#[derive(Debug)]
pub struct DeltaStats {
    /// Sites in the evolved epoch.
    pub sites_total: usize,
    /// Dirty sites actually re-measured.
    pub sites_remeasured: usize,
    /// Clean chunks reused wholesale (hard-link or copy, no re-encode).
    pub chunks_adopted: usize,
    /// Total chunks in the new store.
    pub chunks_total: usize,
    /// Clean rows re-committed out of partially dirty chunks.
    pub rows_recommitted: usize,
    /// Stats from the supervised run over the dirty remainder.
    pub measure: MeasureStats,
}

/// Materializes the epoch-N+1 store at `store_dir` from the epoch-N store
/// at `prev_store_dir` plus the dirty set in `delta`, re-measuring only
/// dirty sites against `dep`.
///
/// `world` must be the evolved world (`delta.to_label`), deployed with the
/// base epoch's pinned pool census for the byte-identity contract to hold;
/// `journal_path` optionally checkpoints the dirty-site re-measurement
/// exactly as in [`crate::run::measure_streamed`].
pub fn measure_delta(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
    delta: &WorldDelta,
    prev_store_dir: &Path,
    store_dir: &Path,
    journal_path: Option<&Path>,
) -> io::Result<DeltaStats> {
    let n = world.sites.len();
    if world.label != delta.to_label || n != delta.to_sites {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "world '{}' ({} sites) is not the delta's target '{}' ({} sites)",
                world.label, n, delta.to_label, delta.to_sites
            ),
        ));
    }
    let prev = ChunkStore::open(prev_store_dir)?;
    if prev.label != delta.from_label || prev.sites != delta.from_sites {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "previous store '{}' ({} sites) is not the delta's source '{}' ({} sites)",
                prev.label, prev.sites, delta.from_label, delta.from_sites
            ),
        ));
    }

    // Same chunk geometry as the previous epoch, so clean chunks align.
    let k = prev.chunk_sites;
    let mut store = ChunkStoreWriter::create(store_dir, &world.label, n, k)?;
    let dirty = delta.dirty();
    let mut done = vec![false; n];
    let mut chunks_adopted = 0usize;
    let mut rows_recommitted = 0usize;
    for c in 0..prev.num_chunks() {
        let lo = c * k;
        let prev_rows = prev.chunk_rows(c);
        let new_rows = (n - lo).min(k);
        let chunk_dirty = dirty[lo..lo + prev_rows].iter().any(|&d| d);
        if prev_rows == new_rows && !chunk_dirty {
            store.adopt_chunk(&prev, c)?;
            chunks_adopted += 1;
            for d in done[lo..lo + new_rows].iter_mut() {
                *d = true;
            }
        } else {
            // The previous epoch's rows are the ground truth for this
            // chunk's clean sites; dirty rows (and the appended tail) are
            // left for the workers.
            let chunk = prev.read_chunk(c)?;
            for r in 0..prev_rows {
                if !dirty[lo + r] {
                    store.commit(lo + r, &chunk.observation(r))?;
                    done[lo + r] = true;
                    rows_recommitted += 1;
                }
            }
        }
    }

    let resumed = done.iter().filter(|&&d| d).count();
    let journal = journal_path
        .map(|p| JournalWriter::create(p, &world.label, n))
        .transpose()?;
    let sink = Sink::Streaming {
        done,
        store,
        store_error: None,
    };
    let (sink, stats, journal_err) = run_supervised(world, dep, config, journal, sink, resumed);
    let measure = finish_streaming(world, sink, journal_err, stats)?;
    Ok(DeltaStats {
        sites_total: n,
        sites_remeasured: n - resumed,
        chunks_adopted,
        chunks_total: n.div_ceil(k),
        rows_recommitted,
        measure,
    })
}
