//! The chunked, columnar on-disk dataset: `MeasuredDataset` without the
//! resident `Vec<SiteObservation>`.
//!
//! A store is a directory:
//!
//! ```text
//! store/
//!   manifest.json        {"magic":"webdep-chunk-store","version":1,
//!                         "label":…,"sites":N,"chunk_sites":K}
//!   chunk-000000.col     sites [0, K)
//!   chunk-000001.col     sites [K, 2K)
//!   …                    (final chunk holds the remainder)
//! ```
//!
//! Each chunk file is self-contained and columnar (little-endian):
//!
//! ```text
//! magic "WDCHUNK1" · chunk_index u32 · lo u32 · rows u32
//! string table: count u32, then len u32 + UTF-8 bytes per string
//! columns, each over all rows of the chunk:
//!   domain/tld/language        rows × u32 string id
//!   hosting_ip                 presence bitmap + u32 per present row
//!   hosting_asn/org            presence bitmap + u32 per present row
//!   hosting_{org,ip}_country   presence bitmap + string id per present row
//!   hosting_anycast            bitmap
//!   ns_names                   rows × u16 count, then the string ids
//!   dns_* columns              same shapes as hosting
//!   ca_owner / ca_owner_country  presence bitmap + values
//!   hosting/dns/ca_error       presence bitmap + (cause u8, detail id u32)
//!   error summary              presence bitmap + string id per present row
//! checksum u64 (FNV-1a over everything above)
//! ```
//!
//! Strings are interned **per chunk** through [`webdep_core::Interner`], in
//! row order — site order, not commit order — so the encoded bytes are a
//! pure function of the chunk's observations. Combined with the pipeline's
//! determinism contract, the whole store is byte-identical across worker
//! counts, scheduling modes, and crash-resume (tested in
//! `tests/determinism.rs` and `tests/supervision.rs`).
//!
//! Durability mirrors the journal's: a chunk file is written and fsynced
//! once, when its last site commits; the checksum turns a torn write into
//! [`ChunkState::Corrupt`], which resume heals by re-encoding the chunk
//! from journal records. The writer holds only *partial* chunks in memory
//! (bounded by the scheduler's batch spread), which is what makes
//! million-site runs memory-bounded end to end.

use crate::dataset::{FailureCause, LayerError, MeasuredDataset, SiteObservation};
use serde_json::Value;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use webdep_core::Interner;

/// Manifest magic string.
pub const STORE_MAGIC: &str = "webdep-chunk-store";
/// Store format version.
pub const STORE_VERSION: u64 = 1;
/// Sites per chunk unless the caller chooses otherwise: small enough that
/// partial chunks stay cheap, large enough that a million-site store is a
/// few hundred files.
pub const DEFAULT_CHUNK_SITES: usize = 4096;
/// Chunk file magic.
const CHUNK_MAGIC: [u8; 8] = *b"WDCHUNK1";

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Writes the manifest atomically: temp file, data fsync, rename over the
/// live name, directory fsync. A crash at any point leaves either the old
/// complete manifest or the new one — never a torn file that takes the
/// whole store down with it.
fn write_manifest(dir: &Path, label: &str, sites: usize, chunk_sites: usize) -> io::Result<()> {
    let manifest = Value::Object(vec![
        ("magic".into(), Value::String(STORE_MAGIC.into())),
        ("version".into(), Value::U64(STORE_VERSION)),
        ("label".into(), Value::String(label.into())),
        ("sites".into(), Value::U64(sites as u64)),
        ("chunk_sites".into(), Value::U64(chunk_sites as u64)),
    ]);
    let tmp = dir.join("manifest.json.tmp");
    let mut f = File::create(&tmp)?;
    writeln!(f, "{manifest}")?;
    f.sync_data()?;
    std::fs::rename(&tmp, manifest_path(dir))?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Whether the on-disk manifest is unparseable (torn write or external
/// damage) as opposed to merely describing a different store.
fn manifest_is_torn(dir: &Path) -> io::Result<bool> {
    let bytes = std::fs::read(manifest_path(dir))?;
    let text = String::from_utf8_lossy(&bytes);
    Ok(serde_json::from_str::<Value>(text.trim()).is_err())
}

fn chunk_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("chunk-{index:06}.col"))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a 64 over a byte slice — the chunk integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn cause_index(c: FailureCause) -> u8 {
    FailureCause::ALL
        .iter()
        .position(|&x| x == c)
        .expect("cause in ALL") as u8
}

fn cause_from_index(i: u8) -> Result<FailureCause, String> {
    FailureCause::ALL
        .get(i as usize)
        .copied()
        .ok_or_else(|| format!("unknown failure cause index {i}"))
}

// ---------------------------------------------------------------------------
// Encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LSB-first presence bitmap over the rows.
    fn bitmap<T, F: Fn(&T) -> bool>(&mut self, rows: &[T], present: F) {
        let mut byte = 0u8;
        for (r, row) in rows.iter().enumerate() {
            if present(row) {
                byte |= 1 << (r % 8);
            }
            if r % 8 == 7 {
                self.u8(byte);
                byte = 0;
            }
        }
        if !rows.len().is_multiple_of(8) {
            self.u8(byte);
        }
    }
}

/// Encodes one complete chunk (rows in site order) to its file bytes.
fn encode_chunk(chunk_index: usize, lo: usize, rows: &[SiteObservation]) -> Vec<u8> {
    // Intern every string in row order; ids are then independent of the
    // order in which sites committed.
    let mut strings = Interner::new();
    for obs in rows {
        strings.intern(&obs.domain);
        strings.intern(&obs.tld);
        strings.intern(&obs.language);
        for c in [&obs.hosting_org_country, &obs.hosting_ip_country]
            .into_iter()
            .flatten()
        {
            strings.intern(c);
        }
        for n in &obs.ns_names {
            strings.intern(n);
        }
        for c in [
            &obs.dns_org_country,
            &obs.dns_ip_country,
            &obs.ca_owner_country,
        ]
        .into_iter()
        .flatten()
        {
            strings.intern(c);
        }
        for e in [&obs.hosting_error, &obs.dns_error, &obs.ca_error]
            .into_iter()
            .flatten()
        {
            strings.intern(&e.detail);
        }
        if let Some(e) = &obs.error {
            strings.intern(e);
        }
    }

    let mut e = Enc { buf: Vec::new() };
    e.buf.extend_from_slice(&CHUNK_MAGIC);
    e.u32(chunk_index as u32);
    e.u32(lo as u32);
    e.u32(rows.len() as u32);
    e.u32(strings.len() as u32);
    for s in strings.iter() {
        e.u32(s.len() as u32);
        e.buf.extend_from_slice(s.as_bytes());
    }
    let id = |s: &str| strings.get(s).expect("interned above");

    for obs in rows {
        e.u32(id(&obs.domain));
    }
    for obs in rows {
        e.u32(id(&obs.tld));
    }
    for obs in rows {
        e.u32(id(&obs.language));
    }

    // Option<T> columns: presence bitmap, then one value per present row.
    macro_rules! opt_col {
        ($field:ident, $emit:expr) => {{
            e.bitmap(rows, |o| o.$field.is_some());
            for obs in rows {
                if let Some(v) = &obs.$field {
                    #[allow(clippy::redundant_closure_call)]
                    ($emit)(&mut e, v);
                }
            }
        }};
    }
    let emit_ip = |e: &mut Enc, ip: &Ipv4Addr| e.u32(u32::from(*ip));
    let emit_u32 = |e: &mut Enc, v: &u32| e.u32(*v);
    let emit_str = |e: &mut Enc, s: &String| e.u32(id(s));
    let emit_err = |e: &mut Enc, err: &LayerError| {
        e.u8(cause_index(err.cause));
        e.u32(id(&err.detail));
    };

    opt_col!(hosting_ip, emit_ip);
    opt_col!(hosting_asn, emit_u32);
    opt_col!(hosting_org, emit_u32);
    opt_col!(hosting_org_country, emit_str);
    opt_col!(hosting_ip_country, emit_str);
    e.bitmap(rows, |o| o.hosting_anycast);

    for obs in rows {
        e.u16(obs.ns_names.len() as u16);
    }
    for obs in rows {
        for n in &obs.ns_names {
            e.u32(id(n));
        }
    }

    opt_col!(dns_ip, emit_ip);
    opt_col!(dns_asn, emit_u32);
    opt_col!(dns_org, emit_u32);
    opt_col!(dns_org_country, emit_str);
    opt_col!(dns_ip_country, emit_str);
    e.bitmap(rows, |o| o.dns_anycast);

    opt_col!(ca_owner, emit_u32);
    opt_col!(ca_owner_country, emit_str);

    opt_col!(hosting_error, emit_err);
    opt_col!(dns_error, emit_err);
    opt_col!(ca_error, emit_err);
    opt_col!(error, emit_str);

    let sum = fnv1a(&e.buf);
    e.u64(sum);
    e.buf
}

// ---------------------------------------------------------------------------
// Decoding

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or("chunk truncated")?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn bitmap(&mut self, rows: usize) -> Result<Vec<bool>, String> {
        let bytes = self.take(rows.div_ceil(8))?;
        Ok((0..rows)
            .map(|r| bytes[r / 8] & (1 << (r % 8)) != 0)
            .collect())
    }
}

/// One decoded chunk: columnar access plus per-row observation
/// reconstruction. String-valued columns hold ids into [`DecodedChunk::str_of`].
pub struct DecodedChunk {
    /// First site index the chunk covers.
    pub lo: usize,
    /// Rows in the chunk (`lo..lo + rows` in site order).
    pub rows: usize,
    strings: Vec<String>,
    domain: Vec<u32>,
    /// TLD string id per row.
    pub tld: Vec<u32>,
    language: Vec<u32>,
    hosting_ip: Vec<Option<Ipv4Addr>>,
    hosting_asn: Vec<Option<u32>>,
    /// Hosting org world id per row (`None` = layer failed).
    pub hosting_org: Vec<Option<u32>>,
    hosting_org_country: Vec<Option<u32>>,
    hosting_ip_country: Vec<Option<u32>>,
    hosting_anycast: Vec<bool>,
    ns_off: Vec<u32>,
    ns_ids: Vec<u32>,
    dns_ip: Vec<Option<Ipv4Addr>>,
    dns_asn: Vec<Option<u32>>,
    /// DNS org world id per row.
    pub dns_org: Vec<Option<u32>>,
    dns_org_country: Vec<Option<u32>>,
    dns_ip_country: Vec<Option<u32>>,
    dns_anycast: Vec<bool>,
    /// CA owner world id per row.
    pub ca_owner: Vec<Option<u32>>,
    ca_owner_country: Vec<Option<u32>>,
    hosting_error: Vec<Option<(FailureCause, u32)>>,
    dns_error: Vec<Option<(FailureCause, u32)>>,
    ca_error: Vec<Option<(FailureCause, u32)>>,
    error: Vec<Option<u32>>,
}

impl DecodedChunk {
    /// The string behind a chunk-local id.
    pub fn str_of(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Per-row layer failure causes `(hosting, dns, ca)` without
    /// materializing a full observation — the streaming taxonomy fold
    /// (`webdep serve --store`) reads only these columns.
    pub fn failure_causes(&self, r: usize) -> [Option<FailureCause>; 3] {
        [
            self.hosting_error[r].map(|(c, _)| c),
            self.dns_error[r].map(|(c, _)| c),
            self.ca_error[r].map(|(c, _)| c),
        ]
    }

    /// Reconstructs row `r` as a full [`SiteObservation`] — the exact
    /// observation that was committed (round-trip tested).
    pub fn observation(&self, r: usize) -> SiteObservation {
        let s = |id: u32| self.strings[id as usize].clone();
        let os = |v: &Option<u32>| v.map(s);
        let err = |v: &Option<(FailureCause, u32)>| {
            v.map(|(cause, detail)| LayerError::new(cause, s(detail)))
        };
        SiteObservation {
            domain: s(self.domain[r]),
            tld: s(self.tld[r]),
            language: s(self.language[r]),
            hosting_ip: self.hosting_ip[r],
            hosting_asn: self.hosting_asn[r],
            hosting_org: self.hosting_org[r],
            hosting_org_country: os(&self.hosting_org_country[r]),
            hosting_ip_country: os(&self.hosting_ip_country[r]),
            hosting_anycast: self.hosting_anycast[r],
            ns_names: self.ns_ids[self.ns_off[r] as usize..self.ns_off[r + 1] as usize]
                .iter()
                .map(|&i| s(i))
                .collect(),
            dns_ip: self.dns_ip[r],
            dns_asn: self.dns_asn[r],
            dns_org: self.dns_org[r],
            dns_org_country: os(&self.dns_org_country[r]),
            dns_ip_country: os(&self.dns_ip_country[r]),
            dns_anycast: self.dns_anycast[r],
            ca_owner: self.ca_owner[r],
            ca_owner_country: os(&self.ca_owner_country[r]),
            hosting_error: err(&self.hosting_error[r]),
            dns_error: err(&self.dns_error[r]),
            ca_error: err(&self.ca_error[r]),
            error: os(&self.error[r]),
        }
    }
}

fn decode_chunk(
    bytes: &[u8],
    expect_index: usize,
    expect_lo: usize,
    expect_rows: usize,
) -> Result<DecodedChunk, String> {
    if bytes.len() < CHUNK_MAGIC.len() + 8 {
        return Err("chunk too short".into());
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(body) != sum {
        return Err("chunk checksum mismatch".into());
    }
    let mut d = Dec { buf: body, pos: 0 };
    if d.take(8)? != CHUNK_MAGIC {
        return Err("bad chunk magic".into());
    }
    let index = d.u32()? as usize;
    let lo = d.u32()? as usize;
    let rows = d.u32()? as usize;
    if index != expect_index || lo != expect_lo || rows != expect_rows {
        return Err(format!(
            "chunk header (index {index}, lo {lo}, rows {rows}) does not match \
             manifest (index {expect_index}, lo {expect_lo}, rows {expect_rows})"
        ));
    }
    let n_strings = d.u32()? as usize;
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let len = d.u32()? as usize;
        let s = std::str::from_utf8(d.take(len)?).map_err(|e| e.to_string())?;
        strings.push(s.to_string());
    }
    let sid = |id: u32| -> Result<u32, String> {
        if (id as usize) < n_strings {
            Ok(id)
        } else {
            Err(format!("string id {id} out of range (< {n_strings})"))
        }
    };

    let str_col =
        |d: &mut Dec| -> Result<Vec<u32>, String> { (0..rows).map(|_| sid(d.u32()?)).collect() };
    let domain = str_col(&mut d)?;
    let tld = str_col(&mut d)?;
    let language = str_col(&mut d)?;

    fn opt_col<T, F: FnMut(&mut Dec) -> Result<T, String>>(
        d: &mut Dec,
        rows: usize,
        mut read: F,
    ) -> Result<Vec<Option<T>>, String> {
        let present = d.bitmap(rows)?;
        present
            .into_iter()
            .map(|p| if p { read(d).map(Some) } else { Ok(None) })
            .collect()
    }
    let read_ip = |d: &mut Dec| Ok(Ipv4Addr::from(d.u32()?));
    let read_u32 = |d: &mut Dec| d.u32();
    let read_sid = |d: &mut Dec| sid(d.u32()?);
    let read_err = |d: &mut Dec| -> Result<(FailureCause, u32), String> {
        let cause = cause_from_index(d.u8()?)?;
        Ok((cause, sid(d.u32()?)?))
    };

    let hosting_ip = opt_col(&mut d, rows, read_ip)?;
    let hosting_asn = opt_col(&mut d, rows, read_u32)?;
    let hosting_org = opt_col(&mut d, rows, read_u32)?;
    let hosting_org_country = opt_col(&mut d, rows, read_sid)?;
    let hosting_ip_country = opt_col(&mut d, rows, read_sid)?;
    let hosting_anycast = d.bitmap(rows)?;

    let mut ns_off = Vec::with_capacity(rows + 1);
    ns_off.push(0u32);
    let mut total_ns = 0u32;
    for _ in 0..rows {
        total_ns += d.u16()? as u32;
        ns_off.push(total_ns);
    }
    let ns_ids: Vec<u32> = (0..total_ns)
        .map(|_| sid(d.u32()?))
        .collect::<Result<_, _>>()?;

    let dns_ip = opt_col(&mut d, rows, read_ip)?;
    let dns_asn = opt_col(&mut d, rows, read_u32)?;
    let dns_org = opt_col(&mut d, rows, read_u32)?;
    let dns_org_country = opt_col(&mut d, rows, read_sid)?;
    let dns_ip_country = opt_col(&mut d, rows, read_sid)?;
    let dns_anycast = d.bitmap(rows)?;

    let ca_owner = opt_col(&mut d, rows, read_u32)?;
    let ca_owner_country = opt_col(&mut d, rows, read_sid)?;

    let hosting_error = opt_col(&mut d, rows, read_err)?;
    let dns_error = opt_col(&mut d, rows, read_err)?;
    let ca_error = opt_col(&mut d, rows, read_err)?;
    let error = opt_col(&mut d, rows, read_sid)?;

    if d.pos != body.len() {
        return Err(format!(
            "trailing bytes in chunk: {} of {}",
            body.len() - d.pos,
            body.len()
        ));
    }
    Ok(DecodedChunk {
        lo,
        rows,
        strings,
        domain,
        tld,
        language,
        hosting_ip,
        hosting_asn,
        hosting_org,
        hosting_org_country,
        hosting_ip_country,
        hosting_anycast,
        ns_off,
        ns_ids,
        dns_ip,
        dns_asn,
        dns_org,
        dns_org_country,
        dns_ip_country,
        dns_anycast,
        ca_owner,
        ca_owner_country,
        hosting_error,
        dns_error,
        ca_error,
        error,
    })
}

// ---------------------------------------------------------------------------
// Writer

/// One not-yet-complete chunk's rows, held in memory until the last site
/// commits.
struct PartialChunk {
    filled: usize,
    rows: Vec<Option<SiteObservation>>,
}

/// Streaming chunk-store writer: sites commit in any order; a chunk file
/// is encoded, written, and fsynced the moment its last site lands.
pub struct ChunkStoreWriter {
    dir: PathBuf,
    sites: usize,
    chunk_sites: usize,
    pending: HashMap<usize, PartialChunk>,
    written: Vec<bool>,
    bytes_written: u64,
}

impl ChunkStoreWriter {
    /// Creates (or resets) a store directory for a run over `sites` sites,
    /// writing and syncing the manifest and deleting any stale chunk files.
    pub fn create(dir: &Path, label: &str, sites: usize, chunk_sites: usize) -> io::Result<Self> {
        assert!(chunk_sites > 0, "chunk_sites must be positive");
        std::fs::create_dir_all(dir)?;
        let chunks = sites.div_ceil(chunk_sites);
        // Stale chunks from a previous run must not masquerade as data.
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("chunk-") && name.ends_with(".col") {
                std::fs::remove_file(entry.path())?;
            }
        }
        write_manifest(dir, label, sites, chunk_sites)?;
        Ok(ChunkStoreWriter {
            dir: dir.to_path_buf(),
            sites,
            chunk_sites,
            pending: HashMap::new(),
            written: vec![false; chunks],
            bytes_written: 0,
        })
    }

    /// Reopens an existing store for resume: the manifest must match, valid
    /// chunk files are kept (their sites need no re-measurement), and
    /// corrupt ones — the torn-write crash artifact — are deleted so they
    /// can be healed from the journal. Falls back to [`Self::create`] when
    /// no manifest exists (a crash before the store was set up), and
    /// rewrites an unparseable manifest in place from the caller's run
    /// metadata — crucially *not* via [`Self::create`], which would wipe
    /// the surviving chunk files the resume is here to keep.
    pub fn resume(dir: &Path, label: &str, sites: usize, chunk_sites: usize) -> io::Result<Self> {
        if !manifest_path(dir).exists() {
            return Self::create(dir, label, sites, chunk_sites);
        }
        let store = match ChunkStore::open(dir) {
            Ok(store) => store,
            Err(e) => {
                if manifest_is_torn(dir)? {
                    write_manifest(dir, label, sites, chunk_sites)?;
                    ChunkStore::open(dir)?
                } else {
                    return Err(e);
                }
            }
        };
        if store.label != label || store.sites != sites || store.chunk_sites != chunk_sites {
            return Err(bad(format!(
                "store is for '{}' ({} sites, chunk {}), not '{}' ({} sites, chunk {})",
                store.label, store.sites, store.chunk_sites, label, sites, chunk_sites
            )));
        }
        let chunks = store.num_chunks();
        let mut written = vec![false; chunks];
        for (c, w) in written.iter_mut().enumerate() {
            match store.chunk_state(c) {
                ChunkState::Valid => *w = true,
                ChunkState::Missing => {}
                ChunkState::Corrupt(_) => std::fs::remove_file(chunk_path(dir, c))?,
            }
        }
        Ok(ChunkStoreWriter {
            dir: dir.to_path_buf(),
            sites,
            chunk_sites,
            pending: HashMap::new(),
            written,
            bytes_written: 0,
        })
    }

    fn chunk_of(&self, site: usize) -> usize {
        site / self.chunk_sites
    }

    fn chunk_lo(&self, chunk: usize) -> usize {
        chunk * self.chunk_sites
    }

    fn chunk_rows(&self, chunk: usize) -> usize {
        (self.sites - self.chunk_lo(chunk)).min(self.chunk_sites)
    }

    /// Whether a chunk has been durably written.
    pub fn chunk_written(&self, chunk: usize) -> bool {
        self.written[chunk]
    }

    /// Whether a site's chunk has been durably written.
    pub fn site_durable(&self, site: usize) -> bool {
        self.written[self.chunk_of(site)]
    }

    /// Total chunk-file bytes written by this writer.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Commits one observation. Returns `Ok(false)` when the site was
    /// already committed (or its chunk already on disk) — idempotent, like
    /// the collector's first-write-wins rule. Flushes the chunk when it
    /// completes.
    pub fn commit(&mut self, site: usize, obs: &SiteObservation) -> io::Result<bool> {
        assert!(site < self.sites, "site {site} out of range");
        let c = self.chunk_of(site);
        if self.written[c] {
            return Ok(false);
        }
        let rows = self.chunk_rows(c);
        let lo = self.chunk_lo(c);
        let partial = self.pending.entry(c).or_insert_with(|| PartialChunk {
            filled: 0,
            rows: (0..rows).map(|_| None).collect(),
        });
        let slot = &mut partial.rows[site - lo];
        if slot.is_some() {
            return Ok(false);
        }
        *slot = Some(obs.clone());
        partial.filled += 1;
        if partial.filled == rows {
            let partial = self.pending.remove(&c).expect("just inserted");
            let full: Vec<SiteObservation> = partial
                .rows
                .into_iter()
                .map(|r| r.expect("chunk complete"))
                .collect();
            let bytes = encode_chunk(c, self.chunk_lo(c), &full);
            let path = chunk_path(&self.dir, c);
            let mut f = File::create(&path)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
            self.bytes_written += bytes.len() as u64;
            self.written[c] = true;
        }
        Ok(true)
    }

    /// Adopts chunk `c` wholesale from a previous epoch's store: the file
    /// is hard-linked (copy fallback) into this store and verified through
    /// the normal decode path — header and checksum — before the chunk is
    /// marked durable. Valid only when the source chunk covers the same
    /// site range with the same row count; this is the delta path's
    /// clean-chunk fast lane, and the reason unchanged chunks cost zero
    /// re-encoding. Adopted files share their inode with the source store,
    /// which every in-place rewrite below (see [`ChunkStore::compact`])
    /// must respect by going through temp file + rename.
    pub fn adopt_chunk(&mut self, src: &ChunkStore, c: usize) -> io::Result<()> {
        assert!(c < self.written.len(), "chunk {c} out of range");
        if self.written[c] {
            return Err(bad(format!("chunk {c} already written")));
        }
        if self.pending.contains_key(&c) {
            return Err(bad(format!("chunk {c} already has committed sites")));
        }
        if src.chunk_sites != self.chunk_sites || src.chunk_rows(c) != self.chunk_rows(c) {
            return Err(bad(format!(
                "chunk {c} geometry mismatch: source {}-site chunks ({} rows) vs \
                 target {}-site chunks ({} rows)",
                src.chunk_sites,
                src.chunk_rows(c),
                self.chunk_sites,
                self.chunk_rows(c)
            )));
        }
        let from = chunk_path(&src.dir, c);
        let to = chunk_path(&self.dir, c);
        // `create` wiped the directory, but an interrupted earlier adoption
        // retried on the same writer may have left the file behind.
        if to.exists() {
            std::fs::remove_file(&to)?;
        }
        if std::fs::hard_link(&from, &to).is_err() {
            std::fs::copy(&from, &to)?;
        }
        let mut bytes = Vec::new();
        File::open(&to)?.read_to_end(&mut bytes)?;
        decode_chunk(&bytes, c, self.chunk_lo(c), self.chunk_rows(c))
            .map_err(|e| bad(format!("adopted chunk {c}: {e}")))?;
        self.bytes_written += bytes.len() as u64;
        self.written[c] = true;
        Ok(())
    }

    /// Finalizes the store: every chunk must be on disk (an incomplete
    /// chunk means sites went unmeasured — an error, not a shrug), then the
    /// directory entry list is fsynced.
    pub fn finish(self) -> io::Result<()> {
        if let Some(missing) = self.written.iter().position(|&w| !w) {
            return Err(bad(format!(
                "store incomplete: chunk {missing} never finished ({} sites pending)",
                self.pending
                    .values()
                    .map(|p| p.rows.len() - p.filled)
                    .sum::<usize>()
            )));
        }
        // Make the directory entries themselves durable.
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader

/// Validation result for one chunk file.
#[derive(Debug)]
pub enum ChunkState {
    /// Present and checksum-clean.
    Valid,
    /// File absent.
    Missing,
    /// Present but unreadable/torn; the message says why.
    Corrupt(String),
}

/// Outcome of [`ChunkStore::compact`].
#[derive(Debug)]
pub struct CompactStats {
    /// Chunk-shaped files removed because the manifest does not claim them.
    pub orphans_removed: usize,
    /// Chunk count before compaction.
    pub chunks_before: usize,
    /// Chunk count after compaction.
    pub chunks_after: usize,
    /// Whether the rows were rewritten into a new chunk geometry.
    pub rechunked: bool,
}

/// Machine-readable outcome of [`ChunkStore::fsck`]: what was found, and
/// (under `repair`) what was done about it.
#[derive(Debug)]
pub struct FsckReport {
    /// World label from the manifest.
    pub label: String,
    /// Site count from the manifest.
    pub sites: usize,
    /// Chunks the manifest implies.
    pub chunks: usize,
    /// Chunks present and checksum-clean.
    pub valid: usize,
    /// Chunk indices whose files were absent.
    pub missing: Vec<usize>,
    /// Corrupt chunk indices with the decode failure for each.
    pub corrupt: Vec<(usize, String)>,
    /// Corrupt chunk files moved aside to `quarantine/` (repair only).
    pub quarantined: usize,
    /// Chunks re-encoded byte-identically from journal records (repair
    /// only).
    pub healed: usize,
    /// Chunks that needed healing but the journal could not cover.
    pub unhealed: Vec<usize>,
}

impl FsckReport {
    /// Whether the store needed nothing: every chunk present and clean.
    pub fn clean(&self) -> bool {
        self.valid == self.chunks
    }

    /// Whether the store is fully intact *after* this pass (either it was
    /// clean, or repair healed every damaged chunk).
    pub fn intact(&self) -> bool {
        self.valid + self.healed == self.chunks
    }

    /// JSON rendering for the CLI and the chaos harness.
    pub fn to_value(&self) -> Value {
        let idxs = |v: &[usize]| Value::Array(v.iter().map(|&i| Value::U64(i as u64)).collect());
        Value::Object(vec![
            ("label".into(), Value::String(self.label.clone())),
            ("sites".into(), Value::U64(self.sites as u64)),
            ("chunks".into(), Value::U64(self.chunks as u64)),
            ("valid".into(), Value::U64(self.valid as u64)),
            ("missing".into(), idxs(&self.missing)),
            (
                "corrupt".into(),
                Value::Array(
                    self.corrupt
                        .iter()
                        .map(|(i, why)| {
                            Value::Object(vec![
                                ("chunk".into(), Value::U64(*i as u64)),
                                ("error".into(), Value::String(why.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("quarantined".into(), Value::U64(self.quarantined as u64)),
            ("healed".into(), Value::U64(self.healed as u64)),
            ("unhealed".into(), idxs(&self.unhealed)),
            ("intact".into(), Value::Bool(self.intact())),
        ])
    }
}

/// Read side of a chunk store.
pub struct ChunkStore {
    dir: PathBuf,
    /// World label from the manifest.
    pub label: String,
    /// Site count from the manifest.
    pub sites: usize,
    /// Chunk size from the manifest.
    pub chunk_sites: usize,
}

impl ChunkStore {
    /// Opens a store directory, validating the manifest.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let mut text = String::new();
        File::open(manifest_path(dir))?.read_to_string(&mut text)?;
        let m: Value = serde_json::from_str(text.trim())
            .map_err(|e| bad(format!("bad store manifest: {e}")))?;
        if m["magic"] != STORE_MAGIC {
            return Err(bad("not a chunk store (bad magic)"));
        }
        if m["version"].as_u64() != Some(STORE_VERSION) {
            return Err(bad(format!("unsupported store version {}", m["version"])));
        }
        let label = m["label"]
            .as_str()
            .ok_or_else(|| bad("manifest missing label"))?
            .to_string();
        let sites = m["sites"]
            .as_u64()
            .ok_or_else(|| bad("manifest missing sites"))? as usize;
        let chunk_sites = m["chunk_sites"]
            .as_u64()
            .filter(|&k| k > 0)
            .ok_or_else(|| bad("manifest missing chunk_sites"))? as usize;
        Ok(ChunkStore {
            dir: dir.to_path_buf(),
            label,
            sites,
            chunk_sites,
        })
    }

    /// Number of chunks the manifest implies.
    pub fn num_chunks(&self) -> usize {
        self.sites.div_ceil(self.chunk_sites)
    }

    /// Rows in chunk `c`.
    pub fn chunk_rows(&self, c: usize) -> usize {
        (self.sites - c * self.chunk_sites).min(self.chunk_sites)
    }

    /// Validates chunk `c` without keeping its data.
    pub fn chunk_state(&self, c: usize) -> ChunkState {
        match self.read_chunk(c) {
            Ok(_) => ChunkState::Valid,
            Err(e) if e.kind() == io::ErrorKind::NotFound => ChunkState::Missing,
            Err(e) => ChunkState::Corrupt(e.to_string()),
        }
    }

    /// Reads and decodes chunk `c`.
    pub fn read_chunk(&self, c: usize) -> io::Result<DecodedChunk> {
        let mut bytes = Vec::new();
        File::open(chunk_path(&self.dir, c))?.read_to_end(&mut bytes)?;
        decode_chunk(&bytes, c, c * self.chunk_sites, self.chunk_rows(c))
            .map_err(|e| bad(format!("chunk {c}: {e}")))
    }

    /// Compacts the store: removes orphaned chunk files — indices past the
    /// manifest's chunk count, unparseable `chunk-*.col` names, and
    /// `.col.tmp` leftovers from an aborted run — and, when `chunk_sites`
    /// differs from the current geometry, merges the rows into chunks of
    /// the new size. Delta runs hard-link chunk files into *other* epoch
    /// stores, so every rewrite goes through a temp file + rename and never
    /// truncates a shared inode. `load_dataset` output is byte-identical
    /// before and after; the rewrite is not crash-atomic, but a crash
    /// mid-compact leaves header/manifest mismatches that
    /// [`ChunkStore::chunk_state`] reports as corrupt rather than silently
    /// serving stale rows.
    pub fn compact(&mut self, chunk_sites: usize) -> io::Result<CompactStats> {
        assert!(chunk_sites > 0, "chunk_sites must be positive");
        let chunks_before = self.num_chunks();
        let rechunked = chunk_sites != self.chunk_sites;
        if rechunked {
            // Stream rows old-geometry → new-geometry through temp files.
            let new_chunks = self.sites.div_ceil(chunk_sites);
            let mut tmp_paths = Vec::with_capacity(new_chunks);
            let mut rows: Vec<SiteObservation> = Vec::new();
            let mut next_new = 0usize;
            for c in 0..chunks_before {
                let chunk = self.read_chunk(c)?;
                for r in 0..chunk.rows {
                    rows.push(chunk.observation(r));
                }
                while rows.len() >= chunk_sites || (c + 1 == chunks_before && !rows.is_empty()) {
                    let take = rows.len().min(chunk_sites);
                    let batch: Vec<SiteObservation> = rows.drain(..take).collect();
                    let bytes = encode_chunk(next_new, next_new * chunk_sites, &batch);
                    let tmp = self.dir.join(format!("chunk-{next_new:06}.col.tmp"));
                    let mut f = File::create(&tmp)?;
                    f.write_all(&bytes)?;
                    f.sync_data()?;
                    tmp_paths.push(tmp);
                    next_new += 1;
                }
            }
            // New manifest first (atomic replace), then the chunk renames:
            // a crash in between leaves old-geometry files whose headers
            // no longer match the manifest — detectably corrupt.
            write_manifest(&self.dir, &self.label, self.sites, chunk_sites)?;
            for (i, tmp) in tmp_paths.iter().enumerate() {
                std::fs::rename(tmp, chunk_path(&self.dir, i))?;
            }
            self.chunk_sites = chunk_sites;
        }
        // Orphan sweep: anything chunk-shaped the manifest does not claim.
        let keep = self.num_chunks();
        let mut orphans_removed = 0usize;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let orphan = if let Some(stem) = name.strip_prefix("chunk-") {
                if let Some(digits) = stem.strip_suffix(".col") {
                    match digits.parse::<usize>() {
                        Ok(idx) => idx >= keep,
                        Err(_) => true,
                    }
                } else {
                    stem.ends_with(".col.tmp")
                }
            } else {
                false
            };
            if orphan {
                std::fs::remove_file(entry.path())?;
                orphans_removed += 1;
            }
        }
        File::open(&self.dir)?.sync_all()?;
        Ok(CompactStats {
            orphans_removed,
            chunks_before,
            chunks_after: keep,
            rechunked,
        })
    }

    /// Materializes the full [`MeasuredDataset`] — the dual-feasible-size
    /// path used to certify streaming/resident equivalence. Toplists come
    /// from the world, exactly as the resident pipeline copies them.
    pub fn load_dataset(&self, world: &webdep_webgen::World) -> io::Result<MeasuredDataset> {
        if world.label != self.label || world.sites.len() != self.sites {
            return Err(bad(format!(
                "store is for '{}' ({} sites), not '{}' ({} sites)",
                self.label,
                self.sites,
                world.label,
                world.sites.len()
            )));
        }
        let mut observations = Vec::with_capacity(self.sites);
        for c in 0..self.num_chunks() {
            let chunk = self.read_chunk(c)?;
            for r in 0..chunk.rows {
                observations.push(chunk.observation(r));
            }
        }
        Ok(MeasuredDataset {
            observations,
            toplists: world.toplists.clone(),
            global_top: world.global_top.clone(),
            label: world.label.clone(),
        })
    }

    /// Verifies every chunk of the store at `dir` — checksum, header, and
    /// full column decode — and reports what it finds. With `repair`,
    /// corrupt chunk files are moved aside to `quarantine/` (never
    /// deleted: the damaged bytes stay available for post-mortem) and
    /// missing or quarantined chunks are re-encoded from `journal`
    /// records where the journal covers all their rows. Chunk bytes are a
    /// pure function of the rows, so a healed chunk is byte-identical to
    /// the one the original run wrote; each is decode-verified before the
    /// atomic rename into place.
    pub fn fsck(dir: &Path, journal: Option<&Path>, repair: bool) -> io::Result<FsckReport> {
        let store = ChunkStore::open(dir)?;
        let mut report = FsckReport {
            label: store.label.clone(),
            sites: store.sites,
            chunks: store.num_chunks(),
            valid: 0,
            missing: Vec::new(),
            corrupt: Vec::new(),
            quarantined: 0,
            healed: 0,
            unhealed: Vec::new(),
        };
        let mut need_heal = Vec::new();
        for c in 0..store.num_chunks() {
            match store.chunk_state(c) {
                ChunkState::Valid => report.valid += 1,
                ChunkState::Missing => {
                    report.missing.push(c);
                    if repair {
                        need_heal.push(c);
                    }
                }
                ChunkState::Corrupt(why) => {
                    report.corrupt.push((c, why));
                    if repair {
                        let qdir = dir.join("quarantine");
                        std::fs::create_dir_all(&qdir)?;
                        let dst = qdir.join(format!("chunk-{c:06}.col"));
                        if dst.exists() {
                            std::fs::remove_file(&dst)?;
                        }
                        std::fs::rename(chunk_path(dir, c), dst)?;
                        report.quarantined += 1;
                        need_heal.push(c);
                    }
                }
            }
        }
        if !need_heal.is_empty() {
            let loaded = match journal {
                Some(path) => {
                    let j = crate::journal::load(path)?;
                    if j.label != store.label || j.sites != store.sites {
                        return Err(bad(format!(
                            "journal is for '{}' ({} sites), not '{}' ({} sites)",
                            j.label, j.sites, store.label, store.sites
                        )));
                    }
                    Some(j)
                }
                None => None,
            };
            let mut slots: Vec<Option<SiteObservation>> = vec![None; store.sites];
            if let Some(j) = &loaded {
                j.fill_slots(&mut slots);
            }
            for c in need_heal {
                let lo = c * store.chunk_sites;
                let rows = store.chunk_rows(c);
                let covered: Option<Vec<SiteObservation>> =
                    slots[lo..lo + rows].iter().cloned().collect();
                let Some(batch) = covered else {
                    report.unhealed.push(c);
                    continue;
                };
                let bytes = encode_chunk(c, lo, &batch);
                decode_chunk(&bytes, c, lo, rows)
                    .map_err(|e| bad(format!("healed chunk {c} failed verification: {e}")))?;
                let tmp = dir.join(format!("chunk-{c:06}.col.tmp"));
                let mut f = File::create(&tmp)?;
                f.write_all(&bytes)?;
                f.sync_data()?;
                std::fs::rename(&tmp, chunk_path(dir, c))?;
                report.healed += 1;
            }
            File::open(dir)?.sync_all()?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FailureCause, LayerError};
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("webdep-store-{name}-{}", std::process::id()))
    }

    fn sample_obs(i: usize) -> SiteObservation {
        let mut o = SiteObservation::blank(&format!("site{i}.example.com"), "en");
        if !i.is_multiple_of(7) {
            o.hosting_ip = Some(Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8));
            o.hosting_asn = Some(64512 + (i % 37) as u32);
            o.hosting_org = Some((i % 11) as u32);
            o.hosting_org_country = Some(if i.is_multiple_of(2) { "US" } else { "DE" }.into());
            o.hosting_ip_country = Some("NL".into());
            o.hosting_anycast = i.is_multiple_of(3);
            o.ns_names = vec![
                format!("ns1.prov{}.net", i % 5),
                format!("ns2.prov{}.net", i % 5),
            ];
            o.dns_ip = Some(Ipv4Addr::new(192, 0, 2, (i % 256) as u8));
            o.dns_org = Some((i % 9) as u32);
            o.ca_owner = Some((i % 4) as u32);
            o.ca_owner_country = Some("US".into());
        } else {
            o.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: query timed out"));
            o.ca_error = Some(LayerError::new(
                FailureCause::Skipped,
                "no serving IP to scan",
            ));
        }
        o.derive_error_summary();
        o
    }

    fn write_store(dir: &Path, n: usize, chunk: usize) -> Vec<SiteObservation> {
        let all: Vec<SiteObservation> = (0..n).map(sample_obs).collect();
        let mut w = ChunkStoreWriter::create(dir, "t-v1", n, chunk).unwrap();
        // Commit in a scrambled order to prove site-order encoding.
        let mut order: Vec<usize> = (0..n).collect();
        order.reverse();
        order.swap(0, n / 2);
        for &i in &order {
            assert!(w.commit(i, &all[i]).unwrap());
        }
        assert!(
            !w.commit(0, &all[0]).unwrap(),
            "duplicate commit is a no-op"
        );
        w.finish().unwrap();
        all
    }

    #[test]
    fn roundtrip_is_exact_and_commit_order_free() {
        let dir = tmp("roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let n = 100;
        let all = write_store(&dir, n, 16);

        let store = ChunkStore::open(&dir).unwrap();
        assert_eq!(store.sites, n);
        assert_eq!(store.num_chunks(), 7);
        assert_eq!(store.chunk_rows(6), 4);
        let mut seen = 0;
        for c in 0..store.num_chunks() {
            let chunk = store.read_chunk(c).unwrap();
            for r in 0..chunk.rows {
                let obs = chunk.observation(r);
                assert_eq!(obs, all[chunk.lo + r], "site {}", chunk.lo + r);
                // Byte-level: same serialized form as the original.
                assert_eq!(
                    serde_json::to_string(&obs).unwrap(),
                    serde_json::to_string(&all[chunk.lo + r]).unwrap()
                );
                seen += 1;
            }
        }
        assert_eq!(seen, n);

        // Chunk bytes are a pure function of the rows: commit in site
        // order into a second store and compare files.
        let dir2 = tmp("roundtrip2");
        let _ = fs::remove_dir_all(&dir2);
        let mut w = ChunkStoreWriter::create(&dir2, "t-v1", n, 16).unwrap();
        for (i, obs) in all.iter().enumerate() {
            w.commit(i, obs).unwrap();
        }
        w.finish().unwrap();
        for c in 0..7 {
            assert_eq!(
                fs::read(dir.join(format!("chunk-{c:06}.col"))).unwrap(),
                fs::read(dir2.join(format!("chunk-{c:06}.col"))).unwrap(),
                "chunk {c} bytes differ by commit order"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn torn_chunk_detected_and_resume_heals() {
        let dir = tmp("torn");
        let _ = fs::remove_dir_all(&dir);
        let n = 40;
        let all = write_store(&dir, n, 16);

        // Tear the final chunk mid-write.
        let victim = dir.join("chunk-000002.col");
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 11]).unwrap();
        let store = ChunkStore::open(&dir).unwrap();
        assert!(matches!(store.chunk_state(0), ChunkState::Valid));
        assert!(matches!(store.chunk_state(2), ChunkState::Corrupt(_)));

        // Resume keeps the valid chunks and deletes the torn one…
        let mut w = ChunkStoreWriter::resume(&dir, "t-v1", n, 16).unwrap();
        assert!(w.chunk_written(0) && w.chunk_written(1) && !w.chunk_written(2));
        assert!(!victim.exists(), "torn chunk deleted for healing");
        assert!(w.site_durable(0) && !w.site_durable(33));
        // …and re-committing the tail heals it to identical bytes.
        for (i, obs) in all.iter().enumerate().skip(32) {
            w.commit(i, obs).unwrap();
        }
        w.finish().unwrap();
        assert_eq!(
            fs::read(&victim).unwrap(),
            bytes,
            "healed chunk is byte-identical"
        );

        // A mismatched manifest refuses to resume.
        assert!(ChunkStoreWriter::resume(&dir, "other", n, 16).is_err());
        assert!(ChunkStoreWriter::resume(&dir, "t-v1", n + 1, 16).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    fn read_all(store: &ChunkStore) -> Vec<SiteObservation> {
        let mut out = Vec::new();
        for c in 0..store.num_chunks() {
            let chunk = store.read_chunk(c).unwrap();
            for r in 0..chunk.rows {
                out.push(chunk.observation(r));
            }
        }
        out
    }

    #[test]
    fn adopt_chunk_links_verified_bytes() {
        let dir = tmp("adopt-src");
        let dir2 = tmp("adopt-dst");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
        let n = 100;
        write_store(&dir, n, 16);
        let src = ChunkStore::open(&dir).unwrap();

        let mut w = ChunkStoreWriter::create(&dir2, "t-v1", n, 16).unwrap();
        for c in 0..src.num_chunks() {
            w.adopt_chunk(&src, c).unwrap();
            assert!(w.chunk_written(c));
            // Double adoption is an error, not silent corruption.
            assert!(w.adopt_chunk(&src, c).is_err());
        }
        w.finish().unwrap();
        for c in 0..src.num_chunks() {
            assert_eq!(
                fs::read(dir.join(format!("chunk-{c:06}.col"))).unwrap(),
                fs::read(dir2.join(format!("chunk-{c:06}.col"))).unwrap(),
                "adopted chunk {c} differs"
            );
        }

        // A geometry mismatch is refused before any bytes move.
        let dir3 = tmp("adopt-badgeo");
        let _ = fs::remove_dir_all(&dir3);
        let mut w = ChunkStoreWriter::create(&dir3, "t-v1", n, 32).unwrap();
        assert!(w.adopt_chunk(&src, 0).is_err());
        // A corrupt source chunk is caught by the read-back verification.
        let victim = dir.join("chunk-000001.col");
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 3]).unwrap();
        let mut w = ChunkStoreWriter::create(&dir3, "t-v1", n, 16).unwrap();
        assert!(w.adopt_chunk(&src, 1).is_err());
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
        fs::remove_dir_all(&dir3).unwrap();
    }

    #[test]
    fn compact_rechunks_and_removes_orphans() {
        let dir = tmp("compact");
        let _ = fs::remove_dir_all(&dir);
        let n = 100;
        let all = write_store(&dir, n, 16);
        // Orphans an aborted delta run could leave behind.
        fs::write(dir.join("chunk-000042.col"), b"stale").unwrap();
        fs::write(dir.join("chunk-000003.col.tmp"), b"half").unwrap();

        let mut store = ChunkStore::open(&dir).unwrap();
        let stats = store.compact(64).unwrap();
        assert_eq!(stats.chunks_before, 7);
        assert_eq!(stats.chunks_after, 2);
        // 5 superseded old-geometry chunks + the 2 stray files.
        assert_eq!(stats.orphans_removed, 7);
        assert!(stats.rechunked);

        // Reopen from disk: same rows, new geometry, no strays.
        let reopened = ChunkStore::open(&dir).unwrap();
        assert_eq!(reopened.chunk_sites, 64);
        assert_eq!(reopened.num_chunks(), 2);
        assert_eq!(read_all(&reopened), all);
        let mut files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        assert_eq!(
            files,
            ["chunk-000000.col", "chunk-000001.col", "manifest.json"]
        );

        // Compacted bytes equal a from-scratch store at the same geometry:
        // chunk bytes stay a pure function of the rows.
        let dir2 = tmp("compact-fresh");
        let _ = fs::remove_dir_all(&dir2);
        let mut w = ChunkStoreWriter::create(&dir2, "t-v1", n, 64).unwrap();
        for (i, obs) in all.iter().enumerate() {
            w.commit(i, obs).unwrap();
        }
        w.finish().unwrap();
        for c in 0..2 {
            assert_eq!(
                fs::read(dir.join(format!("chunk-{c:06}.col"))).unwrap(),
                fs::read(dir2.join(format!("chunk-{c:06}.col"))).unwrap(),
            );
        }

        // Idempotent at the same geometry: nothing to do, nothing removed.
        let stats = store.compact(64).unwrap();
        assert!(!stats.rechunked);
        assert_eq!(stats.orphans_removed, 0);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn compact_never_truncates_hard_linked_sources() {
        let src_dir = tmp("compact-hl-src");
        let dst_dir = tmp("compact-hl-dst");
        let _ = fs::remove_dir_all(&src_dir);
        let _ = fs::remove_dir_all(&dst_dir);
        let n = 48;
        let all = write_store(&src_dir, n, 16);
        // A delta-built sibling store sharing inodes with the source.
        let src = ChunkStore::open(&src_dir).unwrap();
        let mut w = ChunkStoreWriter::create(&dst_dir, "t-v1", n, 16).unwrap();
        for c in 0..src.num_chunks() {
            w.adopt_chunk(&src, c).unwrap();
        }
        w.finish().unwrap();
        let src_bytes: Vec<Vec<u8>> = (0..3)
            .map(|c| fs::read(src_dir.join(format!("chunk-{c:06}.col"))).unwrap())
            .collect();

        let mut dst = ChunkStore::open(&dst_dir).unwrap();
        dst.compact(32).unwrap();
        assert_eq!(read_all(&dst), all);
        // The shared inodes were never rewritten in place.
        for (c, bytes) in src_bytes.iter().enumerate() {
            assert_eq!(
                &fs::read(src_dir.join(format!("chunk-{c:06}.col"))).unwrap(),
                bytes,
                "source chunk {c} was clobbered through a shared inode"
            );
        }
        assert_eq!(read_all(&ChunkStore::open(&src_dir).unwrap()), all);
        fs::remove_dir_all(&src_dir).unwrap();
        fs::remove_dir_all(&dst_dir).unwrap();
    }

    #[test]
    fn finish_rejects_incomplete_store() {
        let dir = tmp("incomplete");
        let _ = fs::remove_dir_all(&dir);
        let mut w = ChunkStoreWriter::create(&dir, "t-v1", 10, 4).unwrap();
        w.commit(0, &sample_obs(0)).unwrap();
        assert!(w.finish().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_recovers_on_resume() {
        let dir = tmp("torn-manifest");
        let _ = fs::remove_dir_all(&dir);
        let n = 40;
        let all = write_store(&dir, n, 16);
        let mpath = dir.join("manifest.json");
        let mbytes = fs::read(&mpath).unwrap();

        // Truncate the manifest mid-byte — the torn-write artifact the
        // atomic replacement protects against, planted by hand.
        fs::write(&mpath, &mbytes[..mbytes.len() / 2]).unwrap();
        assert!(ChunkStore::open(&dir).is_err());

        // Resume rewrites the manifest in place from the run metadata and
        // keeps every surviving chunk — no re-measurement needed.
        let w = ChunkStoreWriter::resume(&dir, "t-v1", n, 16).unwrap();
        assert!((0..3).all(|c| w.chunk_written(c)), "valid chunks kept");
        w.finish().unwrap();
        assert_eq!(
            fs::read(&mpath).unwrap(),
            mbytes,
            "healed manifest is byte-identical"
        );
        assert_eq!(read_all(&ChunkStore::open(&dir).unwrap()), all);

        // With the manifest torn there is nothing trustworthy to compare
        // against, so the caller's run metadata is authoritative — the
        // same trust `create` extends. A *valid* manifest for a different
        // run still refuses (covered in torn_chunk_detected_and_resume_heals).
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_quarantines_and_heals_byte_identically() {
        let dir = tmp("fsck");
        let _ = fs::remove_dir_all(&dir);
        let n = 72;
        let all = write_store(&dir, n, 16);
        let jpath = dir.join("journal.ndjson");
        let mut jw = crate::journal::JournalWriter::create(&jpath, "t-v1", n).unwrap();
        for (i, obs) in all.iter().enumerate() {
            jw.append(i, obs).unwrap();
        }
        jw.sync().unwrap();
        let orig2 = fs::read(dir.join("chunk-000002.col")).unwrap();
        let orig4 = fs::read(dir.join("chunk-000004.col")).unwrap();

        // Garble one chunk mid-file, delete another outright.
        let mut garbled = orig2.clone();
        garbled[40] ^= 0xFF;
        fs::write(dir.join("chunk-000002.col"), &garbled).unwrap();
        fs::remove_file(dir.join("chunk-000004.col")).unwrap();

        // Report-only pass: finds both, changes nothing.
        let report = ChunkStore::fsck(&dir, None, false).unwrap();
        assert!(!report.clean() && !report.intact());
        assert_eq!(report.valid, 3);
        assert_eq!(report.missing, vec![4]);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].0, 2);
        assert_eq!((report.quarantined, report.healed), (0, 0));
        assert_eq!(
            fs::read(dir.join("chunk-000002.col")).unwrap(),
            garbled,
            "report-only fsck must not touch the store"
        );

        // Repair: the corrupt file moves to quarantine for post-mortem and
        // both chunks are re-encoded from the journal, byte-identically.
        let report = ChunkStore::fsck(&dir, Some(&jpath), true).unwrap();
        assert!(report.intact() && !report.clean());
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.healed, 2);
        assert!(report.unhealed.is_empty());
        assert_eq!(fs::read(dir.join("chunk-000002.col")).unwrap(), orig2);
        assert_eq!(fs::read(dir.join("chunk-000004.col")).unwrap(), orig4);
        assert_eq!(
            fs::read(dir.join("quarantine/chunk-000002.col")).unwrap(),
            garbled
        );
        assert_eq!(read_all(&ChunkStore::open(&dir).unwrap()), all);
        let clean = ChunkStore::fsck(&dir, None, false).unwrap();
        assert!(clean.clean());
        assert!(clean.to_value()["intact"] == Value::Bool(true));

        // Without a journal a missing chunk is reported unhealed — fsck
        // never invents data.
        fs::remove_file(dir.join("chunk-000000.col")).unwrap();
        let report = ChunkStore::fsck(&dir, None, true).unwrap();
        assert!(!report.intact());
        assert_eq!(report.unhealed, vec![0]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
