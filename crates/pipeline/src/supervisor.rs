//! Worker supervision: heartbeats, the watchdog, work requeueing with a
//! poison policy, and the seeded chaos schedules that exercise them.
//!
//! The measurement run is a long batch job where partial failure is the
//! norm. The supervision layer guarantees that no single site — and no
//! single worker — can take the run down:
//!
//! * every site is measured under `catch_unwind`, so a panic becomes a
//!   [`FailureCause::Internal`](crate::dataset::FailureCause::Internal)
//!   observation instead of a process abort;
//! * workers publish **heartbeats** (an atomic last-progress stamp per
//!   worker); the supervisor declares a worker *lost* when its thread dies
//!   with a batch in flight, or *hung* when its heartbeat goes stale past
//!   the configured deadline;
//! * a lost worker's in-flight batch is **requeued** with a poison count,
//!   so another worker retries it — but a batch that has already killed
//!   [`SupervisorConfig::poison_threshold`] workers is recorded as failed
//!   ([`FailureCause::Internal`](crate::dataset::FailureCause::Internal))
//!   rather than retried forever;
//! * replacement workers are respawned up to
//!   [`SupervisorConfig::max_respawns`].
//!
//! [`ChaosPlan`] extends the seeded [`webdep_netsim::FaultPlan`]
//! discipline from servers to the measuring workers themselves: panic and
//! worker-kill decisions are pure functions of `(seed, site, attempt)`,
//! never of wall-clock or thread identity, so chaos runs are reproducible.

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Supervision tuning knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Watchdog budget per site: a worker whose heartbeat is older than
    /// this while it holds an in-flight batch is declared hung and its
    /// batch requeued. Must comfortably exceed the worst-case single-site
    /// wall-clock (resolver + scanner deadlines).
    pub site_deadline: Duration,
    /// Batches that kill this many workers are recorded as failed instead
    /// of being requeued again.
    pub poison_threshold: u32,
    /// Replacement workers the supervisor may spawn over the whole run.
    pub max_respawns: usize,
    /// Supervisor polling interval.
    pub tick: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            site_deadline: Duration::from_secs(30),
            poison_threshold: 2,
            max_respawns: 8,
            tick: Duration::from_millis(2),
        }
    }
}

/// A contiguous slice of site indices owned by one worker, with the
/// number of workers it has killed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// First site index not yet completed.
    pub lo: usize,
    /// One past the last site index.
    pub hi: usize,
    /// Workers this batch has killed (the retry/poison count).
    pub poison: u32,
}

impl Batch {
    /// A fresh, unpoisoned batch covering `lo..hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        Batch { lo, hi, poison: 0 }
    }

    /// Whether no sites remain.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// Per-worker state shared between a worker thread and the supervisor.
#[derive(Debug, Default)]
pub struct WorkerSlot {
    /// Milliseconds since the run epoch at the worker's last progress
    /// step (written by the worker before each site).
    pub heartbeat: AtomicU64,
    /// Set by the supervisor; the worker abandons its work and exits at
    /// the next check.
    pub canceled: AtomicBool,
    /// The batch the worker currently holds. The worker advances `lo` as
    /// sites complete; the supervisor `take`s it on loss to requeue the
    /// remainder.
    pub in_flight: Mutex<Option<Batch>>,
}

impl WorkerSlot {
    /// Whether the supervisor has canceled this worker.
    pub fn is_canceled(&self) -> bool {
        self.canceled.load(Ordering::Relaxed)
    }
}

/// The shared work source: an atomic cursor handing out fresh batches
/// plus a requeue list fed by the supervisor.
#[derive(Debug)]
pub struct WorkQueue {
    cursor: AtomicU64,
    n: usize,
    batch: usize,
    requeued: Mutex<Vec<Batch>>,
}

impl WorkQueue {
    /// A queue over `n` sites handing out `batch`-sized fresh batches.
    pub fn new(n: usize, batch: usize) -> Self {
        WorkQueue {
            cursor: AtomicU64::new(0),
            n,
            batch: batch.max(1),
            requeued: Mutex::new(Vec::new()),
        }
    }

    /// Claims the next fresh batch from the cursor, if any remain.
    pub fn claim_fresh(&self) -> Option<Batch> {
        let lo = (self.cursor.fetch_add(self.batch as u64, Ordering::Relaxed) as usize).min(self.n);
        let hi = (lo + self.batch).min(self.n);
        (lo < hi).then(|| Batch::new(lo, hi))
    }

    /// Claims a requeued batch (takes priority over fresh work so a dead
    /// worker's sites are retried promptly).
    pub fn claim_requeued(&self) -> Option<Batch> {
        self.requeued
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
    }

    /// Returns a lost worker's in-flight remainder for another worker.
    pub fn requeue(&self, batch: Batch) {
        self.requeued
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(batch);
    }

    /// Drains everything still claimable — used by the supervisor when no
    /// workers remain to fail the leftover sites deterministically.
    pub fn drain(&self) -> Vec<Batch> {
        let mut out = Vec::new();
        while let Some(b) = self.claim_requeued() {
            out.push(b);
        }
        while let Some(b) = self.claim_fresh() {
            out.push(b);
        }
        out
    }
}

/// Supervision accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Site measurements that panicked and were isolated into
    /// `FailureCause::Internal` observations.
    pub panics_isolated: u64,
    /// Workers declared lost (thread died or heartbeat went stale with a
    /// batch in flight).
    pub workers_lost: u64,
    /// Replacement workers spawned.
    pub workers_respawned: u64,
    /// In-flight batches requeued after a worker loss.
    pub batches_requeued: u64,
    /// Sites recorded as failed because their batch hit the poison
    /// threshold (or no workers remained).
    pub sites_poisoned: u64,
    /// Sites restored from a journal instead of being remeasured.
    pub sites_resumed: u64,
}

const CHAOS_KILL_SALT: u64 = 0x6b69_6c6c_7730_726b;
const CHAOS_PANIC_SALT: u64 = 0x7061_6e69_6373_6974;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seeded, deterministic schedule of worker-level failures, extending
/// the [`webdep_netsim::FaultPlan`] discipline (pure, seeded decisions)
/// from the measured infrastructure to the measuring workers.
///
/// Every decision is a pure function of `(seed, site, attempt)` — the
/// attempt count being the batch's poison counter — so chaos runs are
/// reproducible for a fixed configuration. (Unlike server faults, *which*
/// sites share a batch depends on scheduling, so chaos datasets are only
/// pinned for a fixed worker count and scheduling mode.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the rate-based schedules.
    pub seed: u64,
    /// Probability a worker dies upon starting any given `(site, attempt)`.
    pub kill_rate: f64,
    /// Probability that measuring a site panics (pure per site).
    pub panic_rate: f64,
    /// Sites that kill their worker on the first attempt only.
    pub kill_sites: Vec<usize>,
    /// Sites that kill their worker on *every* attempt — guaranteed to
    /// end poisoned.
    pub poison_sites: Vec<usize>,
    /// Sites whose measurement panics.
    pub panic_sites: Vec<usize>,
    /// Sites that hang their worker (first attempt only) until the
    /// watchdog cancels it.
    pub hang_sites: Vec<usize>,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Rate-based worker kills only.
    pub fn kills_only(seed: u64, kill_rate: f64) -> Self {
        ChaosPlan {
            seed,
            kill_rate,
            ..ChaosPlan::default()
        }
    }

    /// Rate-based site panics only.
    pub fn panics_only(seed: u64, panic_rate: f64) -> Self {
        ChaosPlan {
            seed,
            panic_rate,
            ..ChaosPlan::default()
        }
    }

    /// Kill the worker on the first attempt of each listed site.
    pub fn kill_at(sites: &[usize]) -> Self {
        ChaosPlan {
            kill_sites: sites.to_vec(),
            ..ChaosPlan::default()
        }
    }

    /// Kill the worker on every attempt of each listed site (the site is
    /// guaranteed to end poisoned).
    pub fn poison_at(sites: &[usize]) -> Self {
        ChaosPlan {
            poison_sites: sites.to_vec(),
            ..ChaosPlan::default()
        }
    }

    /// Panic while measuring each listed site.
    pub fn panic_at(sites: &[usize]) -> Self {
        ChaosPlan {
            panic_sites: sites.to_vec(),
            ..ChaosPlan::default()
        }
    }

    /// Hang the worker on the first attempt of each listed site.
    pub fn hang_at(sites: &[usize]) -> Self {
        ChaosPlan {
            hang_sites: sites.to_vec(),
            ..ChaosPlan::default()
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.kill_rate > 0.0
            || self.panic_rate > 0.0
            || !self.kill_sites.is_empty()
            || !self.poison_sites.is_empty()
            || !self.panic_sites.is_empty()
            || !self.hang_sites.is_empty()
    }

    /// Whether the worker starting `site` on this `attempt` (the batch's
    /// poison count) dies. Pure in `(seed, site, attempt)`.
    pub fn kills(&self, site: usize, attempt: u32) -> bool {
        if self.poison_sites.contains(&site) {
            return true;
        }
        if attempt == 0 && self.kill_sites.contains(&site) {
            return true;
        }
        self.kill_rate > 0.0
            && unit_f64(splitmix64(
                self.seed ^ CHAOS_KILL_SALT ^ (site as u64) ^ ((attempt as u64) << 48),
            )) < self.kill_rate
    }

    /// Whether measuring `site` panics. Pure in `(seed, site)`.
    pub fn panics(&self, site: usize) -> bool {
        if self.panic_sites.contains(&site) {
            return true;
        }
        self.panic_rate > 0.0
            && unit_f64(splitmix64(self.seed ^ CHAOS_PANIC_SALT ^ (site as u64))) < self.panic_rate
    }

    /// Whether the worker starting `site` on this `attempt` hangs until
    /// the watchdog cancels it (first attempt only, so the retry succeeds).
    pub fn hangs(&self, site: usize, attempt: u32) -> bool {
        attempt == 0 && self.hang_sites.contains(&site)
    }
}

/// Suppress an unused-import warning when the crate is built without the
/// netsim doc links resolving (doc-only use).
#[allow(unused)]
fn _doc_anchor(_ip: Ipv4Addr) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = ChaosPlan::none();
        assert!(!plan.is_active());
        for i in 0..512 {
            for a in 0..3 {
                assert!(!plan.kills(i, a));
                assert!(!plan.hangs(i, a));
            }
            assert!(!plan.panics(i));
        }
    }

    #[test]
    fn chaos_decisions_are_pure_and_rate_respecting() {
        let plan = ChaosPlan {
            seed: 11,
            kill_rate: 0.3,
            panic_rate: 0.2,
            ..ChaosPlan::default()
        };
        let kills: Vec<bool> = (0..4000).map(|i| plan.kills(i, 0)).collect();
        let again: Vec<bool> = (0..4000).map(|i| plan.kills(i, 0)).collect();
        assert_eq!(kills, again, "kill schedule must be pure");
        let rate = kills.iter().filter(|&&k| k).count() as f64 / kills.len() as f64;
        assert!((rate - 0.3).abs() < 0.05, "kill rate {rate}");
        // A retry rolls independently of the first attempt.
        assert_ne!(
            kills,
            (0..4000).map(|i| plan.kills(i, 1)).collect::<Vec<_>>()
        );
        let panics = (0..4000).filter(|&i| plan.panics(i)).count() as f64 / 4000.0;
        assert!((panics - 0.2).abs() < 0.05, "panic rate {panics}");
    }

    #[test]
    fn targeted_schedules_fire_exactly_where_told() {
        let plan = ChaosPlan::kill_at(&[3, 9]);
        assert!(plan.is_active());
        assert!(plan.kills(3, 0) && plan.kills(9, 0));
        assert!(!plan.kills(3, 1), "targeted kills fire on attempt 0 only");
        assert!(!plan.kills(4, 0));

        let poison = ChaosPlan::poison_at(&[7]);
        assert!(poison.kills(7, 0) && poison.kills(7, 1) && poison.kills(7, 5));

        let hang = ChaosPlan::hang_at(&[2]);
        assert!(hang.hangs(2, 0) && !hang.hangs(2, 1));
    }

    #[test]
    fn work_queue_hands_out_requeued_batches_first() {
        let q = WorkQueue::new(40, 16);
        let b1 = q.claim_fresh().unwrap();
        assert_eq!((b1.lo, b1.hi), (0, 16));
        q.requeue(Batch {
            lo: 5,
            hi: 16,
            poison: 1,
        });
        let r = q.claim_requeued().unwrap();
        assert_eq!((r.lo, r.hi, r.poison), (5, 16, 1));
        assert_eq!(q.claim_requeued(), None);
        let b2 = q.claim_fresh().unwrap();
        let b3 = q.claim_fresh().unwrap();
        assert_eq!((b2.lo, b2.hi), (16, 32));
        assert_eq!((b3.lo, b3.hi), (32, 40));
        assert_eq!(q.claim_fresh(), None);
    }

    #[test]
    fn drain_collects_all_remaining_work() {
        let q = WorkQueue::new(20, 8);
        let _ = q.claim_fresh();
        q.requeue(Batch {
            lo: 2,
            hi: 8,
            poison: 1,
        });
        let drained = q.drain();
        let sites: usize = drained.iter().map(|b| b.hi - b.lo).sum();
        assert_eq!(sites, 6 + 12, "requeued remainder + unclaimed cursor work");
        assert!(q.claim_fresh().is_none() && q.claim_requeued().is_none());
    }
}
