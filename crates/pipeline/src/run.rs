//! The measurement run: parallel resolve + scan + enrich, under
//! supervision.
//!
//! Two scheduler/caching knobs govern how the run scales:
//!
//! * [`Scheduling::Dynamic`] (the default) feeds workers from a shared
//!   atomic cursor in small batches, so a worker that lands on slow sites
//!   does not leave the rest of its statically assigned shard idle.
//!   [`Scheduling::Static`] keeps the original contiguous-shard split.
//! * `shared_cache` layers one process-wide [`SharedDnsCache`] under every
//!   worker's private resolver cache, so the delegation tier (root, TLD
//!   referrals) is walked roughly once per run instead of once per worker.
//!
//! Both knobs change only *when and where* work happens, never the result:
//! `measure` returns a byte-identical dataset for any worker count,
//! scheduling mode, and cache setting.
//!
//! On top of the scheduler sits the supervision layer (see
//! [`crate::supervisor`]): every site is measured under `catch_unwind`
//! (a panic becomes a [`FailureCause::Internal`] observation, never a
//! process abort), workers publish heartbeats and hand each completed
//! observation to a shared collector immediately, and the supervisor
//! requeues a lost worker's in-flight batch and respawns replacements.
//! Because per-site measurement is deterministic, a requeued batch
//! re-measures to identical bytes — worker loss costs wall-clock, not
//! correctness. [`measure_journaled`] additionally checkpoints every
//! completed observation to an append-only JSONL journal
//! ([`crate::journal`]) and [`resume_from_journal`] continues a crashed
//! run, provably reassembling a byte-identical dataset.

use crate::dataset::{FailureCause, LayerError, MeasuredDataset, SiteObservation};
use crate::journal::{self, JournalWriter};
use crate::store::{ChunkStoreWriter, DEFAULT_CHUNK_SITES};
use crate::supervisor::{
    Batch, ChaosPlan, SupervisionStats, SupervisorConfig, WorkQueue, WorkerSlot,
};
use std::any::Any;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use webdep_dns::resolver::{IterativeResolver, ResolveError, ResolverConfig};
use webdep_dns::shared_cache::SharedDnsCache;
use webdep_dns::DomainName;
use webdep_geodb::{AnycastSet, AsOrgDb, CaOwnerDb, GeoDb, PrefixTable};
use webdep_tls::scanner::{Scanner, ScannerConfig};
use webdep_webgen::{Continent, DeployedWorld, World};

/// How sites are handed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Pre-split the site list into one contiguous shard per worker.
    Static,
    /// Workers pull fixed-size batches from a shared atomic cursor.
    #[default]
    Dynamic,
}

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker threads (each gets its own resolver cache and scanner).
    pub workers: usize,
    /// Vantage continent for the primary measurement (the paper measures
    /// from Stanford: North America).
    pub vantage: Continent,
    /// Resolver tuning.
    pub resolver: ResolverConfig,
    /// Scanner tuning.
    pub scanner: ScannerConfig,
    /// Work distribution strategy.
    pub scheduling: Scheduling,
    /// Share one delegation/answer cache across all workers.
    pub shared_cache: bool,
    /// Supervision tuning: watchdog deadline, poison threshold, respawn
    /// budget.
    pub supervisor: SupervisorConfig,
    /// Seeded chaos schedule (worker kills / panics / hangs) for
    /// resilience tests and benches; `None` injects nothing.
    pub chaos: Option<ChaosPlan>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 8,
            vantage: Continent::NorthAmerica,
            resolver: ResolverConfig::default(),
            scanner: ScannerConfig::default(),
            scheduling: Scheduling::Dynamic,
            shared_cache: true,
            supervisor: SupervisorConfig::default(),
            chaos: None,
        }
    }
}

/// Sites per pull from the dynamic work queue: small enough to balance
/// slow sites across workers, large enough that the cursor is cold.
const DYNAMIC_BATCH: usize = 16;

/// Throughput and cache accounting for one [`measure_with_stats`] run.
#[derive(Debug, Clone)]
pub struct MeasureStats {
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
    /// Sites measured per wall-clock second.
    pub sites_per_sec: f64,
    /// DNS queries that actually hit the simulated wire (all workers).
    pub wire_queries: u64,
    /// Answers served from workers' private resolver caches.
    pub local_cache_hits: u64,
    /// Answers/delegations served from the shared cache tier.
    pub shared_cache_hits: u64,
    /// Per-worker busy time (from spawn to last site finished), including
    /// workers that were lost mid-run.
    pub worker_busy: Vec<Duration>,
    /// Largest fraction of the wall clock any worker spent idle, i.e. done
    /// but waiting for stragglers. Static sharding drives this up; the
    /// dynamic queue keeps it near zero.
    pub peak_idle_fraction: f64,
    /// DNS replies discarded as undecodable (truncated/corrupt datagrams),
    /// summed over all workers.
    pub malformed_datagrams: u64,
    /// DNS replies discarded for a transaction-id mismatch (garbled or
    /// stale datagrams), summed over all workers.
    pub mismatched_ids: u64,
    /// TLS server flights discarded as malformed, summed over all workers.
    pub malformed_flights: u64,
    /// Supervision accounting: panics isolated, workers lost/respawned,
    /// batches requeued, sites poisoned or resumed.
    pub supervision: SupervisionStats,
}

/// What one worker brings home (observations are handed to the shared
/// collector per site; only accounting comes back through the handle).
struct WorkerReport {
    busy: Duration,
    wire_queries: u64,
    local_cache_hits: u64,
    shared_cache_hits: u64,
    malformed_datagrams: u64,
    mismatched_ids: u64,
    malformed_flights: u64,
    panics_isolated: u64,
}

/// Where committed observations land.
///
/// The resident sink is the original in-memory path: one slot per site,
/// assembled into a [`MeasuredDataset`] when the run ends. The streaming
/// sink instead hands each observation to the chunked columnar store
/// ([`crate::store`]) and *drops it* — peak memory is bounded by the
/// scheduler's batch spread, not the world size, which is what lets
/// million-site runs fit in a laptop's RAM.
pub(crate) enum Sink {
    /// One in-memory slot per site.
    Resident(Vec<Option<SiteObservation>>),
    /// Observations flow into the chunk store; only a done-bitmap stays
    /// resident.
    Streaming {
        done: Vec<bool>,
        store: ChunkStoreWriter,
        store_error: Option<io::Error>,
    },
}

impl Sink {
    fn is_done(&self, site: usize) -> bool {
        match self {
            Sink::Resident(slots) => slots[site].is_some(),
            Sink::Streaming { done, .. } => done[site],
        }
    }
}

/// The shared result sink: completed observations scatter here per site,
/// and the journal (when enabled) records them in the same breath, so a
/// worker loss can never lose a committed site.
struct Collector {
    sink: Sink,
    journal: Option<JournalWriter>,
    journal_error: Option<io::Error>,
}

impl Collector {
    /// Commits one observation if the site is still unclaimed. Duplicate
    /// commits (a requeued batch re-measuring a site its dead worker had
    /// already committed is impossible, but a worker declared hung while
    /// actually alive can race its replacement) are idempotent: first
    /// write wins, and determinism makes both writes byte-identical.
    fn commit(&mut self, site: usize, obs: SiteObservation) -> bool {
        if self.sink.is_done(site) {
            return false;
        }
        if let Some(j) = self.journal.as_mut() {
            if let Err(e) = j.append(site, &obs) {
                // Keep measuring; surface the first journal error at the end.
                if self.journal_error.is_none() {
                    self.journal_error = Some(e);
                }
                self.journal = None;
            }
        }
        match &mut self.sink {
            Sink::Resident(slots) => slots[site] = Some(obs),
            Sink::Streaming {
                done,
                store,
                store_error,
            } => {
                done[site] = true;
                // Keep measuring past a store error (same policy as the
                // journal): the run completes, the first error surfaces.
                if store_error.is_none() {
                    if let Err(e) = store.commit(site, &obs) {
                        *store_error = Some(e);
                    }
                }
            }
        }
        true
    }
}

/// Measures every site of `world` against its deployment, returning the
/// enriched dataset.
///
/// Only the active-measurement outputs come from the network; `language`
/// is copied from the site record (the LangDetect substitute) and toplist
/// membership from the CrUX stand-in.
pub fn measure(world: &World, dep: &DeployedWorld, config: &PipelineConfig) -> MeasuredDataset {
    measure_with_stats(world, dep, config).0
}

/// Like [`measure`], but also reports throughput, cache, and supervision
/// accounting.
pub fn measure_with_stats(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
) -> (MeasuredDataset, MeasureStats) {
    let sink = Sink::Resident((0..world.sites.len()).map(|_| None).collect());
    let (sink, stats, _journal_err) = run_supervised(world, dep, config, None, sink, 0);
    (assemble_resident(world, sink), stats)
}

/// Like [`measure_with_stats`], but checkpoints every completed
/// observation to an append-only JSONL journal at `path` (created,
/// truncating any previous file). A crashed run can be continued with
/// [`resume_from_journal`].
pub fn measure_journaled(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
    path: &Path,
) -> io::Result<(MeasuredDataset, MeasureStats)> {
    let writer = JournalWriter::create(path, &world.label, world.sites.len())?;
    let sink = Sink::Resident((0..world.sites.len()).map(|_| None).collect());
    let (sink, stats, journal_err) = run_supervised(world, dep, config, Some(writer), sink, 0);
    match journal_err {
        Some(e) => Err(e),
        None => Ok((assemble_resident(world, sink), stats)),
    }
}

/// Continues a journaled run: journaled sites are restored verbatim and
/// skipped, the rest are measured and appended to the same journal.
///
/// Because per-site measurement is deterministic, the result is
/// byte-identical to the uninterrupted run — property-tested in
/// `tests/supervision.rs` by killing runs at random progress points.
pub fn resume_from_journal(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
    path: &Path,
) -> io::Result<(MeasuredDataset, MeasureStats)> {
    let loaded = journal::load(path)?;
    if loaded.label != world.label || loaded.sites != world.sites.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "journal is for '{}' ({} sites), not '{}' ({} sites)",
                loaded.label,
                loaded.sites,
                world.label,
                world.sites.len()
            ),
        ));
    }
    let writer = JournalWriter::append_loaded(path, &loaded)?;
    let mut slots: Vec<Option<SiteObservation>> = (0..world.sites.len()).map(|_| None).collect();
    let resumed = loaded.fill_slots(&mut slots);
    let (sink, stats, journal_err) = run_supervised(
        world,
        dep,
        config,
        Some(writer),
        Sink::Resident(slots),
        resumed,
    );
    match journal_err {
        Some(e) => Err(e),
        None => Ok((assemble_resident(world, sink), stats)),
    }
}

/// Like [`measure_with_stats`], but observations stream into a chunked
/// columnar store ([`crate::store`]) at `store_dir` instead of
/// accumulating in memory: each completed site is committed to its chunk
/// and dropped, so peak RSS is bounded by the scheduler's batch spread,
/// not the world size. The store is certified byte-identical to the
/// resident path's dataset (same determinism contract), and
/// `journal_path` optionally checkpoints the run for [`resume_streamed`].
pub fn measure_streamed(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
    store_dir: &Path,
    journal_path: Option<&Path>,
) -> io::Result<MeasureStats> {
    let n = world.sites.len();
    let store = ChunkStoreWriter::create(store_dir, &world.label, n, DEFAULT_CHUNK_SITES)?;
    let journal = journal_path
        .map(|p| JournalWriter::create(p, &world.label, n))
        .transpose()?;
    let sink = Sink::Streaming {
        done: vec![false; n],
        store,
        store_error: None,
    };
    let (sink, stats, journal_err) = run_supervised(world, dep, config, journal, sink, 0);
    finish_streaming(world, sink, journal_err, stats)
}

/// Continues a crashed [`measure_streamed`] run.
///
/// Three tiers of recovery compose here: chunks already durable on disk
/// keep their sites wholesale (no re-measurement, no journal needed);
/// sites journaled but caught in a torn or never-flushed chunk are
/// re-committed into the writer, healing the chunk to identical bytes;
/// everything else is re-measured. The finished store is byte-identical
/// to an uninterrupted run's.
pub fn resume_streamed(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
    store_dir: &Path,
    journal_path: &Path,
) -> io::Result<MeasureStats> {
    let n = world.sites.len();
    let loaded = journal::load(journal_path)?;
    if loaded.label != world.label || loaded.sites != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "journal is for '{}' ({} sites), not '{}' ({} sites)",
                loaded.label, loaded.sites, world.label, n
            ),
        ));
    }
    let mut store = ChunkStoreWriter::resume(store_dir, &world.label, n, DEFAULT_CHUNK_SITES)?;
    let mut done: Vec<bool> = (0..n).map(|i| store.site_durable(i)).collect();
    for (i, obs) in &loaded.records {
        if !done[*i] {
            store.commit(*i, obs)?;
            done[*i] = true;
        }
    }
    let resumed = done.iter().filter(|&&d| d).count();
    let writer = JournalWriter::append_loaded(journal_path, &loaded)?;
    let sink = Sink::Streaming {
        done,
        store,
        store_error: None,
    };
    let (sink, stats, journal_err) =
        run_supervised(world, dep, config, Some(writer), sink, resumed);
    finish_streaming(world, sink, journal_err, stats)
}

/// Shared tail of the streaming entry points: surface errors, fill any
/// never-measured site with the same deterministic internal failure the
/// resident assembly uses, and finalize the store.
pub(crate) fn finish_streaming(
    world: &World,
    sink: Sink,
    journal_err: Option<io::Error>,
    stats: MeasureStats,
) -> io::Result<MeasureStats> {
    let Sink::Streaming {
        done,
        mut store,
        store_error,
    } = sink
    else {
        unreachable!("streaming entry points build a streaming sink")
    };
    if let Some(e) = store_error {
        return Err(e);
    }
    if let Some(e) = journal_err {
        return Err(e);
    }
    for (i, was_done) in done.iter().enumerate() {
        if !was_done {
            let site = &world.sites[i];
            let obs = SiteObservation::internal_failure(
                &site.domain,
                &site.language,
                "internal: site never measured",
            );
            store.commit(i, &obs)?;
        }
    }
    store.finish()?;
    Ok(stats)
}

/// The supervised run underneath every public entry point.
///
/// The scope's main thread doubles as the supervisor: it scans worker
/// heartbeats and join handles every `tick`, requeues (or poisons) the
/// in-flight batch of a lost worker, respawns replacements up to the
/// budget, and fails leftover sites deterministically if the run would
/// otherwise deadlock with no workers left.
pub(crate) fn run_supervised(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
    journal: Option<JournalWriter>,
    sink: Sink,
    resumed: usize,
) -> (Sink, MeasureStats, Option<io::Error>) {
    let n = world.sites.len();
    let workers = config.workers.max(1);
    let sup_cfg = config.supervisor.clone();
    let chaos = config.chaos.clone().unwrap_or_default();
    let deadline_ms = sup_cfg.site_deadline.as_millis() as u64;

    let done_at_start: Vec<bool> = (0..n).map(|i| sink.is_done(i)).collect();
    let completed = AtomicUsize::new(resumed);
    let collector = Mutex::new(Collector {
        sink,
        journal,
        journal_error: None,
    });

    let shared = config.shared_cache.then(|| Arc::new(SharedDnsCache::new()));
    // Static mode assigns one contiguous shard per initial worker up
    // front, so the queue's fresh cursor is left empty; requeues flow
    // through it in both modes.
    let queue = match config.scheduling {
        Scheduling::Dynamic => WorkQueue::new(n, DYNAMIC_BATCH),
        Scheduling::Static => WorkQueue::new(0, DYNAMIC_BATCH),
    };
    let static_chunk = n.div_ceil(workers);

    let epoch = Instant::now();
    let mut sup_stats = SupervisionStats {
        sites_resumed: resumed as u64,
        ..SupervisionStats::default()
    };

    let reports: Vec<WorkerReport> = crossbeam::thread::scope(|scope| {
        let queue = &queue;
        let collector = &collector;
        let completed = &completed;
        let done_at_start: &[bool] = &done_at_start;
        let chaos = &chaos;

        let spawn_worker = |initial: Option<Batch>, slot: Arc<WorkerSlot>| {
            let cfg = config.clone();
            let shared = shared.clone();
            scope.spawn(move |_| {
                worker_main(
                    world,
                    dep,
                    &cfg,
                    shared,
                    chaos,
                    queue,
                    collector,
                    completed,
                    done_at_start,
                    &slot,
                    epoch,
                    n,
                    initial,
                )
            })
        };

        let mut worker_slots: Vec<Arc<WorkerSlot>> = Vec::new();
        let mut handles = Vec::new();
        let mut lost: Vec<bool> = Vec::new();
        let mut reports: Vec<WorkerReport> = Vec::new();
        for wi in 0..workers {
            let initial = match config.scheduling {
                Scheduling::Static => {
                    let lo = (wi * static_chunk).min(n);
                    let hi = (lo + static_chunk).min(n);
                    (lo < hi).then(|| Batch::new(lo, hi))
                }
                Scheduling::Dynamic => None,
            };
            let slot = Arc::new(WorkerSlot::default());
            slot.heartbeat
                .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
            worker_slots.push(Arc::clone(&slot));
            lost.push(false);
            handles.push(Some(spawn_worker(initial, slot)));
        }

        let mut respawns = 0usize;
        while completed.load(Ordering::Acquire) < n {
            let now_ms = epoch.elapsed().as_millis() as u64;
            let mut to_spawn = 0usize;
            for w in 0..handles.len() {
                if lost[w] {
                    continue;
                }
                let Some(handle) = &handles[w] else { continue };
                let slot = &worker_slots[w];
                let finished = handle.is_finished();
                let in_flight = *slot.in_flight.lock().unwrap_or_else(|e| e.into_inner());
                // A finished worker with nothing in flight exited cleanly;
                // an unfinished one with nothing in flight is between
                // batches. Neither is a loss.
                if in_flight.is_none() {
                    continue;
                }
                let stale =
                    now_ms.saturating_sub(slot.heartbeat.load(Ordering::Relaxed)) > deadline_ms;
                if !finished && !stale {
                    continue;
                }
                // Worker lost: thread died, or hung past the deadline.
                lost[w] = true;
                slot.canceled.store(true, Ordering::Relaxed);
                sup_stats.workers_lost += 1;
                let taken = slot
                    .in_flight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                if let Some(b) = taken.filter(|b| !b.is_empty()) {
                    if b.poison + 1 >= sup_cfg.poison_threshold {
                        let detail = format!(
                            "internal: site batch abandoned after killing {} workers",
                            b.poison + 1
                        );
                        sup_stats.sites_poisoned +=
                            fail_batch(world, collector, completed, done_at_start, &b, &detail);
                    } else {
                        queue.requeue(Batch {
                            poison: b.poison + 1,
                            ..b
                        });
                        sup_stats.batches_requeued += 1;
                    }
                }
                if finished {
                    if let Ok(r) = handles[w].take().expect("checked above").join() {
                        reports.push(r);
                    }
                }
                to_spawn += 1;
            }
            for _ in 0..to_spawn {
                if respawns >= sup_cfg.max_respawns {
                    break;
                }
                respawns += 1;
                sup_stats.workers_respawned += 1;
                let slot = Arc::new(WorkerSlot::default());
                slot.heartbeat
                    .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                worker_slots.push(Arc::clone(&slot));
                lost.push(false);
                handles.push(Some(spawn_worker(None, slot)));
            }
            // Deadlock guard: every worker is lost and the respawn budget
            // is spent, so nothing can drain the queue — fail the
            // remaining sites deterministically instead of spinning.
            let any_live = (0..handles.len())
                .any(|w| !lost[w] && handles[w].as_ref().is_some_and(|h| !h.is_finished()));
            if !any_live
                && respawns >= sup_cfg.max_respawns
                && completed.load(Ordering::Acquire) < n
            {
                for b in queue.drain() {
                    sup_stats.sites_poisoned += fail_batch(
                        world,
                        collector,
                        completed,
                        done_at_start,
                        &b,
                        "internal: no workers remaining",
                    );
                }
                break;
            }
            std::thread::sleep(sup_cfg.tick);
        }

        for slot in &worker_slots {
            slot.canceled.store(true, Ordering::Relaxed);
        }
        for handle in handles.iter_mut() {
            if let Some(h) = handle.take() {
                if let Ok(r) = h.join() {
                    reports.push(r);
                }
            }
        }
        reports
    })
    .unwrap_or_default();
    let wall = epoch.elapsed();

    let worker_busy: Vec<Duration> = reports.iter().map(|r| r.busy).collect();
    let wire_queries = reports.iter().map(|r| r.wire_queries).sum();
    let local_cache_hits = reports.iter().map(|r| r.local_cache_hits).sum();
    let shared_cache_hits = reports.iter().map(|r| r.shared_cache_hits).sum();
    let malformed_datagrams = reports.iter().map(|r| r.malformed_datagrams).sum();
    let mismatched_ids = reports.iter().map(|r| r.mismatched_ids).sum();
    let malformed_flights = reports.iter().map(|r| r.malformed_flights).sum();
    sup_stats.panics_isolated = reports.iter().map(|r| r.panics_isolated).sum();

    let mut coll = collector.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut journal_error = coll.journal_error.take();
    if let Some(j) = coll.journal.as_mut() {
        // Final durability point; an error here is as fatal as a mid-run one.
        if let Err(e) = j.sync() {
            journal_error.get_or_insert(e);
        }
    }

    let peak_idle_fraction = worker_busy
        .iter()
        .map(|b| 1.0 - b.as_secs_f64() / wall.as_secs_f64().max(f64::MIN_POSITIVE))
        .fold(0.0f64, f64::max)
        .clamp(0.0, 1.0);
    let stats = MeasureStats {
        wall,
        sites_per_sec: n as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        wire_queries,
        local_cache_hits,
        shared_cache_hits,
        worker_busy,
        peak_idle_fraction,
        malformed_datagrams,
        mismatched_ids,
        malformed_flights,
        supervision: sup_stats,
    };
    // One fold into the process-wide telemetry per run — the hot loop
    // itself stays free of shared counters.
    crate::metrics::record_run(n, &stats);
    (coll.sink, stats, journal_error)
}

/// Assembles the resident sink's slots into the final dataset. Every site
/// is accounted for: committed by a worker, restored from the journal, or
/// failed by the supervisor's poison/deadlock paths — and any slot still
/// empty becomes a deterministic internal failure.
fn assemble_resident(world: &World, sink: Sink) -> MeasuredDataset {
    let Sink::Resident(slots) = sink else {
        unreachable!("resident entry points build a resident sink")
    };
    let observations: Vec<SiteObservation> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| {
                let site = &world.sites[i];
                SiteObservation::internal_failure(
                    &site.domain,
                    &site.language,
                    "internal: site never measured",
                )
            })
        })
        .collect();
    MeasuredDataset {
        observations,
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    }
}

/// Records every not-yet-done site of a batch as an internal failure
/// (poison policy / no-workers-left path). Returns how many sites this
/// actually failed (already-committed sites are left untouched).
fn fail_batch(
    world: &World,
    collector: &Mutex<Collector>,
    completed: &AtomicUsize,
    done_at_start: &[bool],
    batch: &Batch,
    detail: &str,
) -> u64 {
    let mut failed = 0;
    let mut coll = collector.lock().unwrap_or_else(|e| e.into_inner());
    for (i, &done) in done_at_start
        .iter()
        .enumerate()
        .take(batch.hi)
        .skip(batch.lo)
    {
        if done {
            continue;
        }
        let site = &world.sites[i];
        let obs = SiteObservation::internal_failure(&site.domain, &site.language, detail);
        if coll.commit(i, obs) {
            completed.fetch_add(1, Ordering::AcqRel);
            failed += 1;
        }
    }
    failed
}

/// Renders a caught panic payload for the `Internal` failure detail.
fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// One worker thread: claim batches, measure each site under
/// `catch_unwind`, commit per site, publish heartbeats.
///
/// A worker never exits while work could still appear: a requeued batch
/// from a lost sibling may arrive after the fresh cursor runs dry, so
/// idle workers poll until the run completes or they are canceled.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    world: &World,
    dep: &DeployedWorld,
    cfg: &PipelineConfig,
    shared: Option<Arc<SharedDnsCache>>,
    chaos: &ChaosPlan,
    queue: &WorkQueue,
    collector: &Mutex<Collector>,
    completed: &AtomicUsize,
    done_at_start: &[bool],
    slot: &WorkerSlot,
    epoch: Instant,
    n: usize,
    mut initial: Option<Batch>,
) -> WorkerReport {
    let worker_start = Instant::now();
    let resolver_ep = dep.vantage(cfg.vantage);
    let scanner_ep = dep.vantage(cfg.vantage);
    let mut resolver = match shared {
        Some(cache) => IterativeResolver::with_shared_cache(
            resolver_ep,
            dep.roots.clone(),
            cfg.resolver.clone(),
            cache,
        ),
        None => IterativeResolver::new(resolver_ep, dep.roots.clone(), cfg.resolver.clone()),
    };
    let mut scanner = Scanner::new(scanner_ep, cfg.scanner.clone());
    let mut panics_isolated = 0u64;

    let report = |resolver: &IterativeResolver, scanner: &Scanner, panics: u64| {
        let rstats = resolver.stats();
        WorkerReport {
            busy: worker_start.elapsed(),
            wire_queries: rstats.wire_queries,
            local_cache_hits: rstats.local_cache_hits,
            shared_cache_hits: rstats.shared_cache_hits,
            malformed_datagrams: rstats.malformed_datagrams,
            mismatched_ids: rstats.mismatched_ids,
            malformed_flights: scanner.malformed_flights,
            panics_isolated: panics,
        }
    };

    'outer: loop {
        if slot.is_canceled() || completed.load(Ordering::Acquire) >= n {
            break;
        }
        let batch = initial
            .take()
            .or_else(|| queue.claim_requeued())
            .or_else(|| queue.claim_fresh());
        let Some(batch) = batch else {
            // Nothing claimable right now, but a requeue may still arrive.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        if batch.is_empty() {
            continue;
        }
        slot.heartbeat
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        *slot.in_flight.lock().unwrap_or_else(|e| e.into_inner()) = Some(batch);
        for (i, &done) in done_at_start
            .iter()
            .enumerate()
            .take(batch.hi)
            .skip(batch.lo)
        {
            if slot.is_canceled() {
                break 'outer;
            }
            slot.heartbeat
                .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
            if !done {
                if chaos.kills(i, batch.poison) {
                    // Simulated worker death: exit with the remainder of
                    // the batch still in flight for the supervisor to find.
                    return report(&resolver, &scanner, panics_isolated);
                }
                if chaos.hangs(i, batch.poison) {
                    // Simulated hang: stop heartbeating until the watchdog
                    // cancels us, then exit like a death.
                    while !slot.is_canceled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    break 'outer;
                }
                let site = &world.sites[i];
                let measured = catch_unwind(AssertUnwindSafe(|| {
                    if chaos.panics(i) {
                        panic!("chaos: injected panic for site {i}");
                    }
                    let mut obs = SiteObservation::blank(&site.domain, &site.language);
                    measure_one(
                        &mut obs,
                        &mut resolver,
                        &mut scanner,
                        &dep.pfx2as,
                        &dep.asorg,
                        &dep.geodb,
                        &dep.anycast,
                        &dep.caodb,
                    );
                    obs
                }));
                let obs = match measured {
                    Ok(obs) => obs,
                    Err(payload) => {
                        panics_isolated += 1;
                        SiteObservation::internal_failure(
                            &site.domain,
                            &site.language,
                            &format!("panic: {}", panic_message(payload.as_ref())),
                        )
                    }
                };
                let committed = collector
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .commit(i, obs);
                if committed {
                    completed.fetch_add(1, Ordering::AcqRel);
                }
            }
            // Advance past the committed site so a later loss requeues
            // only the remainder.
            if let Some(b) = slot
                .in_flight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_mut()
            {
                b.lo = i + 1;
            }
        }
        *slot.in_flight.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
    report(&resolver, &scanner, panics_isolated)
}

/// Maps a resolver error onto the normalized failure taxonomy; `prefix`
/// labels which lookup failed in the human-readable detail ("A", "NS").
fn resolve_failure(prefix: &str, e: &ResolveError) -> LayerError {
    let cause = match e {
        ResolveError::Timeout => FailureCause::Timeout,
        ResolveError::Network(_) => FailureCause::Unreachable,
        ResolveError::NxDomain(_) => FailureCause::NxDomain,
        ResolveError::NoData(_) => FailureCause::NoRecords,
        ResolveError::DepthExceeded => FailureCause::Malformed,
        ResolveError::ServFail => FailureCause::Refused,
    };
    LayerError::new(cause, format!("{prefix}: {e}"))
}

/// Maps a TLS scan error onto the normalized failure taxonomy.
fn scan_failure(e: &webdep_tls::ScanError) -> LayerError {
    use webdep_tls::ScanError;
    let cause = match e {
        ScanError::Timeout => FailureCause::Timeout,
        ScanError::Network(_) => FailureCause::Unreachable,
        ScanError::Alert(_) => FailureCause::Refused,
        ScanError::BadResponse => FailureCause::Malformed,
    };
    LayerError::new(cause, format!("TLS: {e}"))
}

/// Runs the whole pipeline for a single observation.
///
/// Every layer runs to completion and records its *own* failure — a DNS
/// timeout no longer masks a TLS refusal the way the old first-error-wins
/// summary did. The CA layer is `Skipped` (not failed) when hosting left
/// no IP to scan. The derived `error` summary is recomputed at the end.
#[allow(clippy::too_many_arguments)]
fn measure_one(
    obs: &mut SiteObservation,
    resolver: &mut IterativeResolver,
    scanner: &mut Scanner,
    pfx2as: &PrefixTable<u32>,
    asorg: &AsOrgDb,
    geodb: &GeoDb,
    anycast: &AnycastSet,
    caodb: &CaOwnerDb,
) {
    let Ok(name) = DomainName::parse(&obs.domain) else {
        obs.hosting_error = Some(LayerError::new(
            FailureCause::Malformed,
            "unparseable domain",
        ));
        obs.dns_error = Some(LayerError::new(FailureCause::Skipped, "domain unparseable"));
        obs.ca_error = Some(LayerError::new(FailureCause::Skipped, "domain unparseable"));
        obs.derive_error_summary();
        return;
    };

    // Hosting: A record -> serving IP -> AS -> org; geo + anycast.
    match resolver.resolve_a(&name) {
        Ok(addrs) if !addrs.is_empty() => {
            let ip = addrs[0];
            obs.hosting_ip = Some(ip);
            if let Some((&asn, _)) = pfx2as.lookup(ip) {
                obs.hosting_asn = Some(asn);
                if let Some(org) = asorg.org_of_asn(asn) {
                    obs.hosting_org = Some(org.org_id);
                    obs.hosting_org_country = Some(org.country.clone());
                }
            }
            obs.hosting_ip_country = geodb.country_of(ip).map(str::to_string);
            obs.hosting_anycast = anycast.contains(ip);
        }
        Ok(_) => {
            obs.hosting_error = Some(LayerError::new(FailureCause::NoRecords, "empty A answer"))
        }
        Err(e) => obs.hosting_error = Some(resolve_failure("A", &e)),
    }

    // DNS: NS names -> first NS address -> AS -> org.
    match resolver.resolve_ns(&name) {
        Ok(ns_names) if !ns_names.is_empty() => {
            obs.ns_names = ns_names.iter().map(|n| n.to_string()).collect();
            let mut resolved = None;
            for ns in &ns_names {
                match resolver.resolve_a(ns) {
                    Ok(addrs) if !addrs.is_empty() => {
                        resolved = Some(addrs[0]);
                        break;
                    }
                    _ => continue,
                }
            }
            if let Some(ip) = resolved {
                obs.dns_ip = Some(ip);
                if let Some((&asn, _)) = pfx2as.lookup(ip) {
                    obs.dns_asn = Some(asn);
                    if let Some(org) = asorg.org_of_asn(asn) {
                        obs.dns_org = Some(org.org_id);
                        obs.dns_org_country = Some(org.country.clone());
                    }
                }
                obs.dns_ip_country = geodb.country_of(ip).map(str::to_string);
                obs.dns_anycast = anycast.contains(ip);
            } else {
                obs.dns_error = Some(LayerError::new(
                    FailureCause::NoRecords,
                    "no nameserver address",
                ));
            }
        }
        Ok(_) => obs.dns_error = Some(LayerError::new(FailureCause::NoRecords, "empty NS answer")),
        // A zone with no visible NS records is a data gap, not a failure.
        Err(ResolveError::NoData(_)) => {}
        Err(e) => obs.dns_error = Some(resolve_failure("NS", &e)),
    }

    // TLS: leaf certificate -> issuer -> CA owner.
    match obs.hosting_ip {
        None => {
            obs.ca_error = Some(LayerError::new(
                FailureCause::Skipped,
                "no serving IP to scan",
            ))
        }
        Some(ip) => match scanner.scan(ip, &obs.domain) {
            Ok(chain) => match chain.leaf() {
                Some(leaf) => {
                    if let Some(owner) = caodb.owner_of_issuer(leaf.issuer_id) {
                        obs.ca_owner = Some(owner.owner_id);
                        obs.ca_owner_country = Some(owner.country.clone());
                    } else {
                        obs.ca_error = Some(LayerError::new(
                            FailureCause::UnknownIssuer,
                            "unknown issuer",
                        ));
                    }
                }
                None => {
                    obs.ca_error = Some(LayerError::new(
                        FailureCause::Malformed,
                        "empty certificate chain",
                    ))
                }
            },
            Err(e) => obs.ca_error = Some(scan_failure(&e)),
        },
    }

    obs.derive_error_summary();
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdep_webgen::{DeployConfig, WorldConfig};

    #[test]
    fn measures_tiny_world_accurately() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(
            &world,
            &dep,
            &PipelineConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(ds.observations.len(), world.sites.len());
        let rate = ds.success_rate();
        assert!(rate > 0.99, "success rate {rate}");

        // Measurement must agree with ground truth on org / CA / DNS ids.
        let mut checked = 0;
        for (i, site) in world.sites.iter().enumerate().step_by(53) {
            let obs = &ds.observations[i];
            assert_eq!(obs.hosting_org, Some(site.hosting), "{}", site.domain);
            assert_eq!(obs.dns_org, Some(site.dns), "{}", site.domain);
            assert_eq!(obs.ca_owner, Some(site.ca), "{}", site.domain);
            assert_eq!(
                obs.tld,
                world.universe.tld(site.tld).label,
                "{}",
                site.domain
            );
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn anycast_flag_set_for_cloudflare_sites() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        let cf = world.universe.provider_by_name("Cloudflare").unwrap();
        let cf_obs: Vec<&SiteObservation> = ds
            .observations
            .iter()
            .zip(&world.sites)
            .filter(|(_, s)| s.hosting == cf)
            .map(|(o, _)| o)
            .collect();
        assert!(!cf_obs.is_empty());
        assert!(cf_obs.iter().all(|o| o.hosting_anycast));
    }
}
