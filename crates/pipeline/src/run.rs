//! The measurement run: parallel resolve + scan + enrich.

use crate::dataset::{MeasuredDataset, SiteObservation};
use webdep_dns::resolver::{IterativeResolver, ResolveError, ResolverConfig};
use webdep_dns::DomainName;
use webdep_geodb::{AnycastSet, AsOrgDb, CaOwnerDb, GeoDb, PrefixTable};
use webdep_tls::scanner::{Scanner, ScannerConfig};
use webdep_webgen::{Continent, DeployedWorld, World};

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker threads (each gets its own resolver cache and scanner).
    pub workers: usize,
    /// Vantage continent for the primary measurement (the paper measures
    /// from Stanford: North America).
    pub vantage: Continent,
    /// Resolver tuning.
    pub resolver: ResolverConfig,
    /// Scanner tuning.
    pub scanner: ScannerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 8,
            vantage: Continent::NorthAmerica,
            resolver: ResolverConfig::default(),
            scanner: ScannerConfig::default(),
        }
    }
}

/// Measures every site of `world` against its deployment, returning the
/// enriched dataset.
///
/// Only the active-measurement outputs come from the network; `language`
/// is copied from the site record (the LangDetect substitute) and toplist
/// membership from the CrUX stand-in.
pub fn measure(world: &World, dep: &DeployedWorld, config: &PipelineConfig) -> MeasuredDataset {
    let n = world.sites.len();
    let workers = config.workers.max(1);
    let mut observations: Vec<SiteObservation> = world
        .sites
        .iter()
        .map(|s| SiteObservation::blank(&s.domain, &s.language))
        .collect();

    // Shard sites across workers; each worker owns a disjoint slice.
    let chunk = n.div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (wi, slice) in observations.chunks_mut(chunk).enumerate() {
            let offset = wi * chunk;
            let cfg = config.clone();
            scope.spawn(move |_| {
                let resolver_ep = dep.vantage(cfg.vantage);
                let scanner_ep = dep.vantage(cfg.vantage);
                let mut resolver =
                    IterativeResolver::new(resolver_ep, dep.roots.clone(), cfg.resolver.clone());
                let mut scanner = Scanner::new(scanner_ep, cfg.scanner.clone());
                for (i, obs) in slice.iter_mut().enumerate() {
                    let _site_idx = offset + i;
                    measure_one(
                        obs,
                        &mut resolver,
                        &mut scanner,
                        &dep.pfx2as,
                        &dep.asorg,
                        &dep.geodb,
                        &dep.anycast,
                        &dep.caodb,
                    );
                }
            });
        }
    })
    .expect("pipeline workers do not panic");

    MeasuredDataset {
        observations,
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    }
}

/// Runs the whole pipeline for a single observation.
#[allow(clippy::too_many_arguments)]
fn measure_one(
    obs: &mut SiteObservation,
    resolver: &mut IterativeResolver,
    scanner: &mut Scanner,
    pfx2as: &PrefixTable<u32>,
    asorg: &AsOrgDb,
    geodb: &GeoDb,
    anycast: &AnycastSet,
    caodb: &CaOwnerDb,
) {
    let Ok(name) = DomainName::parse(&obs.domain) else {
        obs.error = Some("unparseable domain".to_string());
        return;
    };

    // Hosting: A record -> serving IP -> AS -> org; geo + anycast.
    match resolver.resolve_a(&name) {
        Ok(addrs) if !addrs.is_empty() => {
            let ip = addrs[0];
            obs.hosting_ip = Some(ip);
            if let Some((&asn, _)) = pfx2as.lookup(ip) {
                obs.hosting_asn = Some(asn);
                if let Some(org) = asorg.org_of_asn(asn) {
                    obs.hosting_org = Some(org.org_id);
                    obs.hosting_org_country = Some(org.country.clone());
                }
            }
            obs.hosting_ip_country = geodb.country_of(ip).map(str::to_string);
            obs.hosting_anycast = anycast.contains(ip);
        }
        Ok(_) => obs.error = Some("empty A answer".to_string()),
        Err(e) => obs.error = Some(format!("A: {e}")),
    }

    // DNS: NS names -> first NS address -> AS -> org.
    match resolver.resolve_ns(&name) {
        Ok(ns_names) if !ns_names.is_empty() => {
            obs.ns_names = ns_names.iter().map(|n| n.to_string()).collect();
            let mut resolved = None;
            for ns in &ns_names {
                match resolver.resolve_a(ns) {
                    Ok(addrs) if !addrs.is_empty() => {
                        resolved = Some(addrs[0]);
                        break;
                    }
                    _ => continue,
                }
            }
            if let Some(ip) = resolved {
                obs.dns_ip = Some(ip);
                if let Some((&asn, _)) = pfx2as.lookup(ip) {
                    obs.dns_asn = Some(asn);
                    if let Some(org) = asorg.org_of_asn(asn) {
                        obs.dns_org = Some(org.org_id);
                        obs.dns_org_country = Some(org.country.clone());
                    }
                }
                obs.dns_ip_country = geodb.country_of(ip).map(str::to_string);
                obs.dns_anycast = anycast.contains(ip);
            } else if obs.error.is_none() {
                obs.error = Some("no nameserver address".to_string());
            }
        }
        Ok(_) => {
            if obs.error.is_none() {
                obs.error = Some("empty NS answer".to_string());
            }
        }
        Err(ResolveError::NoData(_)) => {}
        Err(e) => {
            if obs.error.is_none() {
                obs.error = Some(format!("NS: {e}"));
            }
        }
    }

    // TLS: leaf certificate -> issuer -> CA owner.
    if let Some(ip) = obs.hosting_ip {
        match scanner.scan(ip, &obs.domain) {
            Ok(chain) => {
                if let Some(leaf) = chain.leaf() {
                    if let Some(owner) = caodb.owner_of_issuer(leaf.issuer_id) {
                        obs.ca_owner = Some(owner.owner_id);
                        obs.ca_owner_country = Some(owner.country.clone());
                    } else if obs.error.is_none() {
                        obs.error = Some("unknown issuer".to_string());
                    }
                }
            }
            Err(e) => {
                if obs.error.is_none() {
                    obs.error = Some(format!("TLS: {e}"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdep_webgen::{DeployConfig, WorldConfig};

    #[test]
    fn measures_tiny_world_accurately() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(
            &world,
            &dep,
            &PipelineConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(ds.observations.len(), world.sites.len());
        let rate = ds.success_rate();
        assert!(rate > 0.99, "success rate {rate}");

        // Measurement must agree with ground truth on org / CA / DNS ids.
        let mut checked = 0;
        for (i, site) in world.sites.iter().enumerate().step_by(53) {
            let obs = &ds.observations[i];
            assert_eq!(obs.hosting_org, Some(site.hosting), "{}", site.domain);
            assert_eq!(obs.dns_org, Some(site.dns), "{}", site.domain);
            assert_eq!(obs.ca_owner, Some(site.ca), "{}", site.domain);
            assert_eq!(obs.tld, world.universe.tld(site.tld).label, "{}", site.domain);
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn anycast_flag_set_for_cloudflare_sites() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        let cf = world.universe.provider_by_name("Cloudflare").unwrap();
        let cf_obs: Vec<&SiteObservation> = ds
            .observations
            .iter()
            .zip(&world.sites)
            .filter(|(_, s)| s.hosting == cf)
            .map(|(o, _)| o)
            .collect();
        assert!(!cf_obs.is_empty());
        assert!(cf_obs.iter().all(|o| o.hosting_anycast));
    }
}
