//! The measurement run: parallel resolve + scan + enrich.
//!
//! Two scheduler/caching knobs govern how the run scales:
//!
//! * [`Scheduling::Dynamic`] (the default) feeds workers from a shared
//!   atomic cursor in small batches, so a worker that lands on slow sites
//!   does not leave the rest of its statically assigned shard idle.
//!   [`Scheduling::Static`] keeps the original contiguous-shard split.
//! * `shared_cache` layers one process-wide [`SharedDnsCache`] under every
//!   worker's private resolver cache, so the delegation tier (root, TLD
//!   referrals) is walked roughly once per run instead of once per worker.
//!
//! Both knobs change only *when and where* work happens, never the result:
//! `measure` returns a byte-identical dataset for any worker count,
//! scheduling mode, and cache setting.

use crate::dataset::{FailureCause, LayerError, MeasuredDataset, SiteObservation};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webdep_dns::resolver::{IterativeResolver, ResolveError, ResolverConfig};
use webdep_dns::shared_cache::SharedDnsCache;
use webdep_dns::DomainName;
use webdep_geodb::{AnycastSet, AsOrgDb, CaOwnerDb, GeoDb, PrefixTable};
use webdep_tls::scanner::{Scanner, ScannerConfig};
use webdep_webgen::{Continent, DeployedWorld, World};

/// How sites are handed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Pre-split the site list into one contiguous shard per worker.
    Static,
    /// Workers pull fixed-size batches from a shared atomic cursor.
    #[default]
    Dynamic,
}

/// Pipeline parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Worker threads (each gets its own resolver cache and scanner).
    pub workers: usize,
    /// Vantage continent for the primary measurement (the paper measures
    /// from Stanford: North America).
    pub vantage: Continent,
    /// Resolver tuning.
    pub resolver: ResolverConfig,
    /// Scanner tuning.
    pub scanner: ScannerConfig,
    /// Work distribution strategy.
    pub scheduling: Scheduling,
    /// Share one delegation/answer cache across all workers.
    pub shared_cache: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 8,
            vantage: Continent::NorthAmerica,
            resolver: ResolverConfig::default(),
            scanner: ScannerConfig::default(),
            scheduling: Scheduling::Dynamic,
            shared_cache: true,
        }
    }
}

/// Sites per pull from the dynamic work queue: small enough to balance
/// slow sites across workers, large enough that the cursor is cold.
const DYNAMIC_BATCH: usize = 16;

/// Throughput and cache accounting for one [`measure_with_stats`] run.
#[derive(Debug, Clone)]
pub struct MeasureStats {
    /// Wall-clock duration of the parallel section.
    pub wall: Duration,
    /// Sites measured per wall-clock second.
    pub sites_per_sec: f64,
    /// DNS queries that actually hit the simulated wire (all workers).
    pub wire_queries: u64,
    /// Answers served from workers' private resolver caches.
    pub local_cache_hits: u64,
    /// Answers/delegations served from the shared cache tier.
    pub shared_cache_hits: u64,
    /// Per-worker busy time (from spawn to last site finished).
    pub worker_busy: Vec<Duration>,
    /// Largest fraction of the wall clock any worker spent idle, i.e. done
    /// but waiting for stragglers. Static sharding drives this up; the
    /// dynamic queue keeps it near zero.
    pub peak_idle_fraction: f64,
    /// DNS replies discarded as undecodable (truncated/corrupt datagrams),
    /// summed over all workers.
    pub malformed_datagrams: u64,
    /// DNS replies discarded for a transaction-id mismatch (garbled or
    /// stale datagrams), summed over all workers.
    pub mismatched_ids: u64,
    /// TLS server flights discarded as malformed, summed over all workers.
    pub malformed_flights: u64,
}

/// What one worker brings home: observations tagged with their site index,
/// plus accounting.
struct WorkerReport {
    observations: Vec<(usize, SiteObservation)>,
    busy: Duration,
    wire_queries: u64,
    local_cache_hits: u64,
    shared_cache_hits: u64,
    malformed_datagrams: u64,
    mismatched_ids: u64,
    malformed_flights: u64,
}

/// Measures every site of `world` against its deployment, returning the
/// enriched dataset.
///
/// Only the active-measurement outputs come from the network; `language`
/// is copied from the site record (the LangDetect substitute) and toplist
/// membership from the CrUX stand-in.
pub fn measure(world: &World, dep: &DeployedWorld, config: &PipelineConfig) -> MeasuredDataset {
    measure_with_stats(world, dep, config).0
}

/// Like [`measure`], but also reports throughput and cache accounting.
pub fn measure_with_stats(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
) -> (MeasuredDataset, MeasureStats) {
    let n = world.sites.len();
    let workers = config.workers.max(1);
    let shared = config
        .shared_cache
        .then(|| Arc::new(SharedDnsCache::new()));
    let static_chunk = n.div_ceil(workers);
    let cursor = AtomicUsize::new(0);

    let start = Instant::now();
    let reports: Vec<WorkerReport> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|wi| {
                let cfg = config.clone();
                let shared = shared.clone();
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let worker_start = Instant::now();
                    let resolver_ep = dep.vantage(cfg.vantage);
                    let scanner_ep = dep.vantage(cfg.vantage);
                    let mut resolver = match shared {
                        Some(cache) => IterativeResolver::with_shared_cache(
                            resolver_ep,
                            dep.roots.clone(),
                            cfg.resolver.clone(),
                            cache,
                        ),
                        None => IterativeResolver::new(
                            resolver_ep,
                            dep.roots.clone(),
                            cfg.resolver.clone(),
                        ),
                    };
                    let mut scanner = Scanner::new(scanner_ep, cfg.scanner.clone());
                    let mut observations: Vec<(usize, SiteObservation)> = Vec::new();

                    // Claim the next batch of site indices, per the mode.
                    let mut static_done = false;
                    let mut next_batch = || -> std::ops::Range<usize> {
                        match cfg.scheduling {
                            Scheduling::Static => {
                                // Yield this worker's shard once, then stop.
                                if static_done {
                                    return n..n;
                                }
                                static_done = true;
                                let lo = (wi * static_chunk).min(n);
                                let hi = (lo + static_chunk).min(n);
                                lo..hi
                            }
                            Scheduling::Dynamic => {
                                let lo = cursor.fetch_add(DYNAMIC_BATCH, Ordering::Relaxed).min(n);
                                let hi = (lo + DYNAMIC_BATCH).min(n);
                                lo..hi
                            }
                        }
                    };
                    loop {
                        let batch = next_batch();
                        if batch.is_empty() {
                            break;
                        }
                        for i in batch {
                            let site = &world.sites[i];
                            let mut obs = SiteObservation::blank(&site.domain, &site.language);
                            measure_one(
                                &mut obs,
                                &mut resolver,
                                &mut scanner,
                                &dep.pfx2as,
                                &dep.asorg,
                                &dep.geodb,
                                &dep.anycast,
                                &dep.caodb,
                            );
                            observations.push((i, obs));
                        }
                    }

                    let rstats = resolver.stats();
                    WorkerReport {
                        observations,
                        busy: worker_start.elapsed(),
                        wire_queries: rstats.wire_queries,
                        local_cache_hits: rstats.local_cache_hits,
                        shared_cache_hits: rstats.shared_cache_hits,
                        malformed_datagrams: rstats.malformed_datagrams,
                        mismatched_ids: rstats.mismatched_ids,
                        malformed_flights: scanner.malformed_flights,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pipeline workers do not panic"))
            .collect()
    })
    .expect("pipeline scope does not panic");
    let wall = start.elapsed();

    let worker_busy: Vec<Duration> = reports.iter().map(|r| r.busy).collect();
    let wire_queries = reports.iter().map(|r| r.wire_queries).sum();
    let local_cache_hits = reports.iter().map(|r| r.local_cache_hits).sum();
    let shared_cache_hits = reports.iter().map(|r| r.shared_cache_hits).sum();
    let malformed_datagrams = reports.iter().map(|r| r.malformed_datagrams).sum();
    let mismatched_ids = reports.iter().map(|r| r.mismatched_ids).sum();
    let malformed_flights = reports.iter().map(|r| r.malformed_flights).sum();

    // Scatter worker results back into site order.
    let mut slots: Vec<Option<SiteObservation>> = (0..n).map(|_| None).collect();
    for report in reports {
        for (i, obs) in report.observations {
            slots[i] = Some(obs);
        }
    }
    let observations: Vec<SiteObservation> = slots
        .into_iter()
        .map(|s| s.expect("every site measured exactly once"))
        .collect();

    let peak_idle_fraction = worker_busy
        .iter()
        .map(|b| 1.0 - b.as_secs_f64() / wall.as_secs_f64().max(f64::MIN_POSITIVE))
        .fold(0.0f64, f64::max)
        .clamp(0.0, 1.0);
    let stats = MeasureStats {
        wall,
        sites_per_sec: n as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        wire_queries,
        local_cache_hits,
        shared_cache_hits,
        worker_busy,
        peak_idle_fraction,
        malformed_datagrams,
        mismatched_ids,
        malformed_flights,
    };

    let dataset = MeasuredDataset {
        observations,
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    };
    (dataset, stats)
}

/// Maps a resolver error onto the normalized failure taxonomy; `prefix`
/// labels which lookup failed in the human-readable detail ("A", "NS").
fn resolve_failure(prefix: &str, e: &ResolveError) -> LayerError {
    let cause = match e {
        ResolveError::Timeout => FailureCause::Timeout,
        ResolveError::Network(_) => FailureCause::Unreachable,
        ResolveError::NxDomain(_) => FailureCause::NxDomain,
        ResolveError::NoData(_) => FailureCause::NoRecords,
        ResolveError::DepthExceeded => FailureCause::Malformed,
        ResolveError::ServFail => FailureCause::Refused,
    };
    LayerError::new(cause, format!("{prefix}: {e}"))
}

/// Maps a TLS scan error onto the normalized failure taxonomy.
fn scan_failure(e: &webdep_tls::ScanError) -> LayerError {
    use webdep_tls::ScanError;
    let cause = match e {
        ScanError::Timeout => FailureCause::Timeout,
        ScanError::Network(_) => FailureCause::Unreachable,
        ScanError::Alert(_) => FailureCause::Refused,
        ScanError::BadResponse => FailureCause::Malformed,
    };
    LayerError::new(cause, format!("TLS: {e}"))
}

/// Runs the whole pipeline for a single observation.
///
/// Every layer runs to completion and records its *own* failure — a DNS
/// timeout no longer masks a TLS refusal the way the old first-error-wins
/// summary did. The CA layer is `Skipped` (not failed) when hosting left
/// no IP to scan. The derived `error` summary is recomputed at the end.
#[allow(clippy::too_many_arguments)]
fn measure_one(
    obs: &mut SiteObservation,
    resolver: &mut IterativeResolver,
    scanner: &mut Scanner,
    pfx2as: &PrefixTable<u32>,
    asorg: &AsOrgDb,
    geodb: &GeoDb,
    anycast: &AnycastSet,
    caodb: &CaOwnerDb,
) {
    let Ok(name) = DomainName::parse(&obs.domain) else {
        obs.hosting_error = Some(LayerError::new(
            FailureCause::Malformed,
            "unparseable domain",
        ));
        obs.dns_error = Some(LayerError::new(FailureCause::Skipped, "domain unparseable"));
        obs.ca_error = Some(LayerError::new(FailureCause::Skipped, "domain unparseable"));
        obs.derive_error_summary();
        return;
    };

    // Hosting: A record -> serving IP -> AS -> org; geo + anycast.
    match resolver.resolve_a(&name) {
        Ok(addrs) if !addrs.is_empty() => {
            let ip = addrs[0];
            obs.hosting_ip = Some(ip);
            if let Some((&asn, _)) = pfx2as.lookup(ip) {
                obs.hosting_asn = Some(asn);
                if let Some(org) = asorg.org_of_asn(asn) {
                    obs.hosting_org = Some(org.org_id);
                    obs.hosting_org_country = Some(org.country.clone());
                }
            }
            obs.hosting_ip_country = geodb.country_of(ip).map(str::to_string);
            obs.hosting_anycast = anycast.contains(ip);
        }
        Ok(_) => {
            obs.hosting_error = Some(LayerError::new(FailureCause::NoRecords, "empty A answer"))
        }
        Err(e) => obs.hosting_error = Some(resolve_failure("A", &e)),
    }

    // DNS: NS names -> first NS address -> AS -> org.
    match resolver.resolve_ns(&name) {
        Ok(ns_names) if !ns_names.is_empty() => {
            obs.ns_names = ns_names.iter().map(|n| n.to_string()).collect();
            let mut resolved = None;
            for ns in &ns_names {
                match resolver.resolve_a(ns) {
                    Ok(addrs) if !addrs.is_empty() => {
                        resolved = Some(addrs[0]);
                        break;
                    }
                    _ => continue,
                }
            }
            if let Some(ip) = resolved {
                obs.dns_ip = Some(ip);
                if let Some((&asn, _)) = pfx2as.lookup(ip) {
                    obs.dns_asn = Some(asn);
                    if let Some(org) = asorg.org_of_asn(asn) {
                        obs.dns_org = Some(org.org_id);
                        obs.dns_org_country = Some(org.country.clone());
                    }
                }
                obs.dns_ip_country = geodb.country_of(ip).map(str::to_string);
                obs.dns_anycast = anycast.contains(ip);
            } else {
                obs.dns_error = Some(LayerError::new(
                    FailureCause::NoRecords,
                    "no nameserver address",
                ));
            }
        }
        Ok(_) => {
            obs.dns_error = Some(LayerError::new(FailureCause::NoRecords, "empty NS answer"))
        }
        // A zone with no visible NS records is a data gap, not a failure.
        Err(ResolveError::NoData(_)) => {}
        Err(e) => obs.dns_error = Some(resolve_failure("NS", &e)),
    }

    // TLS: leaf certificate -> issuer -> CA owner.
    match obs.hosting_ip {
        None => {
            obs.ca_error = Some(LayerError::new(
                FailureCause::Skipped,
                "no serving IP to scan",
            ))
        }
        Some(ip) => match scanner.scan(ip, &obs.domain) {
            Ok(chain) => match chain.leaf() {
                Some(leaf) => {
                    if let Some(owner) = caodb.owner_of_issuer(leaf.issuer_id) {
                        obs.ca_owner = Some(owner.owner_id);
                        obs.ca_owner_country = Some(owner.country.clone());
                    } else {
                        obs.ca_error = Some(LayerError::new(
                            FailureCause::UnknownIssuer,
                            "unknown issuer",
                        ));
                    }
                }
                None => {
                    obs.ca_error = Some(LayerError::new(
                        FailureCause::Malformed,
                        "empty certificate chain",
                    ))
                }
            },
            Err(e) => obs.ca_error = Some(scan_failure(&e)),
        },
    }

    obs.derive_error_summary();
}

#[cfg(test)]
mod tests {
    use super::*;
    use webdep_webgen::{DeployConfig, WorldConfig};

    #[test]
    fn measures_tiny_world_accurately() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(
            &world,
            &dep,
            &PipelineConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(ds.observations.len(), world.sites.len());
        let rate = ds.success_rate();
        assert!(rate > 0.99, "success rate {rate}");

        // Measurement must agree with ground truth on org / CA / DNS ids.
        let mut checked = 0;
        for (i, site) in world.sites.iter().enumerate().step_by(53) {
            let obs = &ds.observations[i];
            assert_eq!(obs.hosting_org, Some(site.hosting), "{}", site.domain);
            assert_eq!(obs.dns_org, Some(site.dns), "{}", site.domain);
            assert_eq!(obs.ca_owner, Some(site.ca), "{}", site.domain);
            assert_eq!(obs.tld, world.universe.tld(site.tld).label, "{}", site.domain);
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn anycast_flag_set_for_cloudflare_sites() {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        let cf = world.universe.provider_by_name("Cloudflare").unwrap();
        let cf_obs: Vec<&SiteObservation> = ds
            .observations
            .iter()
            .zip(&world.sites)
            .filter(|(_, s)| s.hosting == cf)
            .map(|(o, _)| o)
            .collect();
        assert!(!cf_obs.is_empty());
        assert!(cf_obs.iter().all(|o| o.hosting_anycast));
    }
}
