//! # webdep-pipeline
//!
//! The measurement pipeline (§3.4): resolve every site, TLS-scan the
//! serving IP, and enrich with the geolocation / pfx2as / AS-org / anycast
//! / CA-ownership databases — against the *deployed* simulated world, so
//! every number in the analysis is recovered by measurement rather than
//! read from generator ground truth.
//!
//! The paper's toolchain maps to: ZDNS → [`webdep_dns::IterativeResolver`],
//! ZGrab2 → [`webdep_tls::Scanner`], NetAcuity → `GeoDb`, Routeviews
//! pfx2as → `PrefixTable`, CAIDA AS-to-Org → `AsOrgDb`, bgp.tools →
//! `AnycastSet`, CCADB → `CaOwnerDb`, and LangDetect → the site's language
//! tag (carried on the generated site, since there is no real content to
//! classify).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod delta;
pub mod journal;
pub mod metrics;
pub mod run;
pub mod store;
pub mod supervisor;
pub mod vantage;

pub use dataset::{FailureCause, FailureTaxonomy, LayerError, MeasuredDataset, SiteObservation};
pub use delta::{measure_delta, DeltaStats};
pub use journal::JournalWriter;
pub use run::{
    measure, measure_journaled, measure_streamed, measure_with_stats, resume_from_journal,
    resume_streamed, MeasureStats, PipelineConfig, Scheduling,
};
pub use store::{
    ChunkStore, ChunkStoreWriter, CompactStats, DecodedChunk, FsckReport, DEFAULT_CHUNK_SITES,
};
pub use supervisor::{ChaosPlan, SupervisionStats, SupervisorConfig};
pub use vantage::resolve_hosting_orgs;
