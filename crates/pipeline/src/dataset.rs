//! The measured dataset: one enriched observation per site.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Everything the pipeline learned about one website.
///
/// Organization / owner ids refer to the world's universe (the analysis
/// resolves names through it); `None` fields record measurement failures,
/// which the analysis reports rather than hiding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteObservation {
    /// The measured domain.
    pub domain: String,
    /// TLD label extracted from the domain.
    pub tld: String,
    /// Content language (LangDetect stand-in).
    pub language: String,

    /// Serving IP from the A lookup.
    pub hosting_ip: Option<Ipv4Addr>,
    /// Origin ASN of the serving IP (pfx2as).
    pub hosting_asn: Option<u32>,
    /// Owning organization id (AS-to-Org).
    pub hosting_org: Option<u32>,
    /// Organization HQ country.
    pub hosting_org_country: Option<String>,
    /// Country the serving IP geolocates to.
    pub hosting_ip_country: Option<String>,
    /// Whether the serving IP is in an anycast prefix.
    pub hosting_anycast: bool,

    /// Nameserver host names from the NS lookup.
    pub ns_names: Vec<String>,
    /// Address of the first resolvable nameserver.
    pub dns_ip: Option<Ipv4Addr>,
    /// Origin ASN of the nameserver IP.
    pub dns_asn: Option<u32>,
    /// DNS provider organization id.
    pub dns_org: Option<u32>,
    /// DNS organization HQ country.
    pub dns_org_country: Option<String>,
    /// Country the nameserver IP geolocates to.
    pub dns_ip_country: Option<String>,
    /// Whether the nameserver IP is anycast.
    pub dns_anycast: bool,

    /// CA owner id from the TLS leaf certificate (CCADB join).
    pub ca_owner: Option<u32>,
    /// CA owner HQ country.
    pub ca_owner_country: Option<String>,

    /// First error encountered, if any step failed.
    pub error: Option<String>,
}

impl SiteObservation {
    /// A blank observation for a domain (pre-measurement).
    pub fn blank(domain: &str, language: &str) -> Self {
        let tld = domain.rsplit('.').next().unwrap_or("").to_string();
        SiteObservation {
            domain: domain.to_string(),
            tld,
            language: language.to_string(),
            hosting_ip: None,
            hosting_asn: None,
            hosting_org: None,
            hosting_org_country: None,
            hosting_ip_country: None,
            hosting_anycast: false,
            ns_names: Vec::new(),
            dns_ip: None,
            dns_asn: None,
            dns_org: None,
            dns_org_country: None,
            dns_ip_country: None,
            dns_anycast: false,
            ca_owner: None,
            ca_owner_country: None,
            error: None,
        }
    }

    /// True when every layer was measured successfully.
    pub fn complete(&self) -> bool {
        self.hosting_org.is_some() && self.dns_org.is_some() && self.ca_owner.is_some()
    }
}

/// The full measured dataset, aligned with the generating world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredDataset {
    /// One observation per world site (same indexing as `World::sites`).
    pub observations: Vec<SiteObservation>,
    /// Country toplists in `COUNTRIES` order: indices into `observations`.
    pub toplists: Vec<Vec<u32>>,
    /// The global top list (indices into `observations`).
    pub global_top: Vec<u32>,
    /// Snapshot label copied from the world.
    pub label: String,
}

impl MeasuredDataset {
    /// Fraction of toplist-referenced observations that measured cleanly.
    pub fn success_rate(&self) -> f64 {
        let mut referenced = std::collections::HashSet::new();
        for t in &self.toplists {
            referenced.extend(t.iter().copied());
        }
        if referenced.is_empty() {
            return 0.0;
        }
        let ok = referenced
            .iter()
            .filter(|&&i| self.observations[i as usize].complete())
            .count();
        ok as f64 / referenced.len() as f64
    }

    /// Iterates a country's observations.
    pub fn country_observations(&self, country_idx: usize) -> impl Iterator<Item = &SiteObservation> {
        self.toplists[country_idx]
            .iter()
            .map(move |&i| &self.observations[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_extracts_tld() {
        let o = SiteObservation::blank("kalomi7.co", "en");
        assert_eq!(o.tld, "co");
        assert!(!o.complete());
        assert!(o.error.is_none());
    }

    #[test]
    fn success_rate_counts_referenced_only() {
        let mut ok = SiteObservation::blank("a.com", "en");
        ok.hosting_org = Some(1);
        ok.dns_org = Some(1);
        ok.ca_owner = Some(1);
        let bad = SiteObservation::blank("b.com", "en");
        let unreferenced = SiteObservation::blank("c.com", "en");
        let ds = MeasuredDataset {
            observations: vec![ok, bad, unreferenced],
            toplists: vec![vec![0, 1]],
            global_top: vec![],
            label: "t".into(),
        };
        assert!((ds.success_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ds.country_observations(0).count(), 2);
    }
}
