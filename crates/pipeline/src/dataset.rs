//! The measured dataset: one enriched observation per site.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Why a measurement layer failed, normalized across DNS and TLS.
///
/// The variants deliberately mirror the fault-injection kinds plus the
/// failure modes real measurement reports bucket by: a timeout and a
/// SERVFAIL are different operational stories even when both leave the
/// same field unobserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// No answer within the retry budget.
    Timeout,
    /// The network refused the send (no listener / route).
    Unreachable,
    /// The server answered but refused to serve (SERVFAIL, fatal alert).
    Refused,
    /// The name does not exist according to the authority.
    NxDomain,
    /// The answer existed but was empty or missing the needed records.
    NoRecords,
    /// The answer (or the queried name) failed to parse.
    Malformed,
    /// The certificate's issuer is not in the CCADB-style owner map.
    UnknownIssuer,
    /// An upstream layer failed, so this layer was never attempted.
    Skipped,
    /// The measurement infrastructure itself failed — a panic while
    /// measuring the site, or a site abandoned after repeatedly killing
    /// workers. Nothing about the *target* is implied.
    Internal,
}

impl FailureCause {
    /// Every cause, in taxonomy-table order.
    pub const ALL: [FailureCause; 9] = [
        FailureCause::Timeout,
        FailureCause::Unreachable,
        FailureCause::Refused,
        FailureCause::NxDomain,
        FailureCause::NoRecords,
        FailureCause::Malformed,
        FailureCause::UnknownIssuer,
        FailureCause::Skipped,
        FailureCause::Internal,
    ];

    /// Stable snake_case name (taxonomy keys, report rows).
    pub fn name(self) -> &'static str {
        match self {
            FailureCause::Timeout => "timeout",
            FailureCause::Unreachable => "unreachable",
            FailureCause::Refused => "refused",
            FailureCause::NxDomain => "nxdomain",
            FailureCause::NoRecords => "no_records",
            FailureCause::Malformed => "malformed",
            FailureCause::UnknownIssuer => "unknown_issuer",
            FailureCause::Skipped => "skipped",
            FailureCause::Internal => "internal",
        }
    }

    /// Inverse of the derived serialization (unit variants serialize as
    /// their variant name); used by the run-journal reader.
    pub fn from_variant(s: &str) -> Option<Self> {
        Some(match s {
            "Timeout" => FailureCause::Timeout,
            "Unreachable" => FailureCause::Unreachable,
            "Refused" => FailureCause::Refused,
            "NxDomain" => FailureCause::NxDomain,
            "NoRecords" => FailureCause::NoRecords,
            "Malformed" => FailureCause::Malformed,
            "UnknownIssuer" => FailureCause::UnknownIssuer,
            "Skipped" => FailureCause::Skipped,
            "Internal" => FailureCause::Internal,
            _ => return None,
        })
    }

    /// The variant name the derived serializer emits for this cause.
    pub fn variant_name(self) -> &'static str {
        match self {
            FailureCause::Timeout => "Timeout",
            FailureCause::Unreachable => "Unreachable",
            FailureCause::Refused => "Refused",
            FailureCause::NxDomain => "NxDomain",
            FailureCause::NoRecords => "NoRecords",
            FailureCause::Malformed => "Malformed",
            FailureCause::UnknownIssuer => "UnknownIssuer",
            FailureCause::Skipped => "Skipped",
            FailureCause::Internal => "Internal",
        }
    }
}

/// One layer's failure: a normalized cause plus the human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerError {
    /// Normalized failure class (taxonomy bucket).
    pub cause: FailureCause,
    /// Free-form detail, e.g. the underlying resolver error.
    pub detail: String,
}

impl LayerError {
    /// Builds a layer error.
    pub fn new(cause: FailureCause, detail: impl Into<String>) -> Self {
        LayerError {
            cause,
            detail: detail.into(),
        }
    }
}

/// Everything the pipeline learned about one website.
///
/// Organization / owner ids refer to the world's universe (the analysis
/// resolves names through it); `None` fields record measurement failures,
/// which the analysis reports rather than hiding. Each measured layer
/// carries its own error slot — a DNS timeout no longer masks a TLS
/// refusal — and `error` is a derived summary kept for display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteObservation {
    /// The measured domain.
    pub domain: String,
    /// TLD label extracted from the domain.
    pub tld: String,
    /// Content language (LangDetect stand-in).
    pub language: String,

    /// Serving IP from the A lookup.
    pub hosting_ip: Option<Ipv4Addr>,
    /// Origin ASN of the serving IP (pfx2as).
    pub hosting_asn: Option<u32>,
    /// Owning organization id (AS-to-Org).
    pub hosting_org: Option<u32>,
    /// Organization HQ country.
    pub hosting_org_country: Option<String>,
    /// Country the serving IP geolocates to.
    pub hosting_ip_country: Option<String>,
    /// Whether the serving IP is in an anycast prefix.
    pub hosting_anycast: bool,

    /// Nameserver host names from the NS lookup.
    pub ns_names: Vec<String>,
    /// Address of the first resolvable nameserver.
    pub dns_ip: Option<Ipv4Addr>,
    /// Origin ASN of the nameserver IP.
    pub dns_asn: Option<u32>,
    /// DNS provider organization id.
    pub dns_org: Option<u32>,
    /// DNS organization HQ country.
    pub dns_org_country: Option<String>,
    /// Country the nameserver IP geolocates to.
    pub dns_ip_country: Option<String>,
    /// Whether the nameserver IP is anycast.
    pub dns_anycast: bool,

    /// CA owner id from the TLS leaf certificate (CCADB join).
    pub ca_owner: Option<u32>,
    /// CA owner HQ country.
    pub ca_owner_country: Option<String>,

    /// Hosting-layer (A lookup + enrichment) failure, if any.
    pub hosting_error: Option<LayerError>,
    /// DNS-layer (NS lookup + nameserver address) failure, if any.
    pub dns_error: Option<LayerError>,
    /// CA-layer (TLS scan + issuer join) failure, if any.
    pub ca_error: Option<LayerError>,

    /// Derived summary: the first per-layer failure in pipeline order
    /// (hosting, DNS, CA), skipping `Skipped` entries. Kept for display
    /// and backward compatibility; the per-layer fields are authoritative.
    pub error: Option<String>,
}

impl SiteObservation {
    /// A blank observation for a domain (pre-measurement).
    ///
    /// The TLD is the last label of the *normalized* name: trailing root
    /// dots are stripped first (`"example.com."` → `"com"`, not `""`),
    /// the label is lowercased, and a name without a dot-separated TLD —
    /// label-less (`"."`, `""`) or single-label (`"localhost"`) — yields
    /// an empty TLD rather than becoming its own.
    pub fn blank(domain: &str, language: &str) -> Self {
        let normalized = domain.trim_end_matches('.');
        let tld = match normalized.rsplit_once('.') {
            Some((_, last)) => last.to_ascii_lowercase(),
            None => String::new(),
        };
        SiteObservation {
            domain: domain.to_string(),
            tld,
            language: language.to_string(),
            hosting_ip: None,
            hosting_asn: None,
            hosting_org: None,
            hosting_org_country: None,
            hosting_ip_country: None,
            hosting_anycast: false,
            ns_names: Vec::new(),
            dns_ip: None,
            dns_asn: None,
            dns_org: None,
            dns_org_country: None,
            dns_ip_country: None,
            dns_anycast: false,
            ca_owner: None,
            ca_owner_country: None,
            hosting_error: None,
            dns_error: None,
            ca_error: None,
            error: None,
        }
    }

    /// An observation for a site whose measurement was lost to the
    /// measurement infrastructure itself — a panic in the measuring code,
    /// or a site abandoned after repeatedly killing workers. Every layer
    /// is marked [`FailureCause::Internal`] with the given detail.
    pub fn internal_failure(domain: &str, language: &str, detail: &str) -> Self {
        let mut o = Self::blank(domain, language);
        o.hosting_error = Some(LayerError::new(FailureCause::Internal, detail));
        o.dns_error = Some(LayerError::new(FailureCause::Internal, detail));
        o.ca_error = Some(LayerError::new(FailureCause::Internal, detail));
        o.derive_error_summary();
        o
    }

    /// True when every layer was measured successfully.
    pub fn complete(&self) -> bool {
        self.hosting_org.is_some() && self.dns_org.is_some() && self.ca_owner.is_some()
    }

    /// Recomputes the derived `error` summary from the per-layer slots:
    /// first failure in pipeline order, ignoring `Skipped` layers.
    pub fn derive_error_summary(&mut self) {
        self.error = [&self.hosting_error, &self.dns_error, &self.ca_error]
            .into_iter()
            .flatten()
            .find(|e| e.cause != FailureCause::Skipped)
            .map(|e| e.detail.clone());
    }
}

/// Failure counts by measurement layer and normalized cause.
///
/// Layers are keyed by name (`hosting`, `dns`, `ca`) and causes by
/// [`FailureCause::name`]; `BTreeMap`s keep iteration — and the serialized
/// form — deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureTaxonomy {
    /// layer name → cause name → observation count.
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
    /// Observations with no failure at any layer.
    pub clean: u64,
    /// Observations examined.
    pub total: u64,
}

impl FailureTaxonomy {
    /// Records one layer failure.
    pub fn record(&mut self, layer: &str, cause: FailureCause) {
        *self
            .counts
            .entry(layer.to_string())
            .or_default()
            .entry(cause.name().to_string())
            .or_insert(0) += 1;
    }

    /// Reverses one [`FailureTaxonomy::record`]. Zeroed cells (and then
    /// empty layers) are removed, so a taxonomy adjusted incrementally
    /// across epochs stays structurally identical to a fresh tally —
    /// `PartialEq` and the serialized form cannot tell them apart.
    ///
    /// Panics if the cell was never recorded: an unrecord/record mismatch
    /// means the caller's per-site cause bookkeeping is corrupt.
    pub fn unrecord(&mut self, layer: &str, cause: FailureCause) {
        let causes = self
            .counts
            .get_mut(layer)
            .unwrap_or_else(|| panic!("unrecord: no counts for layer {layer:?}"));
        let n = causes
            .get_mut(cause.name())
            .unwrap_or_else(|| panic!("unrecord: {layer}/{} never recorded", cause.name()));
        *n -= 1;
        if *n == 0 {
            causes.remove(cause.name());
            if self.counts.get(layer).is_some_and(|m| m.is_empty()) {
                self.counts.remove(layer);
            }
        }
    }

    /// Total failures recorded for a layer.
    pub fn layer_total(&self, layer: &str) -> u64 {
        self.counts
            .get(layer)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Count for one (layer, cause) cell.
    pub fn count(&self, layer: &str, cause: FailureCause) -> u64 {
        self.counts
            .get(layer)
            .and_then(|m| m.get(cause.name()))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the taxonomy as a compact Markdown table (one row per
    /// layer × cause with a non-zero count).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| layer | cause | sites |\n|---|---|---:|\n");
        for (layer, causes) in &self.counts {
            for (cause, n) in causes {
                out.push_str(&format!("| {layer} | {cause} | {n} |\n"));
            }
        }
        out.push_str(&format!(
            "| _clean_ | — | {} |\n| _total_ | — | {} |\n",
            self.clean, self.total
        ));
        out
    }
}

/// The full measured dataset, aligned with the generating world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredDataset {
    /// One observation per world site (same indexing as `World::sites`).
    pub observations: Vec<SiteObservation>,
    /// Country toplists in `COUNTRIES` order: indices into `observations`.
    pub toplists: Vec<Vec<u32>>,
    /// The global top list (indices into `observations`).
    pub global_top: Vec<u32>,
    /// Snapshot label copied from the world.
    pub label: String,
}

impl MeasuredDataset {
    /// Fraction of toplist-referenced observations that measured cleanly.
    pub fn success_rate(&self) -> f64 {
        let mut referenced = std::collections::HashSet::new();
        for t in &self.toplists {
            referenced.extend(t.iter().copied());
        }
        if referenced.is_empty() {
            return 0.0;
        }
        let ok = referenced
            .iter()
            .filter(|&&i| self.observations[i as usize].complete())
            .count();
        ok as f64 / referenced.len() as f64
    }

    /// Iterates a country's observations.
    pub fn country_observations(
        &self,
        country_idx: usize,
    ) -> impl Iterator<Item = &SiteObservation> {
        self.toplists[country_idx]
            .iter()
            .map(move |&i| &self.observations[i as usize])
    }

    /// Tallies every observation's per-layer failures into a
    /// [`FailureTaxonomy`]. Derived on demand so it can never drift from
    /// the observations themselves.
    pub fn failure_taxonomy(&self) -> FailureTaxonomy {
        let mut tax = FailureTaxonomy {
            total: self.observations.len() as u64,
            ..FailureTaxonomy::default()
        };
        for obs in &self.observations {
            let mut any = false;
            for (layer, err) in [
                ("hosting", &obs.hosting_error),
                ("dns", &obs.dns_error),
                ("ca", &obs.ca_error),
            ] {
                if let Some(e) = err {
                    tax.record(layer, e.cause);
                    any = true;
                }
            }
            if !any {
                tax.clean += 1;
            }
        }
        tax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_extracts_tld() {
        let o = SiteObservation::blank("kalomi7.co", "en");
        assert_eq!(o.tld, "co");
        assert!(!o.complete());
        assert!(o.error.is_none());
    }

    /// Regression: a fully-qualified name with a trailing root dot used to
    /// yield an empty TLD (`rsplit('.')` sees the empty final label).
    #[test]
    fn blank_normalizes_trailing_dot() {
        assert_eq!(SiteObservation::blank("example.com.", "en").tld, "com");
        assert_eq!(SiteObservation::blank("example.COM.", "en").tld, "com");
    }

    /// Regression: label-less names must yield an empty TLD, not panic or
    /// produce a garbage label.
    #[test]
    fn blank_rejects_label_less_names() {
        assert_eq!(SiteObservation::blank(".", "en").tld, "");
        assert_eq!(SiteObservation::blank("", "en").tld, "");
        assert_eq!(SiteObservation::blank("...", "en").tld, "");
    }

    /// Regression: a single-label name (`"localhost"`) used to become its
    /// own TLD.
    #[test]
    fn blank_rejects_single_label_names() {
        assert_eq!(SiteObservation::blank("localhost", "en").tld, "");
        assert_eq!(SiteObservation::blank("localhost.", "en").tld, "");
    }

    #[test]
    fn success_rate_counts_referenced_only() {
        let mut ok = SiteObservation::blank("a.com", "en");
        ok.hosting_org = Some(1);
        ok.dns_org = Some(1);
        ok.ca_owner = Some(1);
        let bad = SiteObservation::blank("b.com", "en");
        let unreferenced = SiteObservation::blank("c.com", "en");
        let ds = MeasuredDataset {
            observations: vec![ok, bad, unreferenced],
            toplists: vec![vec![0, 1]],
            global_top: vec![],
            label: "t".into(),
        };
        assert!((ds.success_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ds.country_observations(0).count(), 2);
    }

    #[test]
    fn derived_summary_skips_skipped_layers() {
        let mut o = SiteObservation::blank("a.com", "en");
        o.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: query timed out"));
        o.ca_error = Some(LayerError::new(FailureCause::Skipped, "hosting failed"));
        o.derive_error_summary();
        assert_eq!(o.error.as_deref(), Some("A: query timed out"));

        o.hosting_error = None;
        o.derive_error_summary();
        assert_eq!(o.error, None, "skipped-only failures have no summary");
    }

    #[test]
    fn taxonomy_counts_by_layer_and_cause() {
        let mut a = SiteObservation::blank("a.com", "en");
        a.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: timeout"));
        a.ca_error = Some(LayerError::new(FailureCause::Skipped, "hosting failed"));
        let mut b = SiteObservation::blank("b.com", "en");
        b.dns_error = Some(LayerError::new(FailureCause::Refused, "NS: servfail"));
        let clean = SiteObservation::blank("c.com", "en");
        let ds = MeasuredDataset {
            observations: vec![a, b, clean],
            toplists: vec![vec![0, 1, 2]],
            global_top: vec![],
            label: "t".into(),
        };
        let tax = ds.failure_taxonomy();
        assert_eq!(tax.total, 3);
        assert_eq!(tax.clean, 1);
        assert_eq!(tax.count("hosting", FailureCause::Timeout), 1);
        assert_eq!(tax.count("ca", FailureCause::Skipped), 1);
        assert_eq!(tax.count("dns", FailureCause::Refused), 1);
        assert_eq!(tax.layer_total("hosting"), 1);
        assert_eq!(tax.count("dns", FailureCause::Timeout), 0);
        let md = tax.to_markdown();
        assert!(md.contains("| hosting | timeout | 1 |"), "{md}");
        assert!(md.contains("| _total_ | — | 3 |"), "{md}");
    }
}
