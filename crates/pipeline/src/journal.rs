//! The run journal: an append-only JSONL checkpoint of completed site
//! observations, and the loader that makes crash-resume possible.
//!
//! Format: line 1 is a header object
//! `{"magic":"webdep-run-journal","version":1,"label":…,"sites":N}`;
//! every following line is one completed record
//! `{"site":<index>,"obs":<SiteObservation>}`. Records are appended in
//! completion order (worker-interleaved, *not* site order) — the loader
//! scatters them back by index. The writer buffers and fsyncs every
//! [`FSYNC_BATCH`] records, so a crash loses at most one batch of
//! durability plus possibly a torn final line; the loader tolerates
//! exactly that (an unparseable *last* line is dropped, an unparseable
//! middle line is corruption and an error).
//!
//! Because per-site measurement is deterministic (see the determinism
//! contract in [`crate::run`]), a resumed run re-measures only the
//! missing sites and provably reassembles a byte-identical
//! [`MeasuredDataset`](crate::dataset::MeasuredDataset).

use crate::dataset::{FailureCause, LayerError, SiteObservation};
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Journal magic string (header `magic` field).
pub const MAGIC: &str = "webdep-run-journal";
/// Journal format version (header `version` field).
pub const VERSION: u64 = 1;
/// Records between explicit flush+fsync batches.
pub const FSYNC_BATCH: usize = 64;

/// Buffered, fsync-batched appender for the run journal.
///
/// Writes are line-buffered in userspace and pushed to stable storage
/// every [`FSYNC_BATCH`] records (and on [`JournalWriter::sync`] / drop),
/// trading at most one batch of durability for not paying an fsync per
/// site.
pub struct JournalWriter {
    path: PathBuf,
    out: BufWriter<File>,
    pending: usize,
    written: u64,
}

impl JournalWriter {
    /// Creates (truncating) a journal for a run over `sites` sites of the
    /// world labeled `label`, writing and syncing the header immediately.
    pub fn create(path: &Path, label: &str, sites: usize) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut w = JournalWriter {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            pending: 0,
            written: 0,
        };
        let header = Value::Object(vec![
            ("magic".into(), Value::String(MAGIC.into())),
            ("version".into(), Value::U64(VERSION)),
            ("label".into(), Value::String(label.into())),
            ("sites".into(), Value::U64(sites as u64)),
        ]);
        writeln!(w.out, "{header}")?;
        w.out.flush()?;
        w.out.get_ref().sync_data()?;
        Ok(w)
    }

    /// Opens an existing journal for appending (resume). The header must
    /// match `label`/`sites`. A torn final line (crash artifact) is healed
    /// first by rewriting the recovered records — appending directly after
    /// a torn line would concatenate onto it and corrupt the journal.
    pub fn append_existing(path: &Path, label: &str, sites: usize) -> io::Result<Self> {
        let loaded = load(path)?;
        if loaded.label != label || loaded.sites != sites {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal is for '{}' ({} sites), not '{}' ({} sites)",
                    loaded.label, loaded.sites, label, sites
                ),
            ));
        }
        Self::append_loaded(path, &loaded)
    }

    /// Like [`JournalWriter::append_existing`], but takes the journal's
    /// already-loaded contents instead of re-parsing the file — the
    /// resume path loads once for the prefill and hands the same
    /// [`Journal`] here.
    pub fn append_loaded(path: &Path, loaded: &Journal) -> io::Result<Self> {
        if loaded.torn_tail {
            let mut w = Self::create(path, &loaded.label, loaded.sites)?;
            for (i, obs) in &loaded.records {
                w.append(*i, obs)?;
            }
            w.sync()?;
            return Ok(w);
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            pending: 0,
            written: loaded.records.len() as u64,
        })
    }

    /// Appends one completed record; flushes and fsyncs every
    /// [`FSYNC_BATCH`] records.
    pub fn append(&mut self, site: usize, obs: &SiteObservation) -> io::Result<()> {
        let obs_json = serde_json::to_string(obs)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.out, "{{\"site\":{site},\"obs\":{obs_json}}}")?;
        self.written += 1;
        self.pending += 1;
        if self.pending >= FSYNC_BATCH {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered records and fsyncs file data.
    pub fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        // Telemetry at batch granularity: one fsync event plus however
        // many records it made durable (never per-record atomics).
        let m = crate::metrics::metrics();
        m.journal_fsyncs.inc();
        m.journal_records.add(self.pending as u64);
        self.pending = 0;
        Ok(())
    }

    /// Records appended through this writer (including any pre-existing
    /// count passed to [`JournalWriter::append_existing`]).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort final durability; errors here have no channel.
        let _ = self.sync();
    }
}

/// A loaded journal: header metadata plus the recovered records.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// World snapshot label from the header.
    pub label: String,
    /// Site count from the header.
    pub sites: usize,
    /// Recovered `(site_index, observation)` records, deduplicated
    /// keep-first, in file order.
    pub records: Vec<(usize, SiteObservation)>,
    /// Whether the final line was torn (unparseable) and dropped.
    pub torn_tail: bool,
}

impl Journal {
    /// Scatters the records into a `slots` vector (one `Option` per
    /// site), returning how many sites were restored.
    pub fn fill_slots(&self, slots: &mut [Option<SiteObservation>]) -> usize {
        let mut restored = 0;
        for (i, obs) in &self.records {
            if slots[*i].is_none() {
                slots[*i] = Some(obs.clone());
                restored += 1;
            }
        }
        restored
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Loads and validates a journal.
///
/// Tolerates exactly the crash artifact the writer can produce: a torn
/// (unparseable or structurally incomplete) *final* line, which is
/// dropped. Any earlier malformed line, a bad header, or an
/// out-of-bounds site index is corruption and fails the load. Duplicate
/// site records (possible when a requeued batch re-measures a site a
/// dead worker had already journaled) keep the first occurrence.
pub fn load(path: &Path) -> io::Result<Journal> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let mut lines = text.lines();

    let header_line = lines.next().ok_or_else(|| bad("empty journal"))?;
    let header: Value =
        serde_json::from_str(header_line).map_err(|e| bad(format!("bad journal header: {e}")))?;
    if header["magic"] != MAGIC {
        return Err(bad("not a run journal (bad magic)"));
    }
    if header["version"].as_u64() != Some(VERSION) {
        return Err(bad(format!(
            "unsupported journal version {}",
            header["version"]
        )));
    }
    let label = header["label"]
        .as_str()
        .ok_or_else(|| bad("journal header missing label"))?
        .to_string();
    let sites = header["sites"]
        .as_u64()
        .ok_or_else(|| bad("journal header missing sites"))? as usize;

    let body: Vec<&str> = lines.collect();
    let mut records = Vec::new();
    let mut seen = vec![false; sites];
    let mut torn_tail = false;
    for (lineno, line) in body.iter().enumerate() {
        let last = lineno + 1 == body.len();
        match parse_record(line, sites) {
            Ok((site, obs)) => {
                if !seen[site] {
                    seen[site] = true;
                    records.push((site, obs));
                }
            }
            Err(e) if last => {
                // The one artifact a crash mid-append can leave behind.
                torn_tail = true;
                let _ = e;
            }
            Err(e) => {
                return Err(bad(format!("corrupt journal line {}: {e}", lineno + 2)));
            }
        }
    }
    Ok(Journal {
        label,
        sites,
        records,
        torn_tail,
    })
}

fn parse_record(line: &str, sites: usize) -> Result<(usize, SiteObservation), String> {
    let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let site = v["site"].as_u64().ok_or("missing site index")? as usize;
    if site >= sites {
        return Err(format!("site index {site} out of bounds (< {sites})"));
    }
    let obs = observation_from_value(&v["obs"])?;
    Ok((site, obs))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match &v[key] {
        Value::Null => Ok(None),
        Value::String(s) => Ok(Some(s.clone())),
        other => Err(format!("field '{key}' is not a string or null: {other}")),
    }
}

fn opt_u32(v: &Value, key: &str) -> Result<Option<u32>, String> {
    match &v[key] {
        Value::Null => Ok(None),
        other => other
            .as_u64()
            .and_then(|x| u32::try_from(x).ok())
            .map(Some)
            .ok_or_else(|| format!("field '{key}' is not a u32 or null: {other}")),
    }
}

fn req_bool(v: &Value, key: &str) -> Result<bool, String> {
    v[key]
        .as_bool()
        .ok_or_else(|| format!("missing bool field '{key}'"))
}

fn opt_ip(v: &Value, key: &str) -> Result<Option<Ipv4Addr>, String> {
    match opt_str(v, key)? {
        None => Ok(None),
        Some(s) => s
            .parse::<Ipv4Addr>()
            .map(Some)
            .map_err(|_| format!("field '{key}' is not an IPv4 address: {s}")),
    }
}

fn opt_layer_error(v: &Value, key: &str) -> Result<Option<LayerError>, String> {
    match &v[key] {
        Value::Null => Ok(None),
        obj @ Value::Object(_) => {
            let cause_name = req_str(obj, "cause")?;
            let cause = FailureCause::from_variant(&cause_name)
                .ok_or_else(|| format!("unknown failure cause '{cause_name}'"))?;
            Ok(Some(LayerError::new(cause, req_str(obj, "detail")?)))
        }
        other => Err(format!("field '{key}' is not a layer error: {other}")),
    }
}

/// Reconstructs a [`SiteObservation`] from its serialized [`Value`] tree.
///
/// The vendored `serde_json` shim deserializes only into [`Value`], so
/// the typed reconstruction lives here. This is the exact inverse of the
/// derived serialization: unit enum variants are variant-name strings,
/// `Ipv4Addr` is a dotted-quad string, `None` is `null`.
pub fn observation_from_value(v: &Value) -> Result<SiteObservation, String> {
    let ns_names = match &v["ns_names"] {
        Value::Array(items) => items
            .iter()
            .map(|it| {
                it.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("ns_names entry is not a string: {it}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        other => return Err(format!("ns_names is not an array: {other}")),
    };
    Ok(SiteObservation {
        domain: req_str(v, "domain")?,
        tld: req_str(v, "tld")?,
        language: req_str(v, "language")?,
        hosting_ip: opt_ip(v, "hosting_ip")?,
        hosting_asn: opt_u32(v, "hosting_asn")?,
        hosting_org: opt_u32(v, "hosting_org")?,
        hosting_org_country: opt_str(v, "hosting_org_country")?,
        hosting_ip_country: opt_str(v, "hosting_ip_country")?,
        hosting_anycast: req_bool(v, "hosting_anycast")?,
        ns_names,
        dns_ip: opt_ip(v, "dns_ip")?,
        dns_asn: opt_u32(v, "dns_asn")?,
        dns_org: opt_u32(v, "dns_org")?,
        dns_org_country: opt_str(v, "dns_org_country")?,
        dns_ip_country: opt_str(v, "dns_ip_country")?,
        dns_anycast: req_bool(v, "dns_anycast")?,
        ca_owner: opt_u32(v, "ca_owner")?,
        ca_owner_country: opt_str(v, "ca_owner_country")?,
        hosting_error: opt_layer_error(v, "hosting_error")?,
        dns_error: opt_layer_error(v, "dns_error")?,
        ca_error: opt_layer_error(v, "ca_error")?,
        error: opt_str(v, "error")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("webdep-journal-{name}-{}", std::process::id()))
    }

    fn sample_obs(i: usize) -> SiteObservation {
        let mut o = SiteObservation::blank(&format!("site{i}.example.com"), "en");
        o.hosting_ip = Some(Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8));
        o.hosting_asn = Some(64512 + i as u32);
        o.hosting_org = Some(7);
        o.hosting_org_country = Some("US".into());
        o.hosting_anycast = i.is_multiple_of(2);
        o.ns_names = vec![format!("ns1.host{i}.net"), format!("ns2.host{i}.net")];
        if i.is_multiple_of(3) {
            o.dns_error = Some(LayerError::new(
                FailureCause::Timeout,
                "NS: query timed out",
            ));
        }
        o.derive_error_summary();
        o
    }

    #[test]
    fn roundtrip_is_exact() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path, "tiny-v1", 10).unwrap();
        let original: Vec<SiteObservation> = (0..10).map(sample_obs).collect();
        // Append out of site order, as workers do.
        for &i in &[3usize, 0, 7, 1, 9, 2] {
            w.append(i, &original[i]).unwrap();
        }
        drop(w);

        let j = load(&path).unwrap();
        assert_eq!(j.label, "tiny-v1");
        assert_eq!(j.sites, 10);
        assert!(!j.torn_tail);
        assert_eq!(j.records.len(), 6);
        for (i, obs) in &j.records {
            assert_eq!(obs, &original[*i], "site {i} must roundtrip exactly");
            // Byte-level: re-serialization matches the original bytes.
            assert_eq!(
                serde_json::to_string(obs).unwrap(),
                serde_json::to_string(&original[*i]).unwrap()
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_but_middle_corruption_fails() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path, "t", 4).unwrap();
        w.append(0, &sample_obs(0)).unwrap();
        w.append(1, &sample_obs(1)).unwrap();
        drop(w);

        // Simulate a crash mid-append: truncate the final line.
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.len() - 40;
        fs::write(&path, &text[..cut]).unwrap();
        let j = load(&path).unwrap();
        assert!(j.torn_tail);
        assert_eq!(j.records.len(), 1, "torn final record is dropped");
        assert_eq!(j.records[0].0, 0);

        // The same damage mid-file is corruption, not a torn tail.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let cut = lines[1].len() - 40;
        lines[1].truncate(cut);
        fs::write(&path, lines.join("\n")).unwrap();
        assert!(load(&path).is_err(), "mid-file corruption must fail");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_validation_rejects_mismatches() {
        let path = tmp("header");
        {
            let _w = JournalWriter::create(&path, "world-a", 5).unwrap();
        }
        assert!(JournalWriter::append_existing(&path, "world-b", 5).is_err());
        assert!(JournalWriter::append_existing(&path, "world-a", 6).is_err());
        let w = JournalWriter::append_existing(&path, "world-a", 5).unwrap();
        assert_eq!(w.written(), 0);
        drop(w);

        fs::write(
            &path,
            "{\"magic\":\"nope\",\"version\":1,\"label\":\"x\",\"sites\":1}\n",
        )
        .unwrap();
        assert!(load(&path).is_err(), "bad magic must fail");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicates_keep_first_and_bounds_are_checked() {
        let path = tmp("dups");
        let mut w = JournalWriter::create(&path, "t", 3).unwrap();
        let first = sample_obs(1);
        let mut second = first.clone();
        second.hosting_asn = Some(99);
        w.append(1, &first).unwrap();
        w.append(1, &second).unwrap();
        drop(w);
        let j = load(&path).unwrap();
        assert_eq!(j.records.len(), 1);
        assert_eq!(j.records[0].1.hosting_asn, first.hosting_asn);

        let mut slots: Vec<Option<SiteObservation>> = vec![None; 3];
        assert_eq!(j.fill_slots(&mut slots), 1);
        assert!(slots[1].is_some() && slots[0].is_none());

        // Out-of-bounds site index in the middle is corruption.
        let mut w = JournalWriter::append_existing(&path, "t", 3).unwrap();
        w.append(2, &sample_obs(2)).unwrap();
        drop(w);
        let text = fs::read_to_string(&path).unwrap();
        let bumped = text.replace("{\"site\":2,", "{\"site\":7,");
        fs::write(&path, format!("{bumped}{{\"site\":0,\"obs\":null}}\n")).unwrap();
        assert!(load(&path).is_err());
        fs::remove_file(&path).unwrap();
    }
}
