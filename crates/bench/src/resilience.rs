//! The supervision/resilience bench behind `BENCH_resilience.json`.
//!
//! Three questions, answered on one reduced world:
//!
//! 1. What does journaling cost? A clean run vs the same run with the
//!    append-only JSONL journal enabled (wall overhead + journal size).
//! 2. What does a worker death cost? Seeded [`ChaosPlan`] kills at N
//!    evenly spaced sites; the snapshot records time-to-complete, the
//!    supervision counters, and — the headline — how many observations
//!    were lost or changed versus the undisturbed baseline (must be 0:
//!    requeued batches re-measure to identical bytes).
//! 3. What does crash-resume cost? The full journal is truncated at 50%
//!    of its records and the run resumed; the snapshot records the resume
//!    wall against the clean wall and certifies byte-identity.

use serde::Serialize;
use std::time::Instant;
use webdep_pipeline::{
    measure_journaled, measure_with_stats, resume_from_journal, ChaosPlan, MeasuredDataset,
    PipelineConfig, SupervisorConfig,
};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

/// Worker deaths injected per degraded run.
const DEATH_COUNTS: [usize; 3] = [1, 2, 4];

/// The clean reference pair: the same run without and with journaling.
#[derive(Serialize)]
pub struct CleanRuns {
    /// Wall-clock of the plain run (ms).
    pub wall_ms: u64,
    /// Wall-clock with the journal enabled (ms).
    pub journaled_wall_ms: u64,
    /// `journaled_wall_ms / wall_ms - 1`, the checkpointing tax.
    pub journal_overhead: f64,
    /// Size of the completed journal file (bytes).
    pub journal_bytes: u64,
}

/// One chaos run with a fixed number of injected worker deaths.
#[derive(Serialize)]
pub struct DeathRun {
    /// Worker deaths scheduled (at evenly spaced sites, first attempt
    /// only, so each fires exactly once).
    pub deaths_injected: usize,
    /// Workers the supervisor actually declared lost.
    pub workers_lost: u64,
    /// Replacement workers spawned.
    pub workers_respawned: u64,
    /// In-flight batches requeued.
    pub batches_requeued: u64,
    /// Sites failed by the poison policy (must stay 0 here).
    pub sites_poisoned: u64,
    /// Observations that differ from the undisturbed baseline (must be 0).
    pub observations_lost: u64,
    /// Wall-clock of the degraded run (ms).
    pub wall_ms: u64,
    /// `wall_ms` relative to the clean run.
    pub slowdown: f64,
    /// Whether the dataset serialized byte-identical to the baseline.
    pub byte_identical: bool,
}

/// The kill-at-50%-and-resume cycle.
#[derive(Serialize)]
pub struct ResumeRun {
    /// Journal records restored instead of re-measured.
    pub resumed_records: u64,
    /// `resumed_records` over the site count.
    pub resumed_fraction: f64,
    /// Wall-clock of the resumed (second) half (ms).
    pub wall_ms: u64,
    /// Resume wall over the clean full-run wall — roughly the fraction of
    /// work the crash did *not* save, plus journal-replay overhead.
    pub overhead_vs_clean: f64,
    /// Whether the reassembled dataset serialized byte-identical to the
    /// uninterrupted baseline.
    pub byte_identical: bool,
}

/// The whole `BENCH_resilience.json` payload.
#[derive(Serialize)]
pub struct ResilienceSnapshot {
    /// Sites in the bench world.
    pub sites: u64,
    /// Pipeline workers.
    pub workers: u64,
    /// The clean / journaled reference runs.
    pub baseline: CleanRuns,
    /// One run per injected death count.
    pub deaths: Vec<DeathRun>,
    /// The crash-resume cycle.
    pub resume: ResumeRun,
    /// Peak RSS (`VmHWM`) of the bench process when the snapshot was
    /// assembled (bytes; `None`/JSON `null` off-Linux).
    pub peak_rss_bytes: Option<u64>,
}

/// World for the resilience runs: same reduced scale as the fault sweep,
/// so several full measurements stay tractable.
fn bench_world_config() -> WorldConfig {
    WorldConfig {
        seed: 42,
        sites_per_country: 60,
        global_pool_size: 300,
        tail_scale: 0.04,
        pool_target: 40,
    }
}

fn pipeline_config(workers: usize, chaos: Option<ChaosPlan>) -> PipelineConfig {
    PipelineConfig {
        workers,
        chaos,
        supervisor: SupervisorConfig {
            // Enough respawn budget for the deepest death schedule.
            max_respawns: DEATH_COUNTS[DEATH_COUNTS.len() - 1] * 2,
            ..SupervisorConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Evenly spaced kill sites, far enough apart that each lands in its own
/// batch and kills exactly one worker (first attempt only).
fn kill_sites(n_sites: usize, deaths: usize) -> Vec<usize> {
    (1..=deaths).map(|k| k * n_sites / (deaths + 1)).collect()
}

fn dataset_bytes(ds: &MeasuredDataset) -> Vec<u8> {
    serde_json::to_string(&ds.observations)
        .expect("observations serialize")
        .into_bytes()
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("webdep-resilience-{name}-{}", std::process::id()))
}

/// Runs the resilience bench and assembles the snapshot.
///
/// `progress` receives one line per completed stage (the bench binary
/// wires it to stderr; tests pass a sink).
pub fn resilience_snapshot(workers: usize, progress: impl FnMut(&str)) -> ResilienceSnapshot {
    resilience_snapshot_with(bench_world_config(), workers, progress)
}

/// [`resilience_snapshot`] over an explicit world config (tests shrink it).
pub fn resilience_snapshot_with(
    world_cfg: WorldConfig,
    workers: usize,
    mut progress: impl FnMut(&str),
) -> ResilienceSnapshot {
    let world = World::generate(world_cfg);
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();

    let (baseline_ds, clean_stats) =
        measure_with_stats(&world, &dep, &pipeline_config(workers, None));
    let clean_wall = clean_stats.wall;
    let baseline_bytes = dataset_bytes(&baseline_ds);
    progress(&format!(
        "clean: {n} sites in {} ms",
        clean_wall.as_millis()
    ));

    let journal_path = scratch("journal");
    let (journaled_ds, journaled_stats) =
        measure_journaled(&world, &dep, &pipeline_config(workers, None), &journal_path)
            .expect("journaled run");
    assert_eq!(journaled_ds, baseline_ds, "journaling changed the dataset");
    let journal_bytes = std::fs::metadata(&journal_path)
        .map(|m| m.len())
        .unwrap_or(0);
    let journaled_wall = journaled_stats.wall;
    progress(&format!(
        "journaled: {} ms (+{:.1}%), journal {} KiB",
        journaled_wall.as_millis(),
        100.0 * (journaled_wall.as_secs_f64() / clean_wall.as_secs_f64() - 1.0),
        journal_bytes / 1024
    ));

    let deaths = DEATH_COUNTS
        .iter()
        .map(|&d| {
            let plan = ChaosPlan::kill_at(&kill_sites(n, d));
            let (ds, stats) =
                measure_with_stats(&world, &dep, &pipeline_config(workers, Some(plan)));
            let observations_lost = baseline_ds
                .observations
                .iter()
                .zip(&ds.observations)
                .filter(|(a, b)| a != b)
                .count() as u64;
            let run = DeathRun {
                deaths_injected: d,
                workers_lost: stats.supervision.workers_lost,
                workers_respawned: stats.supervision.workers_respawned,
                batches_requeued: stats.supervision.batches_requeued,
                sites_poisoned: stats.supervision.sites_poisoned,
                observations_lost,
                wall_ms: stats.wall.as_millis() as u64,
                slowdown: round3(stats.wall.as_secs_f64() / clean_wall.as_secs_f64()),
                byte_identical: dataset_bytes(&ds) == baseline_bytes,
            };
            progress(&format!(
                "deaths={d}: lost {}, requeued {}, obs lost {}, {} ms (x{:.2}), identical {}",
                run.workers_lost,
                run.batches_requeued,
                run.observations_lost,
                run.wall_ms,
                run.slowdown,
                run.byte_identical
            ));
            run
        })
        .collect();

    // Crash-resume: keep the header and the first half of the records,
    // exactly what a process killed mid-run leaves behind.
    let text = std::fs::read_to_string(&journal_path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    let keep = n / 2;
    let cut_path = scratch("resume");
    std::fs::write(&cut_path, format!("{}\n", lines[..=keep].join("\n")))
        .expect("write truncated journal");

    let t0 = Instant::now();
    let (resumed_ds, resumed_stats) =
        resume_from_journal(&world, &dep, &pipeline_config(workers, None), &cut_path)
            .expect("resume");
    let resume_wall = t0.elapsed();
    let resume = ResumeRun {
        resumed_records: resumed_stats.supervision.sites_resumed,
        resumed_fraction: round3(keep as f64 / n as f64),
        wall_ms: resume_wall.as_millis() as u64,
        overhead_vs_clean: round3(resume_wall.as_secs_f64() / clean_wall.as_secs_f64()),
        byte_identical: dataset_bytes(&resumed_ds) == baseline_bytes,
    };
    progress(&format!(
        "resume from {}/{}: {} ms ({:.0}% of clean), identical {}",
        resume.resumed_records,
        n,
        resume.wall_ms,
        100.0 * resume.overhead_vs_clean,
        resume.byte_identical
    ));
    let _ = std::fs::remove_file(&cut_path);
    let _ = std::fs::remove_file(&journal_path);

    ResilienceSnapshot {
        sites: n as u64,
        workers: workers as u64,
        baseline: CleanRuns {
            wall_ms: clean_wall.as_millis() as u64,
            journaled_wall_ms: journaled_wall.as_millis() as u64,
            journal_overhead: round3(journaled_wall.as_secs_f64() / clean_wall.as_secs_f64() - 1.0),
            journal_bytes,
        },
        deaths,
        resume,
        peak_rss_bytes: crate::peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full snapshot machinery on a micro world: every chaos run must
    /// lose zero observations and the resume must be byte-identical.
    #[test]
    fn resilience_snapshot_certifies_no_loss() {
        let cfg = WorldConfig {
            seed: 42,
            sites_per_country: 20,
            global_pool_size: 80,
            tail_scale: 0.04,
            pool_target: 40,
        };
        let snap = resilience_snapshot_with(cfg, 4, |_| {});
        assert_eq!(snap.deaths.len(), DEATH_COUNTS.len());
        for run in &snap.deaths {
            assert!(
                run.workers_lost >= 1,
                "deaths={} lost none",
                run.deaths_injected
            );
            assert_eq!(run.observations_lost, 0, "deaths={}", run.deaths_injected);
            assert_eq!(run.sites_poisoned, 0, "deaths={}", run.deaths_injected);
            assert!(run.byte_identical, "deaths={}", run.deaths_injected);
        }
        assert!(snap.resume.byte_identical);
        assert!(snap.resume.resumed_records > 0);
        assert!(snap.baseline.journal_bytes > 0);
    }

    #[test]
    fn kill_sites_are_spread_and_in_range() {
        let sites = kill_sites(9000, 4);
        assert_eq!(sites.len(), 4);
        assert!(sites.windows(2).all(|w| w[0] < w[1]));
        assert!(sites.iter().all(|&s| s > 0 && s < 9000));
    }
}
