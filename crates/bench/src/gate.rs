//! The CI perf-regression gate: deterministic smoke workloads compared
//! against `BENCH_baselines.json`.
//!
//! The full bench suite measures wall-clock, which no shared CI box can
//! gate on without flaking. The gate instead re-runs a *deterministic*
//! workload — a 1-worker pipeline measurement (fixed seed, fixed
//! scheduling order, so wire-query and cache-hit counts are exact
//! integers) plus a sequential sweep against the query service (so cache
//! hit/miss and status counts are exact) — and compares those counts
//! against recorded baselines. Latency readings ride along as
//! `info` metrics: recorded for trend-reading, never gated.
//!
//! Baseline entries carry their own tolerance and direction, so a human
//! can loosen a threshold in the JSON without touching code:
//!
//! ```json
//! { "value": 1234, "tol_pct": 0, "direction": "exact" }
//! ```
//!
//! Directions: `exact` (any deviation fails), `up_bad` (fail only above
//! `value * (1 + tol_pct/100)`), `down_bad` (fail only below), `info`
//! (never fails). Metrics present in a run but absent from the file are
//! recorded and pass — the first run bootstraps the baseline. Breaches
//! append one line each to `BENCH_alerts.log` and fail the gate.
//!
//! The full (non-smoke) snapshot runs also record their headline numbers
//! here via [`record_headline`], alerting (non-fatally) when a headline
//! regresses past its stored threshold.

use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webdep_pipeline::{measure_with_stats, MeasuredDataset, PipelineConfig};
use webdep_serve::snapshot::CubeSnapshot;
use webdep_serve::{start, OverloadConfig, ServeConfig};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

/// File the gate reads and bootstraps, next to the `BENCH_*.json`
/// snapshots at the repo root.
pub const BASELINES_FILE: &str = "BENCH_baselines.json";

/// One-line alert log appended on every breach (fatal or headline).
pub const ALERTS_FILE: &str = "BENCH_alerts.log";

/// How deviations from a baseline value are judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Any deviation is a breach (deterministic counts).
    Exact,
    /// Only growth past the tolerance is a breach (costs: queries, RSS).
    UpBad,
    /// Only shrinkage past the tolerance is a breach (rates: speedups).
    DownBad,
    /// Recorded for trend-reading, never a breach (latencies in smoke).
    Info,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Exact => "exact",
            Direction::UpBad => "up_bad",
            Direction::DownBad => "down_bad",
            Direction::Info => "info",
        }
    }

    fn parse(s: &str) -> Option<Direction> {
        match s {
            "exact" => Some(Direction::Exact),
            "up_bad" => Some(Direction::UpBad),
            "down_bad" => Some(Direction::DownBad),
            "info" => Some(Direction::Info),
            _ => None,
        }
    }
}

/// One measured metric with the threshold it should be *recorded* with.
/// When an entry already exists in the baselines file, the stored
/// tolerance and direction win, so thresholds are tunable in the JSON.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric key inside its bench entry.
    pub name: &'static str,
    /// Measured value (integers only: counts, µs, permille).
    pub value: u64,
    /// Tolerance in percent (0 with `Exact` means byte-for-byte).
    pub tol_pct: u64,
    /// Judgement direction.
    pub direction: Direction,
}

impl Metric {
    /// An `exact`, zero-tolerance count.
    pub fn exact(name: &'static str, value: u64) -> Metric {
        Metric {
            name,
            value,
            tol_pct: 0,
            direction: Direction::Exact,
        }
    }

    /// An informational reading (recorded, never gated).
    pub fn info(name: &'static str, value: u64) -> Metric {
        Metric {
            name,
            value,
            tol_pct: 0,
            direction: Direction::Info,
        }
    }
}

/// One gate breach, already formatted for humans.
#[derive(Debug)]
pub struct Breach {
    /// `bench.metric` path.
    pub what: String,
    /// Human-readable sentence (also the alert-log line payload).
    pub line: String,
}

// ----------------------------------------------------------- file handling

fn obj_get_mut<'a>(entries: &'a mut [(String, Value)], key: &str) -> Option<&'a mut Value> {
    entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn load_baselines(path: &Path) -> Vec<(String, Value)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let parsed: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => panic!(
            "{} is not valid JSON ({e}); fix or delete it",
            path.display()
        ),
    };
    match parsed.get("benches") {
        Some(Value::Object(benches)) => benches.clone(),
        _ => Vec::new(),
    }
}

fn write_baselines(path: &Path, benches: Vec<(String, Value)>) {
    let root = Value::Object(vec![
        ("version".to_string(), Value::U64(1)),
        ("benches".to_string(), Value::Object(benches)),
    ]);
    let json = serde_json::to_string_pretty(&root).expect("baselines serialize");
    std::fs::write(path, json + "\n").unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn metric_entry(m: &Metric) -> Value {
    Value::Object(vec![
        ("value".to_string(), Value::U64(m.value)),
        ("tol_pct".to_string(), Value::U64(m.tol_pct)),
        (
            "direction".to_string(),
            Value::String(m.direction.as_str().to_string()),
        ),
    ])
}

fn append_alert(root: &Path, line: &str) {
    use std::io::Write;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let path = root.join(ALERTS_FILE);
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{ts} {line}"));
    if let Err(e) = res {
        eprintln!("warning: could not append {}: {e}", path.display());
    }
}

/// Judges `measured` against a stored entry. `None` means within bounds.
fn judge(bench: &str, measured: &Metric, stored: &Value) -> Option<Breach> {
    let baseline = stored.get("value").and_then(Value::as_u64)?;
    let tol_pct = stored
        .get("tol_pct")
        .and_then(Value::as_u64)
        .unwrap_or(measured.tol_pct);
    let direction = stored
        .get("direction")
        .and_then(Value::as_str)
        .and_then(Direction::parse)
        .unwrap_or(measured.direction);
    let v = measured.value;
    // Integer threshold math: no float rounding at the boundary.
    let breached = match direction {
        Direction::Info => false,
        Direction::Exact => v != baseline,
        Direction::UpBad => v * 100 > baseline * (100 + tol_pct),
        Direction::DownBad => v * 100 < baseline * 100u64.saturating_sub(tol_pct),
    };
    if !breached {
        return None;
    }
    let what = format!("{bench}.{}", measured.name);
    let line = format!(
        "{what} measured {v} vs baseline {baseline} ({}, tol {tol_pct}%)",
        direction.as_str()
    );
    Some(Breach { what, line })
}

/// Records `metrics` for `bench`, comparing each against the stored
/// baseline first. Returns the breaches; the stored values are
/// overwritten with the measured ones only when `overwrite` is true.
fn merge_bench(
    benches: &mut Vec<(String, Value)>,
    bench: &str,
    metrics: &[Metric],
    overwrite: bool,
) -> Vec<Breach> {
    if obj_get_mut(benches, bench).is_none() {
        benches.push((bench.to_string(), Value::Object(Vec::new())));
    }
    let Some(Value::Object(entries)) = obj_get_mut(benches, bench) else {
        panic!("bench entry {bench:?} in {BASELINES_FILE} is not an object");
    };
    let mut breaches = Vec::new();
    for m in metrics {
        match obj_get_mut(entries, m.name) {
            Some(stored) => {
                breaches.extend(judge(bench, m, stored));
                if overwrite {
                    *stored = metric_entry(m);
                }
            }
            None => entries.push((m.name.to_string(), metric_entry(m))),
        }
    }
    breaches
}

// -------------------------------------------------------------- http client

/// One sequential request on a fresh connection: returns (status, body).
fn fetch(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to gate server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: gate\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) | Err(_) => panic!("connection dropped mid-head for {target}"),
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let text = std::str::from_utf8(&head).expect("ascii head");
    let mut lines = text.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("body");
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> u16 {
    fetch(addr, target).0
}

fn get_body(addr: SocketAddr, target: &str) -> String {
    let (status, body) = fetch(addr, target);
    assert_eq!(status, 200, "{target}");
    String::from_utf8(body).expect("utf8 body")
}

// --------------------------------------------------------- smoke workloads

/// Gate world: small enough that a 1-worker measurement takes about a
/// second, big enough that the resolver's shared cache and every layer
/// see real traffic.
fn gate_world_config(smoke: bool) -> WorldConfig {
    WorldConfig {
        seed: 7,
        sites_per_country: if smoke { 12 } else { 60 },
        global_pool_size: if smoke { 60 } else { 300 },
        tail_scale: 0.04,
        pool_target: if smoke { 24 } else { 60 },
    }
}

/// The deterministic pipeline phase: one worker, fixed seed, shared
/// cache on — query and cache-hit counts must reproduce exactly.
fn pipeline_phase(smoke: bool) -> (Arc<World>, MeasuredDataset, Vec<Metric>) {
    let world = World::generate(gate_world_config(smoke));
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let config = PipelineConfig {
        workers: 1,
        shared_cache: true,
        ..PipelineConfig::default()
    };
    let t0 = Instant::now();
    let (ds, stats) = measure_with_stats(&world, &dep, &config);
    let wall_us = t0.elapsed().as_micros() as u64;
    let metrics = vec![
        Metric::exact("sites", ds.observations.len() as u64),
        Metric::exact("wire_queries", stats.wire_queries),
        Metric::exact("local_cache_hits", stats.local_cache_hits),
        Metric::exact("shared_cache_hits", stats.shared_cache_hits),
        Metric::exact("malformed_datagrams", stats.malformed_datagrams),
        Metric::info("measure_wall_us", wall_us),
    ];
    (Arc::new(world), ds, metrics)
}

/// The deterministic serve phase: a sequential client sweeps a fixed
/// query list twice against a 1-worker server, so every request, cache
/// hit, and cache miss count is exact. Warm latency rides along as info.
fn serve_phase(world: &Arc<World>, ds: &MeasuredDataset) -> Vec<Metric> {
    let snap = Arc::new(CubeSnapshot::from_observations(
        1,
        Arc::clone(world),
        &ds.label,
        &ds.observations,
    ));
    let handle = start(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        snap,
    )
    .expect("start gate server");
    let addr = handle.addr();

    let mut targets = vec!["/healthz".to_string(), "/v1/meta".to_string()];
    for code in ["US", "DE", "FR", "GB", "TH", "JP"] {
        for layer in ["dns", "hosting", "ca"] {
            targets.push(format!("/v1/score/{code}?layer={layer}&replicates=0"));
        }
        targets.push(format!("/v1/insularity/{code}"));
    }
    targets.push("/v1/coverage".to_string());
    for pass in 0..2 {
        for target in &targets {
            let status = get(addr, target);
            assert_eq!(status, 200, "pass {pass}: {target}");
        }
    }

    // Read the counters before the /metrics scrape below perturbs them.
    let stats = handle.stats();
    let cache = handle.cache_stats();
    let warm_p50_us = handle
        .metrics()
        .route_quantile("score", 0.5)
        .map(|s| (s * 1e6) as u64)
        .unwrap_or(0);

    // The exporter itself is part of the gated surface: losing a metric
    // family or series shows up as a series-count change.
    let body = get_body(addr, "/metrics");
    let series_lines = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count() as u64;

    handle.shutdown();
    vec![
        Metric::exact("requests_ok", stats.ok),
        Metric::exact("requests_error", stats.errors),
        Metric::exact("cache_hits", cache.hits),
        Metric::exact("cache_misses", cache.misses),
        Metric::exact("metrics_series", series_lines),
        Metric::info("warm_score_p50_us", warm_p50_us),
    ]
}

/// The deterministic overload phase: three tiny servers driven by a
/// sequential client, each configured so the self-healing machinery
/// fires on *every* request — shed, deadline-abort, and publish-rejection
/// counts are exact integers, not load-dependent rates.
fn overload_phase(world: &Arc<World>, ds: &MeasuredDataset) -> Vec<Metric> {
    let snap = || {
        Arc::new(CubeSnapshot::from_observations(
            1,
            Arc::clone(world),
            &ds.label,
            &ds.observations,
        ))
    };

    // Always-shed: a zero latency budget makes the EWMA comparison
    // (`>=`) true from the first request, so every /v1 dispatch sheds
    // while the exempt routes keep answering.
    let handle = start(
        ServeConfig {
            workers: 1,
            overload: OverloadConfig {
                p99_budget: Duration::ZERO,
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        },
        snap(),
    )
    .expect("start always-shed server");
    let addr = handle.addr();
    let shed_targets = [
        "/v1/meta",
        "/v1/coverage",
        "/v1/score/US?replicates=0",
        "/v1/insularity/DE",
        "/v1/taxonomy",
        "/v1/countries",
    ];
    for target in shed_targets {
        assert_eq!(get(addr, target), 503, "{target} must shed");
    }
    let mut exempt_ok = 0u64;
    for target in ["/healthz", "/metrics"] {
        if get(addr, target) == 200 {
            exempt_ok += 1;
        }
    }
    let shed_load = handle.metrics().shed_load.get();
    let shed_queue = handle.metrics().shed_queue.get();
    handle.shutdown();

    // Deadline-abort: a zero route deadline expires at the first poll of
    // any bootstrap-bearing request, so every CI query aborts exactly
    // once and the worker survives to serve the next.
    let handle = start(
        ServeConfig {
            workers: 1,
            overload: OverloadConfig {
                route_deadline: Duration::ZERO,
                ..OverloadConfig::default()
            },
            ..ServeConfig::default()
        },
        snap(),
    )
    .expect("start deadline server");
    let addr = handle.addr();
    for code in ["US", "DE", "FR", "TH"] {
        assert_eq!(
            get(addr, &format!("/v1/ci/{code}?replicates=200")),
            503,
            "ci/{code} must abort at the deadline"
        );
    }
    assert_eq!(get(addr, "/healthz"), 200, "worker wedged after aborts");
    let deadline_aborts = handle.metrics().deadline_aborts.get();
    handle.shutdown();

    // Publish validation: three distinct poisons, all rejected pre-swap
    // with the serving epoch unchanged.
    let handle = start(ServeConfig::default(), snap()).expect("start publish server");
    let mut cand =
        CubeSnapshot::from_observations(2, Arc::clone(world), &ds.label, &ds.observations);
    cand.taxonomy.clean += 1;
    assert!(
        handle.publish_validated(Arc::new(cand), None).is_err(),
        "tampered taxonomy published"
    );
    let mut cand =
        CubeSnapshot::from_observations(2, Arc::clone(world), &ds.label, &ds.observations);
    cand.trajectory.points.last_mut().expect("point").label = "poisoned".into();
    assert!(
        handle.publish_validated(Arc::new(cand), None).is_err(),
        "tampered trajectory published"
    );
    let stale = CubeSnapshot::from_observations(1, Arc::clone(world), &ds.label, &ds.observations);
    assert!(
        handle.publish_validated(Arc::new(stale), None).is_err(),
        "non-advancing epoch published"
    );
    assert_eq!(handle.epoch(), 1, "serving epoch moved on a rejection");
    let publish_rejected = handle.metrics().publish_rejected.get();
    handle.shutdown();

    vec![
        Metric::exact("shed_load", shed_load),
        Metric::exact("shed_queue", shed_queue),
        Metric::exact("exempt_ok", exempt_ok),
        Metric::exact("deadline_aborts", deadline_aborts),
        Metric::exact("publish_rejected", publish_rejected),
    ]
}

// ----------------------------------------------------------- entry points

fn baselines_path(root: &Path) -> PathBuf {
    root.join(BASELINES_FILE)
}

/// Runs the gate workloads and compares them against
/// `BENCH_baselines.json` under `root`. Missing entries are recorded and
/// pass (first run bootstraps); `update` re-records every gated value.
/// Returns `false` — after appending one alert line per breach — when
/// any gated metric is out of bounds.
pub fn run_gate(root: &Path, smoke: bool, update: bool, log: impl Fn(&str)) -> bool {
    let mode = if smoke { "smoke" } else { "full" };
    log(&format!("gate ({mode}): 1-worker pipeline measurement..."));
    let (world, ds, pipeline_metrics) = pipeline_phase(smoke);
    log(&format!(
        "  {} sites, {} wire queries, {} shared-cache hits",
        pipeline_metrics[0].value, pipeline_metrics[1].value, pipeline_metrics[3].value
    ));
    log("gate: sequential sweep against the query service...");
    let serve_metrics = serve_phase(&world, &ds);
    log(&format!(
        "  {} ok responses, cache {} hits / {} misses, {} exported series",
        serve_metrics[0].value,
        serve_metrics[2].value,
        serve_metrics[3].value,
        serve_metrics[4].value
    ));
    log("gate: deterministic overload machinery (shed / deadline / publish-reject)...");
    let overload_metrics = overload_phase(&world, &ds);
    log(&format!(
        "  {} sheds, {} deadline aborts, {} publishes rejected",
        overload_metrics[0].value, overload_metrics[3].value, overload_metrics[4].value
    ));

    let path = baselines_path(root);
    let mut benches = load_baselines(&path);
    let mut breaches = Vec::new();
    for (bench, metrics) in [
        (format!("gate_pipeline_{mode}"), pipeline_metrics),
        (format!("gate_serve_{mode}"), serve_metrics),
        (format!("gate_overload_{mode}"), overload_metrics),
    ] {
        breaches.extend(merge_bench(&mut benches, &bench, &metrics, update));
    }
    write_baselines(&path, benches);

    if update && !breaches.is_empty() {
        for b in &breaches {
            log(&format!("updated past old baseline: {}", b.line));
        }
        return true;
    }
    for b in &breaches {
        log(&format!("BREACH: {}", b.line));
        append_alert(root, &format!("gate {}", b.line));
    }
    if breaches.is_empty() {
        log(&format!("gate ({mode}): all metrics within baseline"));
        true
    } else {
        log(&format!(
            "gate ({mode}): {} metric(s) out of bounds (see {})",
            breaches.len(),
            ALERTS_FILE
        ));
        false
    }
}

/// Records a full bench run's headline metrics into the baselines file,
/// alerting — without failing the run — when one regresses past its
/// stored threshold. Values are always overwritten: the snapshot files
/// those runs write are the source of truth, the baseline entry is the
/// trend anchor the *next* run is judged against.
pub fn record_headline(root: &Path, bench: &str, metrics: &[Metric]) {
    let path = baselines_path(root);
    let mut benches = load_baselines(&path);
    let breaches = merge_bench(&mut benches, bench, metrics, true);
    write_baselines(&path, benches);
    for b in breaches {
        eprintln!("headline regression (non-fatal): {}", b.line);
        append_alert(root, &format!("headline {}", b.line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("webdep-gate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Threshold math, bootstrap, and alerting — against a scratch
    /// baselines file, no workload involved.
    #[test]
    fn judgement_and_bootstrap() {
        let root = tmp_root("judge");
        let path = baselines_path(&root);

        // First record bootstraps and passes.
        let mut benches = load_baselines(&path);
        let first = [Metric::exact("count", 100), Metric::info("wall_us", 5000)];
        assert!(merge_bench(&mut benches, "t", &first, false).is_empty());
        write_baselines(&path, benches);

        // Same values: pass. Info deviation: pass. Exact deviation: breach.
        let mut benches = load_baselines(&path);
        assert!(merge_bench(&mut benches, "t", &first, false).is_empty());
        let drifted = [Metric::exact("count", 101), Metric::info("wall_us", 9999)];
        let breaches = merge_bench(&mut benches, "t", &drifted, false);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].what, "t.count");

        // Directions honour tolerance from the stored entry.
        let mut benches = load_baselines(&path);
        if let Some(Value::Object(entries)) = obj_get_mut(&mut benches, "t") {
            *obj_get_mut(entries, "count").unwrap() = Value::Object(vec![
                ("value".into(), Value::U64(100)),
                ("tol_pct".into(), Value::U64(10)),
                ("direction".into(), Value::String("up_bad".into())),
            ]);
        }
        let within = [Metric::exact("count", 110)];
        assert!(merge_bench(&mut benches, "t", &within, false).is_empty());
        let above = [Metric::exact("count", 111)];
        assert_eq!(merge_bench(&mut benches, "t", &above, false).len(), 1);
        let below_is_fine = [Metric::exact("count", 1)];
        assert!(merge_bench(&mut benches, "t", &below_is_fine, false).is_empty());

        let _ = std::fs::remove_dir_all(&root);
    }

    /// The non-fatal headline path writes the alert line and still
    /// overwrites the stored value.
    #[test]
    fn headline_records_and_alerts() {
        let root = tmp_root("headline");
        record_headline(
            &root,
            "pipeline",
            &[Metric {
                name: "speedup_permille",
                value: 4000,
                tol_pct: 30,
                direction: Direction::DownBad,
            }],
        );
        // A collapse to a quarter of the recorded speedup breaches.
        record_headline(
            &root,
            "pipeline",
            &[Metric {
                name: "speedup_permille",
                value: 1000,
                tol_pct: 30,
                direction: Direction::DownBad,
            }],
        );
        let alerts = std::fs::read_to_string(root.join(ALERTS_FILE)).unwrap();
        assert!(alerts.contains("headline pipeline.speedup_permille measured 1000"));
        let baselines = std::fs::read_to_string(root.join(BASELINES_FILE)).unwrap();
        assert!(baselines.contains("\"value\": 1000"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
