//! Shared timing harness for the analysis engine.
//!
//! Times the three things `BENCH_analysis.json` reports: the dependence-cube
//! build, the full [`ExperimentSuite`] wall before (tally-on-demand
//! `AnalysisCtx::new_legacy`) and after (cube-backed `AnalysisCtx::new`),
//! and an affinity-propagation sweep at serial vs parallel thread counts.
//! Both the `bench-snapshot` binary and the tier-1 smoke test call these,
//! so the numbers in the JSON and the path the tests exercise stay the
//! same code.

use serde::Serialize;
use std::time::Instant;
use webdep_analysis::{AnalysisCtx, ExperimentSuite};
use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig};
use webdep_stats::affinity::{affinity_propagation, AffinityConfig};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn ms(d: std::time::Duration) -> f64 {
    round3(d.as_secs_f64() * 1e3)
}

/// Wall times for one context build + full suite run.
#[derive(Debug, Serialize)]
pub struct SuiteTiming {
    /// `AnalysisCtx` construction (the cube build, in cube mode).
    pub ctx_build_ms: f64,
    /// `ExperimentSuite::run` wall time.
    pub suite_wall_ms: f64,
    /// Experiments passed / total — both modes must agree.
    pub passed: usize,
    /// Total experiments run.
    pub total: usize,
}

impl SuiteTiming {
    /// Build + run, end to end.
    pub fn end_to_end_ms(&self) -> f64 {
        self.ctx_build_ms + self.suite_wall_ms
    }
}

/// Builds a context (legacy when `legacy`) and runs the full suite once.
pub fn time_suite(world: &World, ds: &MeasuredDataset, legacy: bool) -> SuiteTiming {
    let t0 = Instant::now();
    let ctx = if legacy {
        AnalysisCtx::new_legacy(world, ds)
    } else {
        AnalysisCtx::new(world, ds)
    };
    let ctx_build_ms = ms(t0.elapsed());
    let t1 = Instant::now();
    let suite = ExperimentSuite::run(&ctx, None, None);
    SuiteTiming {
        ctx_build_ms,
        suite_wall_ms: ms(t1.elapsed()),
        passed: suite.passed(),
        total: suite.total(),
    }
}

/// Before/after wall times for one affinity-propagation run.
#[derive(Debug, Serialize)]
pub struct AffinityTiming {
    /// Points clustered (above the parallel threshold when ≥ 384).
    pub points: usize,
    /// The pre-PR sweeps: untiled, `threads = 1`.
    pub baseline_ms: f64,
    /// Cache-tiled sweeps, `threads = 1`.
    pub tiled_serial_ms: f64,
    /// Cache-tiled sweeps with `threads = parallel_threads`.
    pub tiled_parallel_ms: f64,
    /// Thread count of the parallel run.
    pub parallel_threads: usize,
    /// `baseline_ms / min(tiled_serial_ms, tiled_parallel_ms)`.
    pub speedup: f64,
    /// Message-passing sweeps executed (identical in all runs).
    pub sweeps: usize,
    /// Whether all runs produced byte-identical clusterings (must always
    /// be true).
    pub identical: bool,
}

/// Deterministic synthetic feature vectors (three loose Gaussian-ish
/// blobs via xorshift), matching the shape classify feeds the clusterer.
pub fn synthetic_points(n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let center = (i % 3) as f64 * 2.5;
            (0..dims).map(|_| center + next()).collect()
        })
        .collect()
}

/// Clusters `n` synthetic points with the baseline sweeps, the tiled
/// sweeps, and the tiled sweeps across `threads` workers, checking all
/// three agree exactly.
pub fn time_affinity(n: usize, threads: usize) -> AffinityTiming {
    let points = synthetic_points(n, 4);
    let run = |threads: usize, baseline_sweeps: bool| {
        let config = AffinityConfig {
            threads,
            baseline_sweeps,
            ..AffinityConfig::default()
        };
        let t0 = Instant::now();
        let clustering = affinity_propagation(&points, &config).expect("non-empty");
        (ms(t0.elapsed()), clustering)
    };
    let (baseline_ms, baseline) = run(1, true);
    let (tiled_serial_ms, tiled) = run(1, false);
    let (tiled_parallel_ms, parallel) = run(threads, false);
    AffinityTiming {
        points: n,
        baseline_ms,
        tiled_serial_ms,
        tiled_parallel_ms,
        parallel_threads: threads,
        speedup: round3(baseline_ms / tiled_serial_ms.min(tiled_parallel_ms).max(1e-9)),
        sweeps: baseline.iterations,
        identical: baseline == tiled && baseline == parallel,
    }
}

/// The full `BENCH_analysis.json` payload.
#[derive(Debug, Serialize)]
pub struct AnalysisSnapshot {
    /// World scale name (`tiny` / `small` / `paper`).
    pub scale: String,
    /// Measured websites in the dataset.
    pub sites: u64,
    /// Worker threads the parallel passes use on this host.
    pub threads: u64,
    /// Cube build alone (one parallel pass over the observations).
    pub cube_build_ms: f64,
    /// Tally-on-demand context + full suite.
    pub before: SuiteTiming,
    /// Cube-backed context + full suite.
    pub after: SuiteTiming,
    /// End-to-end before / after (the acceptance number).
    pub suite_speedup: f64,
    /// Affinity-propagation sweep, serial vs parallel.
    pub affinity: AffinityTiming,
    /// Peak RSS (`VmHWM`) of the bench process when the snapshot was
    /// assembled (bytes; `None`/JSON `null` off-Linux).
    pub peak_rss_bytes: Option<u64>,
}

/// Generates, deploys, and measures a world at `config` scale, then times
/// legacy vs cube suite runs and an affinity sweep of `affinity_points`.
pub fn analysis_snapshot(
    scale: &str,
    config: WorldConfig,
    affinity_points: usize,
) -> AnalysisSnapshot {
    let world = World::generate(config);
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    drop(dep);

    // Warm (untimed) cube build, then the timed one.
    let _ = AnalysisCtx::new(&world, &ds);
    let t0 = Instant::now();
    let ctx = AnalysisCtx::new(&world, &ds);
    let cube_build_ms = ms(t0.elapsed());
    drop(ctx);

    let before = time_suite(&world, &ds, true);
    let after = time_suite(&world, &ds, false);
    let threads = webdep_stats::par::default_threads();

    AnalysisSnapshot {
        scale: scale.to_string(),
        sites: ds.observations.len() as u64,
        threads: threads as u64,
        cube_build_ms,
        suite_speedup: round3(before.end_to_end_ms() / after.end_to_end_ms().max(1e-9)),
        before,
        after,
        affinity: time_affinity(affinity_points, threads.max(2)),
        peak_rss_bytes: crate::peak_rss_bytes(),
    }
}
