//! The `overload` snapshot: a seeded chaos harness against the resident
//! query service's self-healing machinery.
//!
//! Four storms run against one server, in sequence, so the artifact reads
//! as a narrative: (1) an *unloaded* closed-loop baseline prices the
//! service at its configured capacity; (2) a *slow-loris flood* parks a
//! crowd of stalled connections across the worker pool while fast queries
//! must keep completing and `/healthz` must stay green; (3) *burst
//! storms* at 2–10× capacity drive the admission machinery — below the
//! shed threshold goodput must hold, above it the server trades goodput
//! for survival, shedding with `503 + Retry-After` instead of wedging;
//! (4) a *poisoned publish* phase feeds the server tampered snapshots,
//! all of which must be rejected pre-swap while the prior epoch keeps
//! serving with zero mixed-epoch responses.
//!
//! Between storms, the chunk store the served snapshots were built from
//! is corrupted in place (one seeded byte flip) and healed by
//! `ChunkStore::fsck --repair` from the measurement journal — the healed
//! chunk must be byte-identical to the pristine one, and the *next* epoch
//! must build from the repaired store and publish through validation.
//!
//! Everything is deterministic where the machinery allows: the world,
//! the query interleavings, and the corruption site are all seeded; only
//! wall-clock throughput varies run to run.

use crate::scale::{scale_config, synth_observation};
use serde::Serialize;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use webdep_pipeline::{ChunkStore, ChunkStoreWriter, JournalWriter};
use webdep_serve::snapshot::CubeSnapshot;
use webdep_serve::{start, OverloadConfig, ServeConfig, ServerHandle};
use webdep_webgen::World;

// ----------------------------------------------------------- JSON payload

/// One closed-loop storm's client-side tallies.
#[derive(Serialize)]
pub struct StormOutcome {
    /// Closed-loop clients.
    pub clients: u64,
    /// Responses with status 200.
    pub completed: u64,
    /// Responses with status 503 (shed at admission or dispatch).
    pub shed: u64,
    /// Shed responses that carried a `Retry-After` header.
    pub shed_with_retry_after: u64,
    /// Connections that died without a usable response.
    pub failed: u64,
    /// 200s whose body epoch disagreed with the `X-Webdep-Epoch` header.
    pub mixed_epoch: u64,
    /// Distinct epochs observed across all 200s.
    pub epochs_observed: Vec<u64>,
    /// Completed requests per second over the storm wall.
    pub goodput_rps: f64,
    /// Median completed-request latency in microseconds.
    pub p50_us: u64,
    /// 99th-percentile completed-request latency in microseconds.
    pub p99_us: u64,
}

/// The slow-loris phase: stalled connections plus a fast-query storm.
#[derive(Serialize)]
pub struct LorisPhase {
    /// Stalled connections held open (partial request heads).
    pub lorises: u64,
    /// The fast-query storm that ran through the flood.
    pub fast: StormOutcome,
    /// `/healthz` probes issued mid-flood.
    pub healthz_probes: u64,
    /// Probes that answered 200 (must equal `healthz_probes`).
    pub healthz_ok: u64,
}

/// One burst storm at a multiple of the baseline concurrency.
#[derive(Serialize)]
pub struct BurstPhase {
    /// Concurrency as a multiple of the unloaded baseline.
    pub multiplier: u64,
    /// The storm tallies.
    pub load: StormOutcome,
    /// Admitted goodput over the unloaded baseline (the 4× acceptance
    /// floor is 0.9).
    pub goodput_ratio: f64,
    /// Shed responses over total answered (shed + completed).
    pub shed_rate: f64,
    /// Whether the post-burst probes found a wedged server.
    pub wedged: bool,
}

/// The mid-serve store-corruption phase.
#[derive(Serialize)]
pub struct CorruptionPhase {
    /// Chunks in the store.
    pub chunks: u64,
    /// The seeded chunk index that was garbled.
    pub garbled_chunk: u64,
    /// Report-only fsck found exactly this many corrupt chunks.
    pub detected_corrupt: u64,
    /// Chunk files moved to `quarantine/` by the repair.
    pub quarantined: u64,
    /// Chunks re-encoded from the journal.
    pub healed: u64,
    /// Healed chunk file is byte-identical to the pristine one.
    pub byte_identical: bool,
    /// `/healthz` stayed 200 while the store was corrupt on disk.
    pub served_while_corrupt: bool,
    /// The next epoch built from the repaired store and published
    /// through validation.
    pub next_epoch_published: bool,
}

/// The poisoned-publish phase.
#[derive(Serialize)]
pub struct PoisonPhase {
    /// Tampered snapshots offered to the server.
    pub attempts: u64,
    /// Offers rejected by pre-publish validation (must equal attempts).
    pub rejected: u64,
    /// The storm that ran across the rejections and the recovery publish.
    pub load: StormOutcome,
    /// The serving epoch was unchanged after every rejection.
    pub epoch_held: bool,
    /// Epoch the honest recovery publish landed on.
    pub recovered_epoch: u64,
}

/// Server-side counter totals at the end of the run.
#[derive(Serialize)]
pub struct CounterTotals {
    /// Connections shed blind at the admission cap.
    pub shed_queue: u64,
    /// Requests shed at dispatch (depth or latency threshold).
    pub shed_load: u64,
    /// Requests aborted at their route deadline.
    pub deadline_aborts: u64,
    /// Snapshot publishes rejected by validation.
    pub publish_rejected: u64,
}

/// The full `BENCH_overload.json` payload.
#[derive(Serialize)]
pub struct OverloadSnapshot {
    /// Sites in the served world.
    pub sites: u64,
    /// Server worker threads.
    pub workers: u64,
    /// Dispatch-time shed threshold (queued connections).
    pub shed_depth: u64,
    /// Unloaded closed-loop baseline.
    pub unloaded: StormOutcome,
    /// Slow-loris flood.
    pub loris: LorisPhase,
    /// Burst storms, ascending multiplier.
    pub bursts: Vec<BurstPhase>,
    /// Store corruption and fsck repair.
    pub corruption: CorruptionPhase,
    /// Poisoned publishes and recovery.
    pub poison: PoisonPhase,
    /// Final server counters.
    pub counters: CounterTotals,
    /// `VmHWM` at the end of the run.
    pub peak_rss_bytes: Option<u64>,
}

// ------------------------------------------------------------ http client

struct Resp {
    status: u16,
    epoch: Option<u64>,
    retry_after: Option<u64>,
    body: Vec<u8>,
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    stream.set_nodelay(true).expect("set nodelay");
    stream
}

fn read_response(stream: &mut TcpStream) -> Option<Resp> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let text = std::str::from_utf8(&head).ok()?;
    let mut lines = text.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut epoch = None;
    let mut retry_after = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            } else if name.eq_ignore_ascii_case("x-webdep-epoch") {
                epoch = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).ok()?;
    Some(Resp {
        status,
        epoch,
        retry_after,
        body,
    })
}

fn request(stream: &mut TcpStream, target: &str) -> Option<Resp> {
    write!(stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").ok()?;
    read_response(stream)
}

/// One-shot `Connection: close` probe on a fresh connection.
fn probe(addr: SocketAddr, target: &str) -> Option<Resp> {
    let mut stream = connect(addr);
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    read_response(&mut stream)
}

/// A stalled connection: a partial request head, then silence.
fn slow_loris(addr: SocketAddr) -> TcpStream {
    let mut stream = connect(addr);
    stream.write_all(b"GET /v1/meta HTT").expect("partial head");
    stream
}

// --------------------------------------------------------------- the storm

/// Epoch-bearing cheap queries: every body carries `epoch`, so each
/// response can be checked for header/body epoch agreement.
fn storm_targets() -> Arc<Vec<String>> {
    Arc::new(vec![
        "/v1/meta".into(),
        "/v1/score/US?replicates=0".into(),
        "/v1/insularity/TH".into(),
        "/v1/shares/DE?top=3".into(),
    ])
}

#[derive(Default)]
struct Tally {
    latencies: Vec<u64>,
    shed: u64,
    shed_with_retry: u64,
    failed: u64,
    mixed: u64,
    epochs: BTreeSet<u64>,
}

/// A running storm: closed-loop keep-alive clients splitting the target
/// list round-robin, reconnecting after sheds (the server closes shed
/// connections by design).
struct Storm {
    stop: Arc<AtomicBool>,
    clients: Vec<std::thread::JoinHandle<Tally>>,
    t0: Instant,
}

fn storm_start(addr: SocketAddr, clients: usize) -> Storm {
    let targets = storm_targets();
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let targets = Arc::clone(&targets);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                let mut stream = connect(addr);
                let mut k = c * 7919;
                while !stop.load(Ordering::Relaxed) {
                    let target = &targets[k % targets.len()];
                    k += 1;
                    let q0 = Instant::now();
                    match request(&mut stream, target) {
                        Some(resp) if resp.status == 200 => {
                            tally.latencies.push(q0.elapsed().as_micros() as u64);
                            let parsed: serde_json::Value = serde_json::from_str(
                                std::str::from_utf8(&resp.body).unwrap_or("null"),
                            )
                            .unwrap_or(serde_json::Value::Null);
                            if parsed["epoch"].as_u64() != resp.epoch {
                                tally.mixed += 1;
                            }
                            if let Some(e) = resp.epoch {
                                tally.epochs.insert(e);
                            }
                        }
                        Some(resp) if resp.status == 503 => {
                            tally.shed += 1;
                            if resp.retry_after.is_some() {
                                tally.shed_with_retry += 1;
                            }
                            stream = connect(addr);
                        }
                        Some(_) => {
                            tally.failed += 1;
                            stream = connect(addr);
                        }
                        None => {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            tally.failed += 1;
                            stream = connect(addr);
                        }
                    }
                }
                tally
            })
        })
        .collect();
    Storm {
        stop,
        clients: handles,
        t0: Instant::now(),
    }
}

impl Storm {
    fn finish(self) -> StormOutcome {
        self.stop.store(true, Ordering::Relaxed);
        let clients = self.clients.len() as u64;
        let mut all = Tally::default();
        for c in self.clients {
            let t = c.join().expect("storm client");
            all.latencies.extend(t.latencies);
            all.shed += t.shed;
            all.shed_with_retry += t.shed_with_retry;
            all.failed += t.failed;
            all.mixed += t.mixed;
            all.epochs.extend(t.epochs);
        }
        let wall = self.t0.elapsed();
        all.latencies.sort_unstable();
        StormOutcome {
            clients,
            completed: all.latencies.len() as u64,
            shed: all.shed,
            shed_with_retry_after: all.shed_with_retry,
            failed: all.failed,
            mixed_epoch: all.mixed,
            epochs_observed: all.epochs.iter().copied().collect(),
            goodput_rps: round3(all.latencies.len() as f64 / wall.as_secs_f64().max(1e-9)),
            p50_us: percentile(&all.latencies, 0.50),
            p99_us: percentile(&all.latencies, 0.99),
        }
    }

    fn run_for(self, d: Duration) -> StormOutcome {
        std::thread::sleep(d);
        self.finish()
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// SplitMix64: the corruption site is seeded, not random.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// --------------------------------------------------------------- the bench

/// A store plus the journal that can heal it, both from the same synth
/// observations the snapshots are built from.
fn write_store_and_journal(world: &World, dir: &Path, journal: &Path, chunk_sites: usize) {
    let _ = std::fs::remove_dir_all(dir);
    let mut writer = ChunkStoreWriter::create(dir, &world.label, world.sites.len(), chunk_sites)
        .expect("create store");
    let mut jw =
        JournalWriter::create(journal, &world.label, world.sites.len()).expect("create journal");
    for i in 0..world.sites.len() {
        let obs = synth_observation(world, i);
        writer.commit(i, &obs).expect("commit");
        jw.append(i, &obs).expect("journal append");
    }
    writer.finish().expect("finish store");
    jw.sync().expect("sync journal");
}

fn corruption_phase(
    handle: &ServerHandle,
    world: &Arc<World>,
    store_dir: &Path,
    journal: &Path,
    prev: &CubeSnapshot,
    seed: &mut u64,
    log: &dyn Fn(String),
) -> (CorruptionPhase, Arc<CubeSnapshot>) {
    let chunks = std::fs::read_dir(store_dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("chunk-") && name.ends_with(".col")
        })
        .count();
    let garbled_chunk = (splitmix(seed) % chunks as u64) as usize;
    let chunk_file = store_dir.join(format!("chunk-{garbled_chunk:06}.col"));
    let pristine = std::fs::read(&chunk_file).expect("read pristine chunk");
    let mut garbled = pristine.clone();
    let at = (splitmix(seed) % garbled.len() as u64) as usize;
    garbled[at] ^= 0x5A;
    std::fs::write(&chunk_file, &garbled).expect("garble chunk");
    log(format!(
        "garbled chunk {garbled_chunk}/{chunks} (byte {at} of {}), serving continues off the resident cube",
        pristine.len()
    ));

    // Serving never touches the store after the snapshot is built: the
    // corrupt store must not affect in-flight queries.
    let served_while_corrupt = probe(handle.addr(), "/healthz").map(|r| r.status) == Some(200);

    // Report-only pass sees the damage and touches nothing.
    let report = ChunkStore::fsck(store_dir, Some(journal), false).expect("fsck report");
    let detected_corrupt = report.corrupt.len() as u64;
    // Repair: quarantine the garbled file, re-encode from the journal.
    let repair = ChunkStore::fsck(store_dir, Some(journal), true).expect("fsck repair");
    let healed_bytes = std::fs::read(&chunk_file).unwrap_or_default();
    let byte_identical = healed_bytes == pristine;
    log(format!(
        "fsck: detected {detected_corrupt} corrupt, quarantined {}, healed {} (byte-identical: {byte_identical})",
        repair.quarantined, repair.healed
    ));

    // The self-heal is complete when the *next* epoch builds from the
    // repaired store and survives publish validation.
    let next =
        CubeSnapshot::from_store_extending(prev.epoch + 1, Arc::clone(world), store_dir, prev)
            .expect("rebuild from repaired store");
    let next = Arc::new(next);
    let next_epoch_published = handle.publish_validated(Arc::clone(&next), None).is_ok();

    (
        CorruptionPhase {
            chunks: chunks as u64,
            garbled_chunk: garbled_chunk as u64,
            detected_corrupt,
            quarantined: repair.quarantined as u64,
            healed: repair.healed as u64,
            byte_identical,
            served_while_corrupt,
            next_epoch_published,
        },
        next,
    )
}

fn poison_phase(
    handle: &ServerHandle,
    world: &Arc<World>,
    store_dir: &Path,
    prev: &Arc<CubeSnapshot>,
    storm_clients: usize,
    settle: Duration,
    log: &dyn Fn(String),
) -> PoisonPhase {
    let addr = handle.addr();
    let storm = storm_start(addr, storm_clients);
    std::thread::sleep(settle);

    let build = || {
        CubeSnapshot::from_store_extending(prev.epoch + 1, Arc::clone(world), store_dir, prev)
            .expect("build candidate")
    };
    let mut rejected = 0u64;
    // Poison 1: a tampered taxonomy (the cube no longer refolds to it).
    let mut cand = build();
    cand.taxonomy.clean += 1;
    if let Err(why) = handle.publish_validated(Arc::new(cand), None) {
        log(format!("poisoned taxonomy rejected: {why}"));
        rejected += 1;
    }
    // Poison 2: a trajectory point claiming a different world.
    let mut cand = build();
    cand.trajectory.points.last_mut().expect("point").label = "poisoned-world".into();
    if handle.publish_validated(Arc::new(cand), None).is_err() {
        rejected += 1;
    }
    // Poison 3: a non-advancing epoch (a stale republish).
    let stale = CubeSnapshot::from_store_extending(prev.epoch, Arc::clone(world), store_dir, prev)
        .expect("build stale");
    if handle.publish_validated(Arc::new(stale), None).is_err() {
        rejected += 1;
    }

    let epoch_held = handle.epoch() == prev.epoch;
    std::thread::sleep(settle);

    // Recovery: the honest candidate publishes mid-storm.
    let recovered_epoch = handle
        .publish_validated(Arc::new(build()), None)
        .expect("honest recovery publish");
    std::thread::sleep(settle);
    let load = storm.finish();
    log(format!(
        "{rejected}/3 poisoned publishes rejected, epoch held at {} then recovered to {recovered_epoch}",
        prev.epoch
    ));

    PoisonPhase {
        attempts: 3,
        rejected,
        load,
        epoch_held,
        recovered_epoch,
    }
}

/// Builds the world, starts one service, and runs every chaos phase
/// against it. `smoke` shrinks the world and the storm durations but
/// certifies the exact same invariants — the CI gate runs it on every
/// push.
pub fn overload_snapshot(smoke: bool, log: impl Fn(String)) -> OverloadSnapshot {
    let (spc, unloaded_ms, loris_ms, burst_ms, multipliers): (u32, u64, u64, u64, &[usize]) =
        if smoke {
            (60, 300, 400, 300, &[4])
        } else {
            (300, 2000, 1500, 1500, &[2, 4, 10])
        };
    let base_clients = 4usize;
    let workers = 4usize;
    let lorises = 10usize;
    let mut seed = 0xC0FFEE_u64;

    log(format!("generating world ({spc} sites/country)..."));
    let world = Arc::new(World::generate(scale_config(spc)));
    let tmp = std::env::temp_dir().join(format!("webdep-overload-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    let store_dir = tmp.join("chunks");
    let journal = tmp.join("run.jsonl");
    write_store_and_journal(&world, &store_dir, &journal, 512);

    let overload = OverloadConfig {
        shed_depth: 16,
        ..OverloadConfig::default()
    };
    let shed_depth = overload.shed_depth;
    let snap1 = Arc::new(
        CubeSnapshot::from_store(1, Arc::clone(&world), &store_dir).expect("snapshot from store"),
    );
    let handle = start(
        ServeConfig {
            workers,
            overload,
            ..ServeConfig::default()
        },
        Arc::clone(&snap1),
    )
    .expect("start server");
    let addr = handle.addr();
    log(format!(
        "serving {} sites on {addr} ({workers} workers, shed depth {shed_depth})",
        world.sites.len()
    ));

    // Phase 1: unloaded baseline at capacity concurrency.
    let unloaded = storm_start(addr, base_clients).run_for(Duration::from_millis(unloaded_ms));
    log(format!(
        "unloaded c={base_clients}: {} rps, p50 {} µs, p99 {} µs",
        unloaded.goodput_rps, unloaded.p50_us, unloaded.p99_us
    ));

    // Phase 2: slow-loris flood. The stalled crowd parks across the pool
    // while fast queries and health checks keep completing.
    let held: Vec<TcpStream> = (0..lorises).map(|_| slow_loris(addr)).collect();
    std::thread::sleep(Duration::from_millis(100));
    let storm = storm_start(addr, base_clients);
    let healthz_probes = 5u64;
    let healthz_ok = Mutex::new(0u64);
    let per_probe = Duration::from_millis(loris_ms / healthz_probes);
    for _ in 0..healthz_probes {
        std::thread::sleep(per_probe);
        if probe(addr, "/healthz").map(|r| r.status) == Some(200) {
            *healthz_ok.lock().expect("probe tally") += 1;
        }
    }
    let fast = storm.finish();
    drop(held);
    let loris = LorisPhase {
        lorises: lorises as u64,
        fast,
        healthz_probes,
        healthz_ok: *healthz_ok.lock().expect("probe tally"),
    };
    log(format!(
        "loris flood ({} stalled): fast storm {} rps, p99 {} µs, shed {}, failed {}, healthz {}/{}",
        loris.lorises,
        loris.fast.goodput_rps,
        loris.fast.p99_us,
        loris.fast.shed,
        loris.fast.failed,
        loris.healthz_ok,
        loris.healthz_probes
    ));

    // Phase 3: burst storms. Below the shed threshold the server absorbs
    // the burst at full goodput; above it, shedding is the survival mode.
    let mut bursts = Vec::new();
    for &m in multipliers {
        let load = storm_start(addr, base_clients * m).run_for(Duration::from_millis(burst_ms));
        let answered = load.completed + load.shed;
        let wedged = probe(addr, "/healthz").map(|r| r.status) != Some(200)
            || probe(addr, "/v1/meta").map(|r| r.status) != Some(200);
        let row = BurstPhase {
            multiplier: m as u64,
            goodput_ratio: round3(load.goodput_rps / unloaded.goodput_rps.max(1e-9)),
            shed_rate: round3(load.shed as f64 / (answered.max(1)) as f64),
            wedged,
            load,
        };
        log(format!(
            "burst {m}x (c={}): {} rps ({}x unloaded), shed rate {}, p99 {} µs, wedged {}",
            base_clients * m,
            row.load.goodput_rps,
            row.goodput_ratio,
            row.shed_rate,
            row.load.p99_us,
            row.wedged
        ));
        bursts.push(row);
    }

    // Phase 4: corrupt the store mid-serve, heal it, and build the next
    // epoch from the repaired files.
    let (corruption, snap2) = corruption_phase(
        &handle, &world, &store_dir, &journal, &snap1, &mut seed, &log,
    );

    // Phase 5: poisoned publishes under load, then honest recovery.
    let poison = poison_phase(
        &handle,
        &world,
        &store_dir,
        &snap2,
        base_clients,
        Duration::from_millis(if smoke { 150 } else { 400 }),
        &log,
    );

    let metrics = handle.metrics();
    let counters = CounterTotals {
        shed_queue: metrics.shed_queue.get(),
        shed_load: metrics.shed_load.get(),
        deadline_aborts: metrics.deadline_aborts.get(),
        publish_rejected: metrics.publish_rejected.get(),
    };
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&tmp);

    let snapshot = OverloadSnapshot {
        sites: world.sites.len() as u64,
        workers: workers as u64,
        shed_depth: shed_depth as u64,
        unloaded,
        loris,
        bursts,
        corruption,
        poison,
        counters,
        peak_rss_bytes: crate::peak_rss_bytes(),
    };

    // Acceptance invariants, enforced in smoke and full runs alike.
    assert_eq!(snapshot.unloaded.failed, 0, "unloaded storm saw failures");
    assert_eq!(snapshot.unloaded.shed, 0, "unloaded storm was shed");
    assert_eq!(
        snapshot.loris.fast.failed, 0,
        "fast queries failed behind the loris flood"
    );
    assert_eq!(
        snapshot.loris.fast.shed, 0,
        "fast queries shed below the threshold"
    );
    assert!(
        snapshot.loris.fast.completed > 0,
        "no fast query completed through the flood"
    );
    assert_eq!(
        snapshot.loris.healthz_ok, snapshot.loris.healthz_probes,
        "/healthz failed mid-flood"
    );
    let mut mixed = snapshot.unloaded.mixed_epoch + snapshot.loris.fast.mixed_epoch;
    for b in &snapshot.bursts {
        mixed += b.load.mixed_epoch;
        assert!(!b.wedged, "server wedged after the {}x burst", b.multiplier);
        assert_eq!(
            b.load.shed, b.load.shed_with_retry_after,
            "a shed response lacked Retry-After at {}x",
            b.multiplier
        );
    }
    mixed += snapshot.poison.load.mixed_epoch;
    assert_eq!(mixed, 0, "a response mixed body and header epochs");
    assert!(
        snapshot.corruption.byte_identical,
        "fsck repair did not restore the chunk byte-identically"
    );
    assert_eq!(snapshot.corruption.detected_corrupt, 1);
    assert_eq!(snapshot.corruption.quarantined, 1);
    assert_eq!(snapshot.corruption.healed, 1);
    assert!(snapshot.corruption.served_while_corrupt);
    assert!(snapshot.corruption.next_epoch_published);
    assert_eq!(
        snapshot.poison.rejected, snapshot.poison.attempts,
        "a poisoned publish slipped through validation"
    );
    assert!(
        snapshot.poison.epoch_held,
        "serving epoch moved on a rejection"
    );
    assert_eq!(snapshot.poison.recovered_epoch, 3);
    assert_eq!(
        snapshot.poison.load.epochs_observed,
        vec![2, 3],
        "poison storm observed epochs other than the held and recovered ones"
    );
    assert_eq!(snapshot.counters.publish_rejected, 3);
    if !smoke {
        let four_x = snapshot
            .bursts
            .iter()
            .find(|b| b.multiplier == 4)
            .expect("full run includes the 4x burst");
        assert!(
            four_x.goodput_ratio >= 0.9,
            "4x burst goodput fell to {}x of unloaded (floor 0.9)",
            four_x.goodput_ratio
        );
    }
    snapshot
}
