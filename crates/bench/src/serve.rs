//! The `serve` snapshot: closed-loop load against the resident query
//! service.
//!
//! Level 1 is the *cold sweep*: every distinct query in the catalog, once,
//! against an empty cache — so its percentiles price the actual analysis
//! work (the catalog is majority CI-bearing queries, so the median cold
//! request is a bootstrap run). Higher levels replay the same catalog
//! from N closed-loop keep-alive clients against the now-warm cache, so
//! they price the serving path itself: parse → snapshot load → cache hit
//! → write. Per-level cache hit rates are reported so the cold/warm
//! asymmetry is explicit rather than hidden.
//!
//! The swap phase publishes two fresh epochs mid-storm and certifies the
//! acceptance invariants: zero failed requests, zero responses whose body
//! epoch disagrees with their `X-Webdep-Epoch` header, and per-client
//! epoch monotonicity (stale cache entries are never served after a
//! swap).
//!
//! Everything runs single-box over loopback; on the 1-core bench host the
//! closed-loop p99 at concurrency N is queueing-dominated (Little's law),
//! which is exactly why the warm levels must stay an order of magnitude
//! under the cold median for the service to be worth running resident.

use crate::scale::{scale_config, synth_observation};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webdep_analysis::AnalysisCtx;
use webdep_core::centralization_score;
use webdep_pipeline::MeasuredDataset;
use webdep_serve::snapshot::CubeSnapshot;
use webdep_serve::{start, ServeConfig, ServerHandle};
use webdep_webgen::{Layer, World, COUNTRIES};

/// One concurrency level's measurements.
#[derive(Serialize)]
pub struct LevelSnapshot {
    /// Closed-loop client count.
    pub concurrency: u64,
    /// Requests issued at this level.
    pub requests: u64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Aggregate requests per second.
    pub rps: f64,
    /// Response-cache hit rate over this level's lookups.
    pub cache_hit_rate: f64,
    /// Whether this level ran against an empty cache.
    pub cold: bool,
}

/// The cold-query-vs-cached-requery pair.
#[derive(Serialize)]
pub struct ColdCachedPair {
    /// First issue of a CI-bearing query (cache miss, bootstrap runs).
    pub cold_us: u64,
    /// Immediate re-issue (cache hit).
    pub cached_us: u64,
    /// cold / cached.
    pub speedup: f64,
}

/// The epoch-swap-under-load phase.
#[derive(Serialize)]
pub struct SwapSnapshot {
    /// Closed-loop clients during the storm.
    pub concurrency: u64,
    /// Requests completed during the storm.
    pub requests: u64,
    /// Distinct epochs observed by clients.
    pub epochs_observed: Vec<u64>,
    /// Responses with non-2xx status (must be 0).
    pub failed: u64,
    /// Responses whose body epoch disagreed with the header (must be 0).
    pub mixed_epoch: u64,
    /// Epoch-regression observations across any single client (must be 0).
    pub epoch_regressions: u64,
    /// Stale cache entries purged by the two publishes.
    pub stale_purged: u64,
}

/// The full `BENCH_serve.json` payload.
#[derive(Serialize)]
pub struct ServeSnapshot {
    /// Sites in the served world.
    pub sites: u64,
    /// Distinct queries in the catalog.
    pub distinct_queries: u64,
    /// Bootstrap replicates used by CI-bearing catalog queries.
    pub replicates: u64,
    /// Server worker threads.
    pub workers: u64,
    /// Wall time to build + publish the initial snapshot.
    pub snapshot_build_ms: u64,
    /// Served-vs-direct spot checks passed.
    pub consistency_ok: bool,
    /// Per-concurrency-level measurements (level 1 is the cold sweep).
    pub levels: Vec<LevelSnapshot>,
    /// Cold vs cached single-query pair.
    pub cold_vs_cached: ColdCachedPair,
    /// Epoch swap under load.
    pub swap: SwapSnapshot,
    /// p99 at the top level over p50 at concurrency 1 (acceptance: ≤ 10).
    pub p99_top_over_p50_c1: f64,
    /// `VmHWM` at the end of the run.
    pub peak_rss_bytes: Option<u64>,
}

// ------------------------------------------------------------ http client

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    stream.set_nodelay(true).expect("set nodelay");
    stream
}

/// One response read off a keep-alive connection: status, epoch header,
/// body.
fn read_response(stream: &mut TcpStream) -> Option<(u16, Option<u64>, Vec<u8>)> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) | Err(_) => return None,
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let text = std::str::from_utf8(&head).ok()?;
    let mut lines = text.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut epoch = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            } else if name.eq_ignore_ascii_case("x-webdep-epoch") {
                epoch = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).ok()?;
    Some((status, epoch, body))
}

fn request(stream: &mut TcpStream, target: &str) -> Option<(u16, Option<u64>, Vec<u8>)> {
    write!(stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").ok()?;
    read_response(stream)
}

fn get_value(addr: SocketAddr, target: &str) -> serde_json::Value {
    let mut stream = connect(addr);
    let (status, _, body) = request(&mut stream, target).expect("response");
    assert_eq!(status, 200, "{target}");
    serde_json::from_str(std::str::from_utf8(&body).expect("utf8")).expect("json")
}

// -------------------------------------------------------------- the bench

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Deterministic Fisher–Yates (SplitMix64 driver) so the cold sweep
/// interleaves heavy and light queries identically across runs.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The query catalog: every per-country CI-bearing panel (score, ci,
/// badge — the "heavy" majority) plus every cheap per-country and global
/// route. Defaults are spelled out so catalog keys match the router's
/// canonical cache keys.
fn catalog(replicates: usize) -> Vec<String> {
    let mut queries = Vec::new();
    for c in COUNTRIES.iter() {
        for layer in ["hosting", "dns", "ca", "tld"] {
            queries.push(format!(
                "/v1/score/{}?layer={layer}&replicates={replicates}",
                c.code
            ));
            queries.push(format!(
                "/v1/ci/{}?layer={layer}&replicates={replicates}",
                c.code
            ));
            queries.push(format!("/v1/shares/{}?layer={layer}&top=10", c.code));
            queries.push(format!("/v1/insularity/{}?layer={layer}", c.code));
        }
        queries.push(format!("/v1/badge/{}?replicates={replicates}", c.code));
    }
    for layer in ["hosting", "dns", "ca", "tld"] {
        queries.push(format!("/v1/top?layer={layer}&n=10"));
    }
    queries.push("/v1/coverage".to_string());
    queries.push("/v1/taxonomy".to_string());
    queries.push("/v1/meta".to_string());
    queries.push("/v1/countries".to_string());
    shuffle(&mut queries, 0xC0FFEE);
    queries
}

/// Builds a hollow snapshot (cube + taxonomy, no resident observations)
/// from the shared synthetic dataset — serving never needs the
/// observation vector resident, and the bench should not pay three
/// resident copies just to have three epochs to publish.
fn hollow_snapshot(epoch: u64, world: &Arc<World>, ds: &MeasuredDataset) -> Arc<CubeSnapshot> {
    Arc::new(CubeSnapshot::from_observations(
        epoch,
        Arc::clone(world),
        &ds.label,
        &ds.observations,
    ))
}

/// Runs one closed-loop level: `concurrency` keep-alive clients splitting
/// the target list round-robin (offset per client), measuring per-request
/// latency client-side. Returns sorted latencies and the wall time.
fn run_level(
    addr: SocketAddr,
    targets: &Arc<Vec<String>>,
    concurrency: usize,
    total_requests: usize,
    errors: &Arc<AtomicU64>,
) -> (Vec<u64>, Duration) {
    let per_client = total_requests.div_ceil(concurrency);
    let t0 = Instant::now();
    let clients: Vec<_> = (0..concurrency)
        .map(|c| {
            let targets = Arc::clone(targets);
            let errors = Arc::clone(errors);
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                let mut lat = Vec::with_capacity(per_client);
                for k in 0..per_client {
                    let target = &targets[(c * 7919 + k) % targets.len()];
                    let q0 = Instant::now();
                    match request(&mut stream, target) {
                        Some((200, _, _)) => lat.push(q0.elapsed().as_micros() as u64),
                        Some(_) | None => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            // Reconnect and continue; failures are counted.
                            stream = connect(addr);
                        }
                    }
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<u64> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("level client"))
        .collect();
    let wall = t0.elapsed();
    all.sort_unstable();
    (all, wall)
}

fn level_snapshot(
    concurrency: usize,
    latencies: &[u64],
    wall: Duration,
    hit_delta: u64,
    lookup_delta: u64,
    cold: bool,
) -> LevelSnapshot {
    LevelSnapshot {
        concurrency: concurrency as u64,
        requests: latencies.len() as u64,
        p50_us: percentile(latencies, 0.50),
        p90_us: percentile(latencies, 0.90),
        p99_us: percentile(latencies, 0.99),
        rps: round3(latencies.len() as f64 / wall.as_secs_f64().max(1e-9)),
        cache_hit_rate: if lookup_delta == 0 {
            0.0
        } else {
            round3(hit_delta as f64 / lookup_delta as f64)
        },
        cold,
    }
}

/// Spot-checks that served numbers are identical to a directly-built
/// [`AnalysisCtx`] over the same data.
fn consistency_check(addr: SocketAddr, world: &World, ds: &MeasuredDataset) -> bool {
    let ctx = AnalysisCtx::new(world, ds);
    let mut ok = true;
    for code in ["US", "TH", "BR"] {
        let ci = World::country_index(code).expect("country");
        let body = get_value(addr, &format!("/v1/score/{code}?replicates=0"));
        let dist = ctx.country_dist(ci, Layer::Hosting).expect("dist");
        ok &= body["s"].as_f64() == Some(centralization_score(&dist));
        let served_ci = get_value(addr, &format!("/v1/ci/{code}?replicates=64&seed=9"));
        let expect = ctx.score_ci(ci, Layer::Hosting, 64, 0.95, 9).expect("ci");
        ok &= served_ci["ci"]["point"].as_f64() == Some(expect.point)
            && served_ci["ci"]["lo"].as_f64() == Some(expect.lo)
            && served_ci["ci"]["hi"].as_f64() == Some(expect.hi);
    }
    let tax = ds.failure_taxonomy();
    let body = get_value(addr, "/v1/taxonomy");
    ok &= body["total"].as_u64() == Some(tax.total) && body["clean"].as_u64() == Some(tax.clean);
    ok
}

/// The swap storm: clients hammer cheap queries while two new epochs are
/// published; every response is checked for status, header/body epoch
/// agreement, and per-client epoch monotonicity.
fn swap_phase(
    handle: &ServerHandle,
    world: &Arc<World>,
    ds: &MeasuredDataset,
    concurrency: usize,
    log: &dyn Fn(String),
) -> SwapSnapshot {
    let addr = handle.addr();
    let targets: Vec<String> = vec![
        "/v1/score/US?replicates=0".into(),
        "/v1/insularity/TH".into(),
        "/v1/shares/DE?top=3".into(),
        "/v1/meta".into(),
    ];
    let targets = Arc::new(targets);
    let stop = Arc::new(AtomicBool::new(false));
    let failed = Arc::new(AtomicU64::new(0));
    let mixed = Arc::new(AtomicU64::new(0));
    let regressions = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let epochs_seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));

    let clients: Vec<_> = (0..concurrency)
        .map(|c| {
            let targets = Arc::clone(&targets);
            let stop = Arc::clone(&stop);
            let failed = Arc::clone(&failed);
            let mixed = Arc::clone(&mixed);
            let regressions = Arc::clone(&regressions);
            let completed = Arc::clone(&completed);
            let epochs_seen = Arc::clone(&epochs_seen);
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                let mut last_epoch = 0u64;
                let mut k = c;
                while !stop.load(Ordering::Relaxed) {
                    let target = &targets[k % targets.len()];
                    k += 1;
                    match request(&mut stream, target) {
                        Some((200, Some(header_epoch), body)) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            let parsed: serde_json::Value =
                                serde_json::from_str(std::str::from_utf8(&body).unwrap_or("null"))
                                    .unwrap_or(serde_json::Value::Null);
                            if parsed["epoch"].as_u64() != Some(header_epoch) {
                                mixed.fetch_add(1, Ordering::Relaxed);
                            }
                            if header_epoch < last_epoch {
                                regressions.fetch_add(1, Ordering::Relaxed);
                            }
                            last_epoch = header_epoch;
                            epochs_seen.lock().expect("epoch set").insert(header_epoch);
                        }
                        Some(_) | None => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            stream = connect(addr);
                        }
                    }
                }
            })
        })
        .collect();

    // Two publishes, spaced so the storm observes all three epochs.
    std::thread::sleep(Duration::from_millis(150));
    let b0 = Instant::now();
    let snap2 = hollow_snapshot(2, world, ds);
    log(format!(
        "  epoch 2 built in {} ms, publishing mid-storm",
        b0.elapsed().as_millis()
    ));
    handle.publish(snap2);
    std::thread::sleep(Duration::from_millis(150));
    let snap3 = hollow_snapshot(3, world, ds);
    handle.publish(snap3);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("swap client");
    }

    let epochs_observed: Vec<u64> = epochs_seen
        .lock()
        .expect("epoch set")
        .iter()
        .copied()
        .collect();
    SwapSnapshot {
        concurrency: concurrency as u64,
        requests: completed.load(Ordering::Relaxed),
        epochs_observed,
        failed: failed.load(Ordering::Relaxed),
        mixed_epoch: mixed.load(Ordering::Relaxed),
        epoch_regressions: regressions.load(Ordering::Relaxed),
        stale_purged: handle.cache_stats().stale_purged,
    }
}

/// Builds the world, starts the service, and runs every phase. `smoke`
/// shrinks the world and replicate counts and skips nothing structural —
/// the CI gate runs the exact same code.
pub fn serve_snapshot(smoke: bool, log: impl Fn(String)) -> ServeSnapshot {
    let (spc, replicates, levels, warm_requests): (u32, usize, &[usize], usize) = if smoke {
        (100, 50, &[1, 4], 1200)
    } else {
        (2000, 300, &[1, 4, 16, 64], 8192)
    };
    let top_level = *levels.last().expect("levels");

    log(format!("generating world ({spc} sites/country)..."));
    let world = Arc::new(World::generate(scale_config(spc)));
    let ds = MeasuredDataset {
        observations: (0..world.sites.len())
            .map(|i| synth_observation(&world, i))
            .collect(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    };

    let t0 = Instant::now();
    let snap1 = hollow_snapshot(1, &world, &ds);
    let snapshot_build_ms = t0.elapsed().as_millis() as u64;
    let config = ServeConfig {
        workers: top_level + 8,
        ..ServeConfig::default()
    };
    let workers = config.workers;
    let handle = start(config, snap1).expect("start server");
    let addr = handle.addr();
    log(format!(
        "serving {} sites on {addr} ({} workers, snapshot built in {snapshot_build_ms} ms)",
        world.sites.len(),
        workers
    ));

    let consistency_ok = consistency_check(addr, &world, &ds);
    log(format!("consistency spot-checks: {consistency_ok}"));
    // The spot checks warmed a few entries; drop them so the cold sweep
    // is actually cold.
    let baseline = handle.cache_stats();

    let targets = Arc::new(catalog(replicates));
    let errors = Arc::new(AtomicU64::new(0));
    let mut level_rows = Vec::new();
    let mut stats_before = baseline;
    for (li, &concurrency) in levels.iter().enumerate() {
        let cold = li == 0;
        let requests = if cold { targets.len() } else { warm_requests };
        let (lat, wall) = run_level(addr, &targets, concurrency, requests, &errors);
        let stats_after = handle.cache_stats();
        let hit_delta = stats_after.hits - stats_before.hits;
        let lookup_delta =
            (stats_after.hits + stats_after.misses) - (stats_before.hits + stats_before.misses);
        stats_before = stats_after;
        let row = level_snapshot(concurrency, &lat, wall, hit_delta, lookup_delta, cold);
        log(format!(
            "  c={:>2} {} requests: p50 {} µs, p90 {} µs, p99 {} µs, {} rps, hit rate {:.3}{}",
            concurrency,
            row.requests,
            row.p50_us,
            row.p90_us,
            row.p99_us,
            row.rps,
            row.cache_hit_rate,
            if cold { " (cold sweep)" } else { "" }
        ));
        level_rows.push(row);
    }

    // Cold vs cached: a CI query outside the catalog (distinct seed).
    let pair_target = format!("/v1/ci/US?replicates={replicates}&seed=777");
    let mut stream = connect(addr);
    let q0 = Instant::now();
    let cold_resp = request(&mut stream, &pair_target).expect("cold pair");
    let cold_us = q0.elapsed().as_micros() as u64;
    let q1 = Instant::now();
    let warm_resp = request(&mut stream, &pair_target).expect("cached pair");
    let cached_us = q1.elapsed().as_micros() as u64;
    assert_eq!(cold_resp.0, 200);
    assert_eq!(warm_resp.0, 200);
    assert_eq!(cold_resp.2, warm_resp.2, "cached body must be identical");
    let pair = ColdCachedPair {
        cold_us,
        cached_us,
        speedup: round3(cold_us as f64 / cached_us.max(1) as f64),
    };
    log(format!(
        "  cold {} µs vs cached {} µs ({}x)",
        pair.cold_us, pair.cached_us, pair.speedup
    ));

    log("swap storm: publishing 2 fresh epochs under load...".to_string());
    let swap = swap_phase(&handle, &world, &ds, 8, &log);
    log(format!(
        "  {} requests across epochs {:?}: failed {}, mixed-epoch {}, regressions {}",
        swap.requests, swap.epochs_observed, swap.failed, swap.mixed_epoch, swap.epoch_regressions
    ));

    let server_stats = handle.stats();
    handle.shutdown();

    let p50_c1 = level_rows.first().expect("levels").p50_us.max(1);
    let p99_top = level_rows.last().expect("levels").p99_us;
    let snapshot = ServeSnapshot {
        sites: world.sites.len() as u64,
        distinct_queries: targets.len() as u64,
        replicates: replicates as u64,
        workers: workers as u64,
        snapshot_build_ms,
        consistency_ok,
        levels: level_rows,
        cold_vs_cached: pair,
        swap,
        p99_top_over_p50_c1: round3(p99_top as f64 / p50_c1 as f64),
        peak_rss_bytes: crate::peak_rss_bytes(),
    };

    // Acceptance invariants, enforced in smoke and full runs alike.
    assert!(
        snapshot.consistency_ok,
        "served answers diverged from AnalysisCtx"
    );
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "load levels saw non-200 responses"
    );
    assert_eq!(snapshot.swap.failed, 0, "swap storm saw failed requests");
    assert_eq!(
        snapshot.swap.mixed_epoch, 0,
        "a response mixed body and header epochs"
    );
    assert_eq!(
        snapshot.swap.epoch_regressions, 0,
        "a client observed an epoch regression (stale cache after swap)"
    );
    assert_eq!(server_stats.errors, 0, "server counted request errors");
    assert!(
        snapshot.cold_vs_cached.speedup > 3.0,
        "cached re-query not measurably faster than cold ({}x)",
        snapshot.cold_vs_cached.speedup
    );
    if !smoke {
        assert!(
            snapshot.p99_top_over_p50_c1 <= 10.0,
            "p99 at c={top_level} is {}x the cold c=1 median (limit 10x)",
            snapshot.p99_top_over_p50_c1
        );
        assert!(
            snapshot.swap.epochs_observed == vec![1, 2, 3],
            "storm did not observe all three epochs: {:?}",
            snapshot.swap.epochs_observed
        );
    }
    snapshot
}
