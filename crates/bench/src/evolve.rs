//! The `evolve` snapshot: O(churn) incremental epochs.
//!
//! A continuous measurement loop pays three bills per epoch: re-measuring
//! the world, rebuilding the dependence cube, and re-publishing the
//! serving snapshot. The incremental path (`measure_delta` +
//! `CubeSnapshot::from_delta`) claims all three are O(churn), not
//! O(world); this bench prices that claim against the from-scratch
//! comparators on the same evolved worlds.
//!
//! Per churn level (≈2% / 10% / 35%), a base world is generated once,
//! measured from scratch, and then evolved through several epochs. Every
//! epoch is measured **both** ways — `measure_delta` against the previous
//! epoch's store, and a from-scratch `measure_streamed` of the identical
//! evolved world under the identical pinned deployment — and the two
//! stores are certified byte-identical (manifest plus every chunk file)
//! before either timing counts. The cube side is priced twice:
//!
//! * **apply** — the `CubeBuilder` delta unit (clone the previous epoch's
//!   builder, grow it to the evolved site table, refold only dirty
//!   chunks) vs a from-scratch fold over every chunk, certified by the
//!   two finished cubes rendering byte-identical reports;
//! * **publish** — the full serving-snapshot constructors,
//!   `CubeSnapshot::from_delta` vs `from_store`, certified by taxonomy
//!   equality. Publish includes the cube's O(toplists) projection
//!   (`finish`) that both constructors share, so its speedup is bounded
//!   by that common tail; the apply rows isolate the O(churn) claim.
//!
//! Epochs here churn toplists without in-place provider migration: churn
//! appends fresh sites, so clean chunks are adopted wholesale and the
//! delta path's cost tracks the dirty set. Migration deliberately dirties
//! sites mid-store — that path (clean-row re-commit, adoption loss) is
//! correctness-covered by `webdep-pipeline`'s delta tests and priced
//! implicitly by the `rows_recommitted` column staying near zero here.

use crate::peak_rss_bytes;
use serde::Serialize;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use webdep_analysis::{AnalysisCtx, CubeBuilder};
use webdep_pipeline::run::{measure_streamed, PipelineConfig};
use webdep_pipeline::{measure_delta, ChunkStore, MeasuredDataset};
use webdep_serve::CubeSnapshot;
use webdep_webgen::{
    provider_site_counts, DeployConfig, DeployedWorld, EpochKnobs, EvolutionPlan, World, WorldDelta,
};

/// One evolved epoch, priced both ways.
#[derive(Serialize)]
pub struct EpochRow {
    /// Serving epoch the delta publishes (base epoch is 1).
    pub epoch: u64,
    /// Sites in the evolved world.
    pub sites_total: u64,
    /// Dirty sites the delta path re-measured.
    pub sites_remeasured: u64,
    /// `sites_remeasured / sites_total`.
    pub remeasured_fraction: f64,
    /// Clean chunks hard-linked from the previous store.
    pub chunks_adopted: u64,
    /// Chunks in the new store.
    pub chunks_total: u64,
    /// Clean rows re-committed out of partially dirty chunks.
    pub rows_recommitted: u64,
    /// Wall of `measure_delta` (previous store + dirty re-measure).
    pub delta_measure_ms: f64,
    /// Wall of the from-scratch `measure_streamed` comparator.
    pub full_measure_ms: f64,
    /// `full_measure_ms / delta_measure_ms`.
    pub measure_speedup: f64,
    /// Wall of the cube delta apply: clone the previous epoch's builder,
    /// grow to the new site table, refold dirty chunks only.
    pub cube_apply_ms: f64,
    /// Wall of the from-scratch comparator: fresh builder, fold every
    /// chunk of the new store.
    pub cube_rebuild_ms: f64,
    /// `cube_rebuild_ms / cube_apply_ms`.
    pub cube_speedup: f64,
    /// Wall of `CubeSnapshot::from_delta` (apply + shared projection).
    pub publish_delta_ms: f64,
    /// Wall of the `CubeSnapshot::from_store` rebuild.
    pub publish_rebuild_ms: f64,
    /// `publish_rebuild_ms / publish_delta_ms`.
    pub publish_speedup: f64,
    /// Delta store byte-identical to the from-scratch store, the applied
    /// and rebuilt cubes rendering identical reports, and the
    /// delta-published snapshot's failure taxonomy identical to the
    /// rebuilt one.
    pub certified_identical: bool,
}

/// All epochs at one churn level.
#[derive(Serialize)]
pub struct ChurnSweep {
    /// Fraction of each country's local toplist replaced per epoch.
    pub churn: f64,
    /// Per-epoch rows, in order.
    pub epochs: Vec<EpochRow>,
    /// Geometric mean of the epochs' measure speedups.
    pub mean_measure_speedup: f64,
    /// Geometric mean of the epochs' cube speedups.
    pub mean_cube_speedup: f64,
}

/// The `BENCH_evolve.json` payload.
#[derive(Serialize)]
pub struct EvolveSnapshot {
    /// Sites in each sweep's base world.
    pub sites_base: u64,
    /// Measurement worker threads.
    pub workers: u64,
    /// Epochs evolved per churn level.
    pub epochs_per_sweep: u64,
    /// One sweep per churn level, ascending.
    pub sweeps: Vec<ChurnSweep>,
    /// `VmHWM` of the bench process (all sweeps share it; the streaming
    /// paths hold one chunk at a time, so the resident worlds dominate).
    pub peak_rss_bytes: Option<u64>,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webdep-evolve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn ms(d: std::time::Duration) -> f64 {
    round3(d.as_secs_f64() * 1e3)
}

fn geo_mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    round3((log_sum / n as f64).exp())
}

/// Byte-level store equality: manifest and every chunk file, plus no
/// stray entries — the same contract the pipeline's delta tests assert.
fn stores_identical(a: &Path, b: &Path) -> bool {
    let Ok(store) = ChunkStore::open(a) else {
        return false;
    };
    let files: Vec<String> = std::iter::once("manifest.json".to_string())
        .chain((0..store.num_chunks()).map(|c| format!("chunk-{c:06}.col")))
        .collect();
    for f in &files {
        match (std::fs::read(a.join(f)), std::fs::read(b.join(f))) {
            (Ok(x), Ok(y)) if x == y => {}
            _ => return false,
        }
    }
    match (std::fs::read_dir(a), std::fs::read_dir(b)) {
        (Ok(x), Ok(y)) => x.count() == y.count(),
        _ => false,
    }
}

/// Folds every chunk of the store at `dir` into a fresh builder — the
/// from-scratch comparator for the cube apply.
fn fold_full(dir: &Path, sites: usize, ids: &HashMap<String, u32>) -> CubeBuilder {
    let store = ChunkStore::open(dir).expect("open store");
    let mut builder = CubeBuilder::new(sites);
    for c in 0..store.num_chunks() {
        let chunk = store.read_chunk(c).expect("read chunk");
        builder.fold_chunk(&chunk, ids);
    }
    builder
}

/// The cube delta-apply unit: clone the previous epoch's builder, grow it
/// to the evolved site table, and refold only the chunks holding dirty
/// sites (clean rows in those chunks overwrite idempotently).
fn fold_delta(
    prev: &CubeBuilder,
    dir: &Path,
    delta: &WorldDelta,
    ids: &HashMap<String, u32>,
) -> CubeBuilder {
    let mut builder = prev.clone();
    builder.grow(delta.to_sites);
    let dirty = delta.dirty();
    let store = ChunkStore::open(dir).expect("open store");
    let k = store.chunk_sites;
    for c in 0..store.num_chunks() {
        let lo = c * k;
        let rows = store.chunk_rows(c);
        if dirty[lo..lo + rows].iter().any(|&d| d) {
            let chunk = store.read_chunk(c).expect("read chunk");
            builder.fold_chunk(&chunk, ids);
        }
    }
    builder
}

/// Renders the finished cube through the scale bench's canonical report —
/// the byte-level certificate that two builders agree.
fn builder_report(builder: &CubeBuilder, world: &World) -> String {
    let cube = builder.finish(world, &world.toplists, &world.global_top);
    let hollow = MeasuredDataset {
        observations: Vec::new(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    };
    crate::scale::cube_report(&AnalysisCtx::with_cube(world, &hollow, cube))
}

/// Evolves one base world through `epochs` churn-only epochs, timing the
/// incremental path against the from-scratch comparators at each step.
fn churn_sweep(
    churn: f64,
    epochs: usize,
    sites_per_country: u32,
    workers: usize,
    log: &impl Fn(&str),
) -> ChurnSweep {
    let config = PipelineConfig {
        workers,
        ..Default::default()
    };
    let base = World::generate(crate::scale::scale_config(sites_per_country));
    let census = Arc::new(provider_site_counts(&base));
    let pinned = DeployConfig {
        pool_sites: Some(Arc::clone(&census)),
        ..DeployConfig::default()
    };
    // Churn only: appended replacements keep every full previous chunk
    // clean, which is the O(churn) case this bench prices (see module
    // docs for why migration is excluded).
    let plan = EvolutionPlan {
        seed: 23,
        epochs: vec![
            EpochKnobs {
                migration: 0.0,
                ..EpochKnobs::steady(churn)
            };
            epochs
        ],
    };

    let dep = DeployedWorld::deploy(&base, pinned.clone());
    let mut prev_dir = scratch(&format!("c{}-base", (churn * 100.0) as u32));
    measure_streamed(&base, &dep, &config, &prev_dir, None).expect("measure base epoch");
    drop(dep);
    let ids: HashMap<String, u32> = base
        .universe
        .tlds
        .iter()
        .map(|t| (t.label.clone(), t.id))
        .collect();
    let mut builder = fold_full(&prev_dir, base.sites.len(), &ids);
    let mut world = Arc::new(base);
    let mut snapshot =
        CubeSnapshot::from_store(1, Arc::clone(&world), &prev_dir).expect("base snapshot");

    let mut rows = Vec::with_capacity(epochs);
    for e in 0..epochs {
        let (next, delta) = plan.evolve_epoch(&world, e);
        delta
            .certify_unchanged(&world, &next)
            .expect("evolution certificate");
        let next = Arc::new(next);
        let epoch = snapshot.epoch + 1;
        let dep = DeployedWorld::deploy(&next, pinned.clone());

        let full_dir = scratch(&format!("c{}-e{e}-full", (churn * 100.0) as u32));
        let t0 = Instant::now();
        measure_streamed(&next, &dep, &config, &full_dir, None).expect("full comparator");
        let full_measure = t0.elapsed();

        let delta_dir = scratch(&format!("c{}-e{e}-delta", (churn * 100.0) as u32));
        let t0 = Instant::now();
        let stats = measure_delta(&next, &dep, &config, &delta, &prev_dir, &delta_dir, None)
            .expect("delta measure");
        let delta_measure = t0.elapsed();
        drop(dep);

        let mut certified = stores_identical(&full_dir, &delta_dir);

        let t0 = Instant::now();
        let rebuilt_builder = fold_full(&delta_dir, next.sites.len(), &ids);
        let cube_rebuild = t0.elapsed();
        let t0 = Instant::now();
        let applied_builder = fold_delta(&builder, &delta_dir, &delta, &ids);
        let cube_apply = t0.elapsed();
        certified &=
            builder_report(&applied_builder, &next) == builder_report(&rebuilt_builder, &next);

        let t0 = Instant::now();
        let rebuilt = CubeSnapshot::from_store(epoch, Arc::clone(&next), &delta_dir)
            .expect("from-store rebuild");
        let publish_rebuild = t0.elapsed();
        let t0 = Instant::now();
        let applied =
            CubeSnapshot::from_delta(epoch, Arc::clone(&next), &snapshot, &delta, &delta_dir)
                .expect("from-delta apply");
        let publish_delta = t0.elapsed();
        certified &= applied.taxonomy == rebuilt.taxonomy;

        let row = EpochRow {
            epoch,
            sites_total: stats.sites_total as u64,
            sites_remeasured: stats.sites_remeasured as u64,
            remeasured_fraction: round3(stats.sites_remeasured as f64 / stats.sites_total as f64),
            chunks_adopted: stats.chunks_adopted as u64,
            chunks_total: stats.chunks_total as u64,
            rows_recommitted: stats.rows_recommitted as u64,
            delta_measure_ms: ms(delta_measure),
            full_measure_ms: ms(full_measure),
            measure_speedup: round3(full_measure.as_secs_f64() / delta_measure.as_secs_f64()),
            cube_apply_ms: ms(cube_apply),
            cube_rebuild_ms: ms(cube_rebuild),
            cube_speedup: round3(cube_rebuild.as_secs_f64() / cube_apply.as_secs_f64()),
            publish_delta_ms: ms(publish_delta),
            publish_rebuild_ms: ms(publish_rebuild),
            publish_speedup: round3(publish_rebuild.as_secs_f64() / publish_delta.as_secs_f64()),
            certified_identical: certified,
        };
        log(&format!(
            "churn {:.0}% epoch {}: {}/{} dirty, {}/{} chunks adopted, measure {:.0} ms vs {:.0} ms (x{:.1}), cube {:.1} ms vs {:.1} ms (x{:.1}), publish {:.1} ms vs {:.1} ms (x{:.1}), identical: {}",
            churn * 100.0,
            row.epoch,
            row.sites_remeasured,
            row.sites_total,
            row.chunks_adopted,
            row.chunks_total,
            row.delta_measure_ms,
            row.full_measure_ms,
            row.measure_speedup,
            row.cube_apply_ms,
            row.cube_rebuild_ms,
            row.cube_speedup,
            row.publish_delta_ms,
            row.publish_rebuild_ms,
            row.publish_speedup,
            row.certified_identical,
        ));
        rows.push(row);

        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&prev_dir);
        prev_dir = delta_dir;
        world = next;
        snapshot = applied;
        builder = applied_builder;
    }
    let _ = std::fs::remove_dir_all(&prev_dir);

    ChurnSweep {
        churn,
        mean_measure_speedup: geo_mean(rows.iter().map(|r| r.measure_speedup)),
        mean_cube_speedup: geo_mean(rows.iter().map(|r| r.cube_speedup)),
        epochs: rows,
    }
}

/// Runs the churn sweeps and assembles `BENCH_evolve.json`'s payload.
///
/// Smoke mode shrinks to one small two-epoch sweep: every certificate
/// still holds (byte-identical stores, identical taxonomies, clean-chunk
/// adoption), but the timings are meaningless on a loaded box, so the
/// caller leaves the snapshot file alone.
pub fn evolve_snapshot(smoke: bool, log: impl Fn(&str)) -> EvolveSnapshot {
    let (sites_per_country, epochs, churns, workers) = if smoke {
        (90, 2, vec![0.10], 4)
    } else {
        (900, 4, vec![0.02, 0.10, 0.35], 8)
    };
    let mut sites_base = 0;
    let sweeps: Vec<ChurnSweep> = churns
        .into_iter()
        .map(|churn| {
            let sweep = churn_sweep(churn, epochs, sites_per_country, workers, &log);
            sites_base = sweep.epochs[0].sites_total - sweep.epochs[0].sites_remeasured;
            for row in &sweep.epochs {
                assert!(
                    row.certified_identical,
                    "churn {churn} epoch {}: delta diverged from from-scratch",
                    row.epoch
                );
                assert!(
                    row.chunks_adopted > 0,
                    "churn {churn} epoch {}: churn-only evolution must adopt clean chunks",
                    row.epoch
                );
            }
            sweep
        })
        .collect();
    EvolveSnapshot {
        // Churn appends its replacements, so the first epoch's clean
        // count is exactly the base world's site count.
        sites_base,
        workers: workers as u64,
        epochs_per_sweep: epochs as u64,
        sweeps,
        peak_rss_bytes: peak_rss_bytes(),
    }
}
