//! Writes the repo-root benchmark snapshots.
//!
//! `BENCH_pipeline.json`: throughput and wire-query accounting for the
//! measurement pipeline, before and after the concurrency/caching work.
//! "Before" reproduces the original pipeline: thread-per-rack serving,
//! static contiguous shards, private per-worker caches only, and a
//! strictly query-driven resolver (no referral caching). "After" is the
//! current default: inline rack responders, dynamic work queue, shared
//! delegation/answer cache, referral caching.
//!
//! `BENCH_analysis.json`: the analysis engine — dependence-cube build
//! time, full `ExperimentSuite` wall before (tally-on-demand) and after
//! (cube-backed), and affinity-propagation sweep throughput serial vs
//! parallel.
//!
//! `BENCH_faults.json`: the fault-injection sweep — per-layer coverage,
//! failure taxonomy, and hosting-score drift (with bootstrap CIs) under
//! three intensities each of whole-server outages, flaky SERVFAIL, and
//! flaky drop, plus the zero-fault byte-identity check.
//!
//! `BENCH_resilience.json`: the supervision layer — journaling overhead,
//! time-to-complete and observation loss under N injected worker deaths,
//! and the crash-resume cycle's wall cost and byte-identity.
//!
//! `BENCH_scale.json`: the dataset path at scale — the streaming chunk
//! store vs the resident observation vector at paper (~588K sites) and
//! beyond-paper (~5M sites) scale, with per-phase peak RSS measured in
//! dedicated subprocesses and the streaming path certified identical to
//! the resident path at a dual-feasible size.
//!
//! `BENCH_serve.json`: the resident query service — a cold sweep of the
//! full query catalog at concurrency 1, warm-cache closed-loop levels at
//! 4/16/64 clients, the cold-vs-cached single-query pair, and an epoch
//! swap published under load with zero failed and zero mixed-epoch
//! responses.
//!
//! `BENCH_evolve.json`: continuous measurement — per-epoch incremental
//! re-measurement (`measure_delta`) and snapshot publish
//! (`CubeSnapshot::from_delta`) vs their from-scratch comparators across
//! a churn sweep, every epoch certified byte-identical.
//!
//! `BENCH_overload.json`: the self-healing machinery under seeded chaos —
//! slow-loris floods, burst storms at 2–10× capacity, mid-serve chunk
//! corruption healed by `fsck --repair`, and poisoned publishes rejected
//! by pre-swap validation with the prior epoch still serving.
//!
//! Every full (non-smoke) snapshot run also appends a one-line summary to
//! `BENCH_history.csv`, so the overwritten JSON files leave a trend line.
//!
//! Run with `cargo run --release -p webdep-bench --bin bench-snapshot`
//! (optionally `-- pipeline`, `-- analysis`, `-- faults`,
//! `-- resilience`, `-- scale [--smoke]`, `-- serve [--smoke]`,
//! `-- evolve [--smoke]`, or `-- overload [--smoke]` for just one
//! snapshot).

use serde::Serialize;
use std::path::Path;
use webdep_bench::gate;
use webdep_dns::resolver::ResolverConfig;
use webdep_pipeline::{measure_with_stats, MeasureStats, PipelineConfig, Scheduling};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

const WORKERS: usize = 8;

#[derive(Serialize)]
struct ModeSnapshot {
    scheduling: String,
    inline_racks: bool,
    shared_cache: bool,
    referral_caching: bool,
    wall_ms: u64,
    sites_per_sec: f64,
    wire_queries: u64,
    local_cache_hits: u64,
    shared_cache_hits: u64,
    peak_idle_fraction: f64,
}

#[derive(Serialize)]
struct Snapshot {
    sites: u64,
    workers: u64,
    before: ModeSnapshot,
    after: ModeSnapshot,
    speedup: f64,
    wire_query_reduction: f64,
    peak_rss_bytes: Option<u64>,
}

fn mode_snapshot(
    scheduling: Scheduling,
    inline_racks: bool,
    shared_cache: bool,
    referral_caching: bool,
    stats: &MeasureStats,
) -> ModeSnapshot {
    ModeSnapshot {
        scheduling: format!("{scheduling:?}"),
        inline_racks,
        shared_cache,
        referral_caching,
        wall_ms: stats.wall.as_millis() as u64,
        sites_per_sec: round3(stats.sites_per_sec),
        wire_queries: stats.wire_queries,
        local_cache_hits: stats.local_cache_hits,
        shared_cache_hits: stats.shared_cache_hits,
        peak_idle_fraction: round3(stats.peak_idle_fraction),
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Renders an optional ratio as `1.234` or `n/a`.
fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.3}"),
        None => "n/a".to_string(),
    }
}

fn run(
    world: &World,
    dep: &DeployedWorld,
    scheduling: Scheduling,
    shared: bool,
    cache_referrals: bool,
) -> MeasureStats {
    let config = PipelineConfig {
        workers: WORKERS,
        scheduling,
        shared_cache: shared,
        resolver: ResolverConfig {
            cache_referrals,
            ..Default::default()
        },
        ..Default::default()
    };
    measure_with_stats(world, dep, &config).1
}

fn repo_root_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../")
        .join(name)
}

/// Full runs anchor their headline numbers in `BENCH_baselines.json`;
/// a regression past the stored threshold alerts without failing the run
/// (the deterministic `gate` subcommand is what fails CI).
fn record_headline(bench: &str, metrics: &[gate::Metric]) {
    gate::record_headline(&repo_root_path(""), bench, metrics);
}

fn permille(x: f64) -> u64 {
    (x * 1000.0).round().max(0.0) as u64
}

/// A headline ratio (speedup, reduction): lower is a regression.
fn down_bad(name: &'static str, value: u64, tol_pct: u64) -> gate::Metric {
    gate::Metric {
        name,
        value,
        tol_pct,
        direction: gate::Direction::DownBad,
    }
}

/// A headline cost (latency, RSS ratio): higher is a regression.
fn up_bad(name: &'static str, value: u64, tol_pct: u64) -> gate::Metric {
    gate::Metric {
        name,
        value,
        tol_pct,
        direction: gate::Direction::UpBad,
    }
}

/// Appends one `unix_ts,bench,summary` line to `BENCH_history.csv` so
/// successive snapshot runs leave a greppable trend line next to the
/// JSON files they overwrite. Commas in the summary are sanitized to
/// `;` (see [`webdep_bench::append_history_line`]).
fn append_history(name: &str, summary: &str) {
    let path = repo_root_path("BENCH_history.csv");
    if let Err(e) = webdep_bench::append_history_line(&path, name, summary) {
        eprintln!("warning: could not append {}: {e}", path.display());
    }
}

/// Points clustered in the affinity timing — above the parallel
/// threshold, so the sweep actually fans out.
const AFFINITY_POINTS: usize = 512;

fn analysis_snapshot() {
    // Small scale: the suite's fixed costs (the worked-example figures,
    // calibration curves) are world-size independent, so tiny-scale runs
    // understate how much of the wall the tallying actually was.
    eprintln!("analysis: measuring a small world, then timing legacy vs cube suite runs...");
    let snapshot =
        webdep_bench::analysis::analysis_snapshot("small", WorldConfig::small(), AFFINITY_POINTS);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_analysis.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_analysis.json");
    eprintln!(
        "wrote {} (cube build {:.1} ms, suite {:.0} ms -> {:.0} ms, speedup {:.2}x, affinity x{:.2} @ {} pts)",
        out.display(),
        snapshot.cube_build_ms,
        snapshot.before.end_to_end_ms(),
        snapshot.after.end_to_end_ms(),
        snapshot.suite_speedup,
        snapshot.affinity.speedup,
        snapshot.affinity.points,
    );
    append_history(
        "analysis",
        &format!(
            "suite x{:.2} cube build {:.1}ms affinity x{:.2}",
            snapshot.suite_speedup, snapshot.cube_build_ms, snapshot.affinity.speedup
        ),
    );
    record_headline(
        "analysis",
        &[
            down_bad(
                "suite_speedup_permille",
                permille(snapshot.suite_speedup),
                30,
            ),
            down_bad(
                "affinity_speedup_permille",
                permille(snapshot.affinity.speedup),
                30,
            ),
        ],
    );
}

fn pipeline_snapshot() {
    let world = World::generate(WorldConfig::tiny());

    // Each deployment lives only for its measurement: idle rack threads
    // from the threaded deployment would otherwise poll away CPU during
    // the inline run.
    let before = {
        let dep = DeployedWorld::deploy(
            &world,
            DeployConfig {
                inline_racks: false,
                ..DeployConfig::default()
            },
        );
        eprintln!("warming up the threaded deployment (one untimed run)...");
        let _ = run(&world, &dep, Scheduling::Static, false, false);
        eprintln!("before: rack threads, static shards, private caches, query-driven resolver...");
        run(&world, &dep, Scheduling::Static, false, false)
    };
    let after = {
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        eprintln!("warming up the inline deployment (one untimed run)...");
        let _ = run(&world, &dep, Scheduling::Dynamic, true, true);
        eprintln!("after: inline racks, dynamic queue, shared cache, referral caching...");
        run(&world, &dep, Scheduling::Dynamic, true, true)
    };

    let snapshot = Snapshot {
        sites: world.sites.len() as u64,
        workers: WORKERS as u64,
        speedup: round3(after.sites_per_sec / before.sites_per_sec),
        wire_query_reduction: round3(1.0 - after.wire_queries as f64 / before.wire_queries as f64),
        before: mode_snapshot(Scheduling::Static, false, false, false, &before),
        after: mode_snapshot(Scheduling::Dynamic, true, true, true, &after),
        peak_rss_bytes: webdep_bench::peak_rss_bytes(),
    };

    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_pipeline.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_pipeline.json");
    eprintln!(
        "wrote {} (speedup {:.2}x, wire queries -{:.0}%)",
        out.display(),
        snapshot.speedup,
        snapshot.wire_query_reduction * 100.0
    );
    append_history(
        "pipeline",
        &format!(
            "speedup x{:.2} wire queries -{:.0}%",
            snapshot.speedup,
            snapshot.wire_query_reduction * 100.0
        ),
    );
    record_headline(
        "pipeline",
        &[
            down_bad("speedup_permille", permille(snapshot.speedup), 30),
            down_bad(
                "wire_query_reduction_permille",
                permille(snapshot.wire_query_reduction),
                30,
            ),
        ],
    );
}

fn faults_snapshot() {
    eprintln!("faults: sweeping outage / servfail / drop plans over a reduced world...");
    let snapshot = webdep_bench::faults::faults_snapshot(WORKERS, |line| eprintln!("  {line}"));
    assert!(
        snapshot.zero_fault_identical,
        "a FaultPlan::none() run diverged from the no-plan baseline"
    );
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_faults.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_faults.json");
    eprintln!(
        "wrote {} ({} runs over {} sites, zero-fault identical: {})",
        out.display(),
        snapshot.runs.len(),
        snapshot.sites,
        snapshot.zero_fault_identical
    );
    append_history(
        "faults",
        &format!(
            "{} runs over {} sites zero-fault identical {}",
            snapshot.runs.len(),
            snapshot.sites,
            snapshot.zero_fault_identical
        ),
    );
}

fn resilience_snapshot() {
    eprintln!("resilience: clean vs journaled runs, chaos worker deaths, crash-resume...");
    let snapshot =
        webdep_bench::resilience::resilience_snapshot(WORKERS, |line| eprintln!("  {line}"));
    for run in &snapshot.deaths {
        assert!(
            run.byte_identical && run.observations_lost == 0,
            "worker deaths lost observations (deaths={})",
            run.deaths_injected
        );
    }
    assert!(
        snapshot.resume.byte_identical,
        "crash-resume diverged from the uninterrupted run"
    );
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_resilience.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_resilience.json");
    eprintln!(
        "wrote {} (journal overhead {:+.1}%, max death slowdown x{:.2}, resume {:.0}% of clean)",
        out.display(),
        snapshot.baseline.journal_overhead * 100.0,
        snapshot
            .deaths
            .iter()
            .map(|r| r.slowdown)
            .fold(0.0f64, f64::max),
        snapshot.resume.overhead_vs_clean * 100.0
    );
    append_history(
        "resilience",
        &format!(
            "journal overhead {:+.1}% resume {:.0}% of clean",
            snapshot.baseline.journal_overhead * 100.0,
            snapshot.resume.overhead_vs_clean * 100.0
        ),
    );
}

fn scale_snapshot(smoke: bool) {
    eprintln!(
        "scale: streaming vs resident dataset path ({})...",
        if smoke {
            "smoke sizes"
        } else {
            "paper and beyond-paper sizes"
        }
    );
    let exe = std::env::current_exe().expect("current exe");
    let snapshot = webdep_bench::scale::scale_snapshot(&exe, smoke, |line| eprintln!("  {line}"));
    if smoke {
        // The smoke gate certifies equivalence and exercises every phase,
        // but its timings are meaningless — leave the full-run snapshot
        // file alone.
        eprintln!(
            "scale smoke OK (identical over {} sites, rss ratio {})",
            snapshot.equivalence.sites,
            fmt_ratio(snapshot.rss_ratio_streaming_vs_scaled_resident)
        );
        return;
    }
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_scale.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_scale.json");
    let big = snapshot.rows.last().expect("rows");
    eprintln!(
        "wrote {} ({} sites streamed at {:.0} sites/s, peak RSS {} MB, rss ratio {})",
        out.display(),
        big.sites,
        big.sites_per_sec,
        webdep_bench::fmt_rss_mb(big.peak_rss_bytes),
        fmt_ratio(snapshot.rss_ratio_streaming_vs_scaled_resident)
    );
    append_history(
        "scale",
        &format!(
            "{} sites at {:.0} sites/s rss ratio {}",
            big.sites,
            big.sites_per_sec,
            fmt_ratio(snapshot.rss_ratio_streaming_vs_scaled_resident)
        ),
    );
    let mut headline = vec![down_bad(
        "stream_sites_per_sec",
        big.sites_per_sec.round().max(0.0) as u64,
        40,
    )];
    if let Some(ratio) = snapshot.rss_ratio_streaming_vs_scaled_resident {
        headline.push(up_bad("rss_ratio_permille", permille(ratio), 50));
    }
    record_headline("scale", &headline);
}

fn serve_snapshot(smoke: bool) {
    eprintln!(
        "serve: closed-loop load against the resident query service ({})...",
        if smoke { "smoke sizes" } else { "full sizes" }
    );
    let snapshot = webdep_bench::serve::serve_snapshot(smoke, |line| eprintln!("  {line}"));
    if smoke {
        // Same convention as the scale gate: smoke certifies every phase
        // and invariant but its timings are meaningless on a loaded CI
        // box — leave the full-run snapshot file alone.
        eprintln!(
            "serve smoke OK ({} queries, swap over epochs {:?}, cached speedup {:.1}x)",
            snapshot.distinct_queries,
            snapshot.swap.epochs_observed,
            snapshot.cold_vs_cached.speedup
        );
        return;
    }
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_serve.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_serve.json");
    let top = snapshot.levels.last().expect("levels");
    eprintln!(
        "wrote {} (cold p50 {} µs, c={} p99 {} µs, {} rps warm, cached speedup {:.1}x)",
        out.display(),
        snapshot.levels[0].p50_us,
        top.concurrency,
        top.p99_us,
        top.rps,
        snapshot.cold_vs_cached.speedup
    );
    append_history(
        "serve",
        &format!(
            "c={} p99 {}us {} rps cached x{:.1}",
            top.concurrency, top.p99_us, top.rps, snapshot.cold_vs_cached.speedup
        ),
    );
    record_headline(
        "serve",
        &[
            up_bad("top_p99_us", top.p99_us, 50),
            down_bad("warm_rps", top.rps.round().max(0.0) as u64, 40),
            down_bad(
                "cached_speedup_permille",
                permille(snapshot.cold_vs_cached.speedup),
                40,
            ),
        ],
    );
}

fn evolve_snapshot(smoke: bool) {
    eprintln!(
        "evolve: incremental epochs vs from-scratch re-measurement ({})...",
        if smoke {
            "smoke sizes"
        } else {
            "full churn sweep"
        }
    );
    let snapshot = webdep_bench::evolve::evolve_snapshot(smoke, |line| eprintln!("  {line}"));
    if smoke {
        // Same convention as the scale/serve gates: the smoke run
        // certifies byte-identity, taxonomy equality, and clean-chunk
        // adoption at every epoch, but its timings are meaningless —
        // leave the full-run snapshot file alone.
        let sweep = &snapshot.sweeps[0];
        eprintln!(
            "evolve smoke OK ({} sites, {} epochs at {:.0}% churn, all certified identical)",
            snapshot.sites_base,
            sweep.epochs.len(),
            sweep.churn * 100.0
        );
        return;
    }
    // The headline claim: at ~10% churn, both the re-measurement and the
    // cube publish must be at least 5x cheaper than from scratch.
    let gated = snapshot
        .sweeps
        .iter()
        .find(|s| (s.churn - 0.10).abs() < 1e-9)
        .expect("full sweep includes 10% churn");
    assert!(
        gated.mean_measure_speedup >= 5.0,
        "10% churn delta re-measure only x{:.2} vs full",
        gated.mean_measure_speedup
    );
    assert!(
        gated.mean_cube_speedup >= 5.0,
        "10% churn cube delta-apply only x{:.2} vs rebuild",
        gated.mean_cube_speedup
    );
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_evolve.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_evolve.json");
    eprintln!(
        "wrote {} ({} base sites, 10% churn: measure x{:.1}, cube apply x{:.1}, peak RSS {} MB)",
        out.display(),
        snapshot.sites_base,
        gated.mean_measure_speedup,
        gated.mean_cube_speedup,
        webdep_bench::fmt_rss_mb(snapshot.peak_rss_bytes)
    );
    append_history(
        "evolve",
        &format!(
            "10% churn measure x{:.1} cube x{:.1} over {} base sites",
            gated.mean_measure_speedup, gated.mean_cube_speedup, snapshot.sites_base
        ),
    );
    record_headline(
        "evolve",
        &[
            down_bad(
                "measure_speedup_permille",
                permille(gated.mean_measure_speedup),
                30,
            ),
            down_bad(
                "cube_speedup_permille",
                permille(gated.mean_cube_speedup),
                30,
            ),
        ],
    );
}

fn overload_snapshot(smoke: bool) {
    eprintln!(
        "overload: seeded chaos against the self-healing service ({})...",
        if smoke {
            "smoke sizes"
        } else {
            "full storm durations"
        }
    );
    let snapshot = webdep_bench::overload::overload_snapshot(smoke, |line| eprintln!("  {line}"));
    if smoke {
        // Same convention as the scale/serve/evolve gates: the smoke run
        // certifies every invariant (zero mixed-epoch, Retry-After on
        // sheds, byte-identical fsck heal, all poisoned publishes
        // rejected) but its throughput numbers are meaningless — leave
        // the full-run snapshot file alone.
        eprintln!(
            "overload smoke OK (sheds {}+{}, fsck healed {}, {} poisoned publishes rejected)",
            snapshot.counters.shed_queue,
            snapshot.counters.shed_load,
            snapshot.corruption.healed,
            snapshot.counters.publish_rejected
        );
        return;
    }
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    let out = repo_root_path("BENCH_overload.json");
    std::fs::write(&out, json + "\n").expect("write BENCH_overload.json");
    let four_x = snapshot
        .bursts
        .iter()
        .find(|b| b.multiplier == 4)
        .expect("4x burst");
    let top = snapshot.bursts.last().expect("bursts");
    eprintln!(
        "wrote {} (4x burst goodput {}x unloaded, {}x shed rate {}, fsck byte-identical {}, {} poisons rejected)",
        out.display(),
        four_x.goodput_ratio,
        top.multiplier,
        top.shed_rate,
        snapshot.corruption.byte_identical,
        snapshot.poison.rejected
    );
    append_history(
        "overload",
        &format!(
            "4x goodput {}x {}x shed rate {} fsck identical {} poisons {}/{}",
            four_x.goodput_ratio,
            top.multiplier,
            top.shed_rate,
            snapshot.corruption.byte_identical,
            snapshot.poison.rejected,
            snapshot.poison.attempts
        ),
    );
    record_headline(
        "overload",
        &[down_bad(
            "burst4_goodput_permille",
            permille(four_x.goodput_ratio),
            40,
        )],
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    match which {
        "pipeline" => pipeline_snapshot(),
        "analysis" => analysis_snapshot(),
        "faults" => faults_snapshot(),
        "resilience" => resilience_snapshot(),
        "scale" => scale_snapshot(args.get(2).map(String::as_str) == Some("--smoke")),
        "serve" => serve_snapshot(args.get(2).map(String::as_str) == Some("--smoke")),
        "evolve" => evolve_snapshot(args.get(2).map(String::as_str) == Some("--smoke")),
        "overload" => overload_snapshot(args.get(2).map(String::as_str) == Some("--smoke")),
        // The CI perf-regression gate: deterministic workloads vs
        // BENCH_baselines.json. `--update` re-records after an accepted
        // change; exits 1 (and appends to BENCH_alerts.log) on breach.
        "gate" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let update = args.iter().any(|a| a == "--update");
            let ok = gate::run_gate(&repo_root_path(""), smoke, update, |l| eprintln!("{l}"));
            if !ok {
                std::process::exit(1);
            }
        }
        // Hidden: one scale phase in a child process, so each phase's
        // VmHWM is its own (see webdep_bench::scale).
        "scale-phase" => {
            let phase = args.get(2).expect("scale-phase <phase> <spc>");
            let spc: u32 = args
                .get(3)
                .and_then(|s| s.parse().ok())
                .expect("scale-phase <phase> <spc>");
            println!("{}", webdep_bench::scale::run_phase(phase, spc));
        }
        "all" => {
            pipeline_snapshot();
            analysis_snapshot();
            faults_snapshot();
            resilience_snapshot();
            scale_snapshot(false);
            serve_snapshot(false);
            evolve_snapshot(false);
            overload_snapshot(false);
        }
        other => {
            eprintln!(
                "unknown snapshot {other:?} (pipeline | analysis | faults | resilience | scale [--smoke] | serve [--smoke] | evolve [--smoke] | overload [--smoke] | gate [--smoke] [--update] | all)"
            );
            std::process::exit(2);
        }
    }
}
