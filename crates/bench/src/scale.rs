//! The `scale` snapshot: million-site worlds, memory-bounded.
//!
//! Everything else in the bench suite drives the *measurement* engine;
//! this module benches the *dataset path* — commit → columnar chunk store
//! → incremental cube fold → report — at scales where a resident
//! `Vec<SiteObservation>` stops being free. Observations are synthesized
//! deterministically from world ground truth (the DNS simulation's
//! throughput is `BENCH_pipeline.json`'s subject), so five-million-site
//! worlds flow through the exact production commit/decode/fold code in
//! seconds.
//!
//! Peak RSS (`VmHWM`) is monotonic over a process's lifetime, so phases
//! that must not see each other's high-water mark each run in a child
//! process: the parent re-executes the current binary with a hidden
//! `scale-phase <phase> <sites-per-country>` argument and reads one JSON
//! line from the child's stdout.
//!
//! Three phases feed `BENCH_scale.json`:
//!
//! * `equivalence` — at a size where both paths are feasible, certify the
//!   streaming path end-to-end: the chunk store reloads into a dataset
//!   `==`-identical to the resident one, and the report rendered from a
//!   chunk-folded cube is byte-identical to the resident report.
//! * `resident` — the paper-scale baseline: materialize every
//!   observation, build the cube from the resident vector, render.
//! * `streaming` — same work, but each observation is committed to the
//!   chunk store the moment it exists and dropped; the cube folds decoded
//!   chunks read back from disk; the report renders from a hollow
//!   dataset. Run at paper scale and at beyond-paper (≥5M sites) scale.

use crate::peak_rss_bytes;
use serde::Serialize;
use serde_json::Value;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::time::Instant;
use webdep_analysis::{AnalysisCtx, CubeBuilder};
use webdep_core::centralization::centralization_score;
use webdep_pipeline::{
    ChunkStore, ChunkStoreWriter, FailureCause, LayerError, MeasuredDataset, SiteObservation,
    DEFAULT_CHUNK_SITES,
};
use webdep_webgen::{Layer, World, WorldConfig, COUNTRIES};

/// World parameters for a given toplist size, interpolating the preset
/// ladder (`tiny` → `small` → `paper`) so provider-pool richness grows
/// with the world instead of dwarfing a smoke world with the paper's
/// ~12k-provider tail.
pub fn scale_config(sites_per_country: u32) -> WorldConfig {
    let f = (sites_per_country as f64 / 10_000.0).min(1.0);
    WorldConfig {
        seed: 42,
        sites_per_country,
        global_pool_size: sites_per_country.saturating_mul(3),
        tail_scale: f.clamp(0.04, 1.0),
        pool_target: ((420.0 * f.sqrt()) as usize).clamp(40, 420),
    }
}

/// A deterministic synthetic observation for site `i`, derived from the
/// world's ground truth: correct layer owners and HQ countries, plausible
/// addresses/ASNs/nameservers, and a small failure fraction so the error
/// columns of the chunk format carry real traffic.
pub fn synth_observation(world: &World, i: usize) -> SiteObservation {
    let site = &world.sites[i];
    let mut o = SiteObservation::blank(&site.domain, &site.language);
    if i.is_multiple_of(97) {
        // Dead site: the A lookup timed out, nothing downstream ran.
        o.hosting_error = Some(LayerError::new(FailureCause::Timeout, "A: query timed out"));
        o.dns_error = Some(LayerError::new(
            FailureCause::Timeout,
            "NS: query timed out",
        ));
        o.ca_error = Some(LayerError::new(
            FailureCause::Skipped,
            "no serving IP to scan",
        ));
        o.derive_error_summary();
        return o;
    }
    let hosting = world.universe.provider(site.hosting);
    o.hosting_ip = Some(Ipv4Addr::from(0x0A00_0000u32 | (i as u32 & 0x00FF_FFFF)));
    o.hosting_asn = Some(hosting.asn);
    o.hosting_org = Some(site.hosting);
    o.hosting_org_country = Some(hosting.country.clone());
    o.hosting_ip_country = Some(hosting.country.clone());
    o.hosting_anycast = hosting.anycast;
    let dns = world.universe.provider(site.dns);
    let slug = dns.slug();
    o.ns_names = vec![format!("ns1.{slug}.net"), format!("ns2.{slug}.net")];
    o.dns_ip = Some(Ipv4Addr::from(0xAC10_0000u32 | (i as u32 & 0x000F_FFFF)));
    o.dns_asn = Some(dns.asn);
    o.dns_org = Some(site.dns);
    o.dns_org_country = Some(dns.country.clone());
    o.dns_ip_country = Some(dns.country.clone());
    o.dns_anycast = dns.anycast;
    if i.is_multiple_of(89) {
        // Hosting and DNS fine, but the TLS handshake was refused.
        o.ca_error = Some(LayerError::new(
            FailureCause::Refused,
            "TLS: handshake refused",
        ));
    } else {
        let ca = world.universe.ca(site.ca);
        o.ca_owner = Some(site.ca);
        o.ca_owner_country = Some(ca.country.clone());
    }
    o.derive_error_summary();
    o
}

fn tld_id_map(world: &World) -> HashMap<String, u32> {
    world
        .universe
        .tlds
        .iter()
        .map(|t| (t.label.clone(), t.id))
        .collect()
}

/// Renders the cube-backed dependence summary both paths must agree on:
/// per layer, the global top-10 owners and every country's toplist size,
/// observed total, coverage, and centralization score. Touches only
/// cube-backed accessors, so it renders identically from a resident
/// context and from a hollow streaming context.
pub fn cube_report(ctx: &AnalysisCtx<'_>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for &layer in Layer::ALL.iter() {
        writeln!(out, "## {}", layer.name()).unwrap();
        for (owner, count) in ctx.global_counts(layer).iter().take(10) {
            writeln!(out, "- {} {count}", ctx.owner_name(layer, *owner)).unwrap();
        }
        for (ci, c) in COUNTRIES.iter().enumerate() {
            let total = ctx.country_total(ci, layer);
            let coverage = ctx.country_coverage(ci, layer);
            let s = ctx
                .country_dist(ci, layer)
                .map(|d| centralization_score(&d))
                .unwrap_or(-1.0);
            writeln!(
                out,
                "{} {} {total} {coverage:.6} {s:.6}",
                c.code,
                ctx.toplist_len(ci),
            )
            .unwrap();
        }
    }
    out
}

/// Builds the resident dataset and renders its report.
fn resident_path(world: &World) -> (MeasuredDataset, String) {
    let n = world.sites.len();
    let observations: Vec<SiteObservation> = (0..n).map(|i| synth_observation(world, i)).collect();
    let ds = MeasuredDataset {
        observations,
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    };
    let ctx = AnalysisCtx::new(world, &ds);
    let report = cube_report(&ctx);
    (ds, report)
}

/// Streams every observation into a chunk store at `dir` (one observation
/// alive at a time), folds the decoded chunks into a cube, and renders
/// the report from a hollow dataset. Returns the on-disk store size too.
fn streaming_path(world: &World, dir: &Path) -> (ChunkStore, String, u64) {
    let n = world.sites.len();
    let mut writer = ChunkStoreWriter::create(dir, &world.label, n, DEFAULT_CHUNK_SITES)
        .expect("create chunk store");
    for i in 0..n {
        writer
            .commit(i, &synth_observation(world, i))
            .expect("commit observation");
    }
    let store_bytes = writer.bytes_written();
    writer.finish().expect("finish chunk store");

    let store = ChunkStore::open(dir).expect("reopen chunk store");
    let tld_ids = tld_id_map(world);
    let mut builder = CubeBuilder::new(n);
    for c in 0..store.num_chunks() {
        let chunk = store.read_chunk(c).expect("read chunk");
        builder.fold_chunk(&chunk, &tld_ids);
    }
    let cube = builder.finish(world, &world.toplists, &world.global_top);
    let hollow = MeasuredDataset {
        observations: Vec::new(),
        toplists: world.toplists.clone(),
        global_top: world.global_top.clone(),
        label: world.label.clone(),
    };
    let ctx = AnalysisCtx::with_cube(world, &hollow, cube);
    let report = cube_report(&ctx);
    (store, report, store_bytes)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webdep-scale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Outcome of the dual-feasible certification phase.
#[derive(Serialize)]
pub struct EquivalenceOut {
    /// Sites in the certification world.
    pub sites: u64,
    /// `ChunkStore::load_dataset` reproduced the resident dataset exactly.
    pub identical_dataset: bool,
    /// The chunk-folded report was byte-identical to the resident report.
    pub identical_report: bool,
}

/// Runs both paths at a dual-feasible size and compares them exactly.
pub fn equivalence_phase(sites_per_country: u32) -> EquivalenceOut {
    let world = World::generate(scale_config(sites_per_country));
    let (resident_ds, resident_report) = resident_path(&world);
    let dir = scratch_dir("equivalence");
    let (store, streaming_report, _bytes) = streaming_path(&world, &dir);
    let reloaded = store.load_dataset(&world).expect("reload dataset");
    let out = EquivalenceOut {
        sites: world.sites.len() as u64,
        identical_dataset: reloaded == resident_ds,
        identical_report: streaming_report == resident_report,
    };
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// One timed phase, as the child process reports it (integers only — the
/// parent computes rates, so the vendored JSON parser never sees floats).
#[derive(Serialize)]
pub struct PhaseOut {
    /// `resident` or `streaming`.
    pub mode: String,
    /// Toplist size the world was generated at.
    pub sites_per_country: u64,
    /// Unique sites that flowed through the dataset path.
    pub sites: u64,
    /// World generation wall (excluded from the throughput window).
    pub gen_ms: u64,
    /// Dataset-path wall: synthesize + commit + cube + report.
    pub wall_ms: u64,
    /// `VmHWM` of this phase's process at exit (`None` off-Linux,
    /// serialized as `null`).
    pub peak_rss_bytes: Option<u64>,
    /// Chunk-store footprint on disk (0 for the resident path).
    pub store_bytes: u64,
}

/// Times the resident path at `sites_per_country` scale.
pub fn resident_phase(sites_per_country: u32) -> PhaseOut {
    let gen0 = Instant::now();
    let world = World::generate(scale_config(sites_per_country));
    let gen_ms = gen0.elapsed().as_millis() as u64;
    let t0 = Instant::now();
    let (ds, report) = resident_path(&world);
    let wall_ms = t0.elapsed().as_millis() as u64;
    assert!(!report.is_empty() && !ds.observations.is_empty());
    PhaseOut {
        mode: "resident".into(),
        sites_per_country: sites_per_country as u64,
        sites: world.sites.len() as u64,
        gen_ms,
        wall_ms,
        peak_rss_bytes: peak_rss_bytes(),
        store_bytes: 0,
    }
}

/// Times the streaming path at `sites_per_country` scale.
pub fn streaming_phase(sites_per_country: u32) -> PhaseOut {
    let gen0 = Instant::now();
    let world = World::generate(scale_config(sites_per_country));
    let gen_ms = gen0.elapsed().as_millis() as u64;
    let dir = scratch_dir("streaming");
    let t0 = Instant::now();
    let (_store, report, store_bytes) = streaming_path(&world, &dir);
    let wall_ms = t0.elapsed().as_millis() as u64;
    assert!(!report.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
    PhaseOut {
        mode: "streaming".into(),
        sites_per_country: sites_per_country as u64,
        sites: world.sites.len() as u64,
        gen_ms,
        wall_ms,
        peak_rss_bytes: peak_rss_bytes(),
        store_bytes,
    }
}

/// Child-side dispatch for the hidden `scale-phase` subcommand: runs one
/// phase and returns the JSON line to print on stdout.
pub fn run_phase(phase: &str, sites_per_country: u32) -> String {
    match phase {
        "equivalence" => serde_json::to_string(&equivalence_phase(sites_per_country)),
        "resident" => serde_json::to_string(&resident_phase(sites_per_country)),
        "streaming" => serde_json::to_string(&streaming_phase(sites_per_country)),
        other => panic!("unknown scale phase {other:?}"),
    }
    .expect("phase serializes")
}

/// One row of `BENCH_scale.json`, with the rate filled in by the parent.
#[derive(Serialize)]
pub struct ScaleRow {
    /// `resident` or `streaming`.
    pub mode: String,
    /// Toplist size the world was generated at.
    pub sites_per_country: u64,
    /// Unique sites that flowed through the dataset path.
    pub sites: u64,
    /// World generation wall (excluded from the throughput window).
    pub gen_ms: u64,
    /// Dataset-path wall: synthesize + commit + cube + report.
    pub wall_ms: u64,
    /// Sites through the dataset path per second of `wall_ms`.
    pub sites_per_sec: f64,
    /// Peak RSS (`VmHWM`) of the phase's dedicated process (`None`
    /// off-Linux, serialized as `null`).
    pub peak_rss_bytes: Option<u64>,
    /// Chunk-store footprint on disk (0 for the resident path).
    pub store_bytes: u64,
}

/// The whole `BENCH_scale.json` payload.
#[derive(Serialize)]
pub struct ScaleSnapshot {
    /// Sites per chunk in the streaming store.
    pub chunk_sites: u64,
    /// The dual-feasible certification (must be all-identical).
    pub equivalence: EquivalenceOut,
    /// Resident baseline at paper scale, then streaming at paper and
    /// beyond-paper scale.
    pub rows: Vec<ScaleRow>,
    /// Streaming beyond-paper peak RSS over the resident baseline's peak
    /// RSS scaled linearly to the same site count — < 1.0 means the
    /// streaming path grows sub-linearly where the resident path cannot.
    /// `None` (JSON `null`) where peak RSS is unavailable.
    pub rss_ratio_streaming_vs_scaled_resident: Option<f64>,
}

/// Toplist sizes for the three phases.
struct Spcs {
    /// Dual-feasible certification size.
    equivalence: u32,
    /// Paper-scale baseline (~588K unique sites at 6,200).
    base: u32,
    /// Beyond-paper streaming size (~5M unique sites at 53,000).
    big: u32,
}

fn spcs(smoke: bool) -> Spcs {
    if smoke {
        Spcs {
            equivalence: 40,
            base: 80,
            big: 160,
        }
    } else {
        Spcs {
            equivalence: 1_000,
            base: 6_200,
            big: 53_000,
        }
    }
}

fn run_child(exe: &Path, phase: &str, sites_per_country: u32) -> Value {
    let out = std::process::Command::new(exe)
        .args(["scale-phase", phase, &sites_per_country.to_string()])
        .stderr(std::process::Stdio::inherit())
        .output()
        .expect("spawn scale phase");
    assert!(
        out.status.success(),
        "scale phase {phase} (spc={sites_per_country}) failed: {:?}",
        out.status
    );
    let text = String::from_utf8(out.stdout).expect("phase output is UTF-8");
    serde_json::from_str(text.trim()).expect("phase output parses")
}

fn u(v: &Value, key: &str) -> u64 {
    v[key]
        .as_u64()
        .unwrap_or_else(|| panic!("phase field {key}"))
}

fn parse_row(v: &Value) -> ScaleRow {
    let sites = u(v, "sites");
    let wall_ms = u(v, "wall_ms");
    ScaleRow {
        mode: v["mode"].as_str().expect("phase field mode").to_string(),
        sites_per_country: u(v, "sites_per_country"),
        sites,
        gen_ms: u(v, "gen_ms"),
        wall_ms,
        sites_per_sec: ((sites as f64 / (wall_ms.max(1) as f64 / 1000.0)) * 10.0).round() / 10.0,
        peak_rss_bytes: v["peak_rss_bytes"].as_u64(),
        store_bytes: u(v, "store_bytes"),
    }
}

/// Parent-side orchestration: spawns one child per phase (so each reports
/// its own `VmHWM`), certifies equivalence, and assembles the snapshot.
/// `exe` is the `bench-snapshot` binary itself.
pub fn scale_snapshot(exe: &Path, smoke: bool, log: impl Fn(&str)) -> ScaleSnapshot {
    let s = spcs(smoke);

    log(&format!(
        "certifying streaming == resident at spc={}...",
        s.equivalence
    ));
    let eq = run_child(exe, "equivalence", s.equivalence);
    let equivalence = EquivalenceOut {
        sites: u(&eq, "sites"),
        identical_dataset: eq["identical_dataset"].as_bool().expect("bool field"),
        identical_report: eq["identical_report"].as_bool().expect("bool field"),
    };
    assert!(
        equivalence.identical_dataset,
        "chunk store reload diverged from the resident dataset"
    );
    assert!(
        equivalence.identical_report,
        "chunk-folded report diverged from the resident report"
    );
    log(&format!(
        "  identical over {} sites (dataset and report)",
        equivalence.sites
    ));

    log(&format!("resident baseline at spc={}...", s.base));
    let resident = parse_row(&run_child(exe, "resident", s.base));
    log(&format!(
        "  {} sites, {} ms, peak RSS {} MB",
        resident.sites,
        resident.wall_ms,
        crate::fmt_rss_mb(resident.peak_rss_bytes)
    ));

    log(&format!("streaming at spc={}...", s.base));
    let streaming_base = parse_row(&run_child(exe, "streaming", s.base));
    log(&format!(
        "  {} sites, {} ms, peak RSS {} MB, store {} MB",
        streaming_base.sites,
        streaming_base.wall_ms,
        crate::fmt_rss_mb(streaming_base.peak_rss_bytes),
        streaming_base.store_bytes >> 20
    ));

    log(&format!("streaming beyond paper at spc={}...", s.big));
    let streaming_big = parse_row(&run_child(exe, "streaming", s.big));
    log(&format!(
        "  {} sites, {} ms, peak RSS {} MB, store {} MB",
        streaming_big.sites,
        streaming_big.wall_ms,
        crate::fmt_rss_mb(streaming_big.peak_rss_bytes),
        streaming_big.store_bytes >> 20
    ));

    let ratio = match (resident.peak_rss_bytes, streaming_big.peak_rss_bytes) {
        (Some(resident_rss), Some(big_rss)) => {
            let scaled_resident =
                resident_rss as f64 * (streaming_big.sites as f64 / resident.sites.max(1) as f64);
            let ratio = big_rss as f64 / scaled_resident.max(1.0);
            Some((ratio * 1000.0).round() / 1000.0)
        }
        _ => None,
    };
    ScaleSnapshot {
        chunk_sites: DEFAULT_CHUNK_SITES as u64,
        equivalence,
        rows: vec![resident, streaming_base, streaming_big],
        rss_ratio_streaming_vs_scaled_resident: ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1: the certification the full bench runs at 95K sites holds
    /// in-process at smoke scale — streaming reload and report are exact.
    #[test]
    fn equivalence_certifies_at_smoke_scale() {
        let out = equivalence_phase(20);
        assert!(out.sites > 1_000, "world too small: {}", out.sites);
        assert!(out.identical_dataset, "reloaded dataset diverged");
        assert!(out.identical_report, "streaming report diverged");
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        let rss = crate::peak_rss_bytes();
        if cfg!(target_os = "linux") {
            let rss = rss.expect("VmHWM available on Linux");
            assert!(rss > 1 << 20, "VmHWM under 1 MB: {rss}");
        }
    }
}
