//! The fault-injection sweep behind `BENCH_faults.json`.
//!
//! Sweeps [`FaultPlan`] intensity across three fault kinds (whole-server
//! outages, flaky SERVFAIL, flaky drop) and records, per run: how much of
//! each layer's toplists remained observable, the per-layer failure
//! taxonomy, and how far each country's hosting centralization score
//! drifted from the zero-fault baseline — with seeded bootstrap CIs for a
//! fixed panel of countries, so "drift" can be read against sampling
//! noise.
//!
//! The snapshot also certifies the determinism contract at its boundary:
//! a deployment equipped with [`FaultPlan::none`] must produce a dataset
//! byte-identical to one with no plan at all.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use webdep_analysis::centralization::layer_table;
use webdep_analysis::{coverage_model, AnalysisCtx};
use webdep_dns::resolver::ResolverConfig;
use webdep_netsim::{FaultKind, FaultPlan};
use webdep_pipeline::{measure, FailureTaxonomy, MeasuredDataset, PipelineConfig};
use webdep_tls::scanner::ScannerConfig;
use webdep_webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

/// Seed shared by every plan in the sweep (fault decisions are pure in
/// `(seed, ip, key)`, so runs are reproducible bit-for-bit).
const SWEEP_SEED: u64 = 1007;

/// Bootstrap replicates / level / seed for the per-country CIs.
const CI_REPLICATES: usize = 200;
const CI_LEVEL: f64 = 0.95;
const CI_SEED: u64 = 42;

/// Countries whose hosting score gets a CI in every run: the paper's two
/// CI case studies (TH, IR) plus high-, mid- and low-rank anchors.
const CI_PANEL: [&str; 5] = ["TH", "IR", "US", "DE", "BR"];

/// One fault plan's worth of degradation, summarized.
#[derive(Serialize)]
pub struct FaultRunSnapshot {
    /// Human-readable run id, e.g. `outage@0.15` or `servfail@0.50`.
    pub label: String,
    /// The plan's knobs.
    pub plan: PlanSummary,
    /// Wall-clock of the measurement run (ms).
    pub wall_ms: u64,
    /// Sites with no layer error at all.
    pub clean_sites: u64,
    /// Sites measured (== the world's site count).
    pub total_sites: u64,
    /// Per-layer coverage after degradation.
    pub coverage: Vec<LayerCoverageSummary>,
    /// Failure counts by layer and cause.
    pub taxonomy: FailureTaxonomy,
    /// Hosting-score drift vs the zero-fault baseline.
    pub hosting: HostingDrift,
}

/// The sweep axes of one [`FaultPlan`].
#[derive(Serialize)]
pub struct PlanSummary {
    /// Fault kind swept (`outage`, `servfail`, `drop`).
    pub kind: String,
    /// The swept intensity: outage fraction, or per-query fail rate.
    pub intensity: f64,
    /// Plan seed.
    pub seed: u64,
    /// Fraction of servers down for the whole run.
    pub outage_fraction: f64,
    /// Fraction of servers that are flaky.
    pub flaky_fraction: f64,
    /// Per-query fault probability on flaky servers.
    pub fail_rate: f64,
}

/// One layer's post-degradation coverage.
#[derive(Serialize)]
pub struct LayerCoverageSummary {
    /// Layer name.
    pub layer: &'static str,
    /// Site-weighted fraction of toplist entries observed.
    pub fraction: f64,
    /// Countries with zero observations at this layer.
    pub dark_countries: usize,
    /// The worst-covered country and its fraction.
    pub worst_country: &'static str,
    /// Coverage of the worst country.
    pub worst_fraction: f64,
}

/// A panel country's hosting score under faults, with its bootstrap CI
/// and the baseline score it drifted from. `None`-scored (unobserved)
/// panel countries are omitted from the run's list.
#[derive(Serialize)]
pub struct CountryCi {
    /// Country code.
    pub code: String,
    /// Hosting centralization score under this run's faults.
    pub s: f64,
    /// Lower bootstrap bound.
    pub ci_lo: f64,
    /// Upper bootstrap bound.
    pub ci_hi: f64,
    /// The same country's zero-fault score.
    pub baseline_s: f64,
    /// `s - baseline_s`.
    pub drift: f64,
    /// Whether the baseline score lies inside this run's CI — drift
    /// within sampling noise.
    pub baseline_in_ci: bool,
}

/// How the hosting layer's per-country scores moved vs the baseline.
#[derive(Serialize)]
pub struct HostingDrift {
    /// Countries still scored at the hosting layer.
    pub countries_scored: usize,
    /// Mean score over scored countries.
    pub mean_s: f64,
    /// Mean absolute per-country drift (scored countries only).
    pub mean_abs_drift: f64,
    /// Largest absolute per-country drift.
    pub max_abs_drift: f64,
    /// Country where the largest drift occurred (empty when none scored).
    pub max_drift_country: String,
    /// CI panel, one entry per still-observed panel country.
    pub panel: Vec<CountryCi>,
}

/// The zero-fault reference run.
#[derive(Serialize)]
pub struct BaselineSnapshot {
    /// Wall-clock of the measurement run (ms).
    pub wall_ms: u64,
    /// Sites with no layer error (should be all of them).
    pub clean_sites: u64,
    /// Mean hosting score over all scored countries.
    pub mean_hosting_s: f64,
    /// Hosting-layer coverage (should be 1.0).
    pub hosting_coverage: f64,
}

/// The whole `BENCH_faults.json` payload.
#[derive(Serialize)]
pub struct FaultsSnapshot {
    /// Sites in the sweep world.
    pub sites: u64,
    /// Pipeline workers.
    pub workers: u64,
    /// Resolver/scanner timeout used for every run (ms).
    pub timeout_ms: u64,
    /// Whether a run under [`FaultPlan::none`] serialized byte-identical
    /// to the run with no plan installed at all.
    pub zero_fault_identical: bool,
    /// The zero-fault reference.
    pub baseline: BaselineSnapshot,
    /// The sweep, in `kind`-major order.
    pub runs: Vec<FaultRunSnapshot>,
    /// Peak RSS (`VmHWM`) of the bench process when the snapshot was
    /// assembled (bytes; `None`/JSON `null` off-Linux).
    pub peak_rss_bytes: Option<u64>,
}

/// World for the sweep: smaller than the pipeline bench's `tiny` so nine
/// degraded runs — each paying real timeouts for black-holed datagrams —
/// stay tractable, while keeping all 150 countries populated.
fn sweep_world_config() -> WorldConfig {
    WorldConfig {
        seed: 42,
        sites_per_country: 60,
        global_pool_size: 300,
        tail_scale: 0.04,
        pool_target: 40,
    }
}

/// Short timeouts and no retries: the latency model only *accounts* delay
/// (clean queries answer instantly), so timeouts fire only for genuinely
/// dropped datagrams — and a deterministic fault plan means retries of a
/// faulted query can never succeed anyway, only rotation can.
fn sweep_pipeline_config(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        resolver: ResolverConfig {
            timeout: std::time::Duration::from_millis(15),
            retries: 0,
            ..ResolverConfig::default()
        },
        scanner: ScannerConfig {
            timeout: std::time::Duration::from_millis(15),
            retries: 0,
            site_deadline: None,
        },
        ..PipelineConfig::default()
    }
}

fn deploy_with(world: &World, faults: Option<FaultPlan>) -> DeployedWorld {
    DeployedWorld::deploy(
        world,
        DeployConfig {
            faults: faults.map(Arc::new),
            ..DeployConfig::default()
        },
    )
}

fn timed_measure(
    world: &World,
    dep: &DeployedWorld,
    config: &PipelineConfig,
) -> (MeasuredDataset, u64) {
    let t0 = Instant::now();
    let ds = measure(world, dep, config);
    (ds, t0.elapsed().as_millis() as u64)
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// Per-country hosting scores, keyed by code.
fn hosting_scores(ctx: &AnalysisCtx<'_>) -> Vec<(&'static str, f64)> {
    layer_table(ctx, Layer::Hosting)
        .rows
        .iter()
        .map(|r| (r.code, r.s))
        .collect()
}

fn coverage_summaries(ctx: &AnalysisCtx<'_>) -> Vec<LayerCoverageSummary> {
    coverage_model(ctx)
        .layers
        .iter()
        .map(|l| {
            let (worst_country, worst_fraction) = l.min_country().unwrap_or(("-", 0.0));
            LayerCoverageSummary {
                layer: l.layer_name,
                fraction: round4(l.fraction()),
                dark_countries: l.dark_countries(),
                worst_country,
                worst_fraction: round4(worst_fraction),
            }
        })
        .collect()
}

fn drift_snapshot(ctx: &AnalysisCtx<'_>, baseline: &[(&'static str, f64)]) -> HostingDrift {
    let scores = hosting_scores(ctx);
    let mut mean_s = 0.0;
    let mut mean_abs = 0.0;
    let mut max_abs = 0.0;
    let mut max_country = String::new();
    let mut drifted = 0usize;
    for &(code, s) in &scores {
        mean_s += s;
        if let Some(&(_, base)) = baseline.iter().find(|&&(c, _)| c == code) {
            let d = (s - base).abs();
            mean_abs += d;
            drifted += 1;
            if d > max_abs {
                max_abs = d;
                max_country = code.to_string();
            }
        }
    }
    let n = scores.len().max(1) as f64;
    let panel = CI_PANEL
        .iter()
        .filter_map(|&code| {
            let s = scores.iter().find(|&&(c, _)| c == code)?.1;
            let base = baseline.iter().find(|&&(c, _)| c == code)?.1;
            let ci = World::country_index(code)
                .and_then(|i| ctx.score_ci(i, Layer::Hosting, CI_REPLICATES, CI_LEVEL, CI_SEED))?;
            Some(CountryCi {
                code: code.to_string(),
                s: round4(s),
                ci_lo: round4(ci.lo),
                ci_hi: round4(ci.hi),
                baseline_s: round4(base),
                drift: round4(s - base),
                baseline_in_ci: ci.lo <= base && base <= ci.hi,
            })
        })
        .collect();
    HostingDrift {
        countries_scored: scores.len(),
        mean_s: round4(mean_s / n),
        mean_abs_drift: round4(mean_abs / (drifted.max(1) as f64)),
        max_abs_drift: round4(max_abs),
        max_drift_country: max_country,
        panel,
    }
}

/// The sweep grid: three intensities for each of three fault kinds.
fn sweep_plans() -> Vec<(String, String, f64, FaultPlan)> {
    let mut plans = Vec::new();
    for &frac in &[0.05, 0.15, 0.30] {
        plans.push((
            format!("outage@{frac:.2}"),
            "outage".to_string(),
            frac,
            FaultPlan::outages(SWEEP_SEED, frac),
        ));
    }
    for &(kind, name) in &[(FaultKind::ServFail, "servfail"), (FaultKind::Drop, "drop")] {
        for &rate in &[0.2, 0.5, 0.8] {
            plans.push((
                format!("{name}@{rate:.2}"),
                name.to_string(),
                rate,
                FaultPlan::flaky(SWEEP_SEED, 0.25, rate, vec![kind]),
            ));
        }
    }
    plans
}

/// Serializes the observations (the part of the dataset the analysis
/// reads) for the byte-identity check.
fn dataset_bytes(ds: &MeasuredDataset) -> Vec<u8> {
    serde_json::to_string(&ds.observations)
        .expect("observations serialize")
        .into_bytes()
}

/// Runs the full sweep and assembles the snapshot.
///
/// `progress` receives one line per completed run (the bench binary wires
/// it to stderr; tests pass a sink).
pub fn faults_snapshot(workers: usize, mut progress: impl FnMut(&str)) -> FaultsSnapshot {
    let world = World::generate(sweep_world_config());
    let config = sweep_pipeline_config(workers);

    let (baseline_ds, baseline_wall) = {
        let dep = deploy_with(&world, None);
        timed_measure(&world, &dep, &config)
    };
    progress(&format!(
        "baseline: {} sites in {} ms",
        baseline_ds.observations.len(),
        baseline_wall
    ));

    // The determinism contract at the boundary: an inactive plan must be
    // indistinguishable, byte for byte, from no plan at all.
    let zero_fault_identical = {
        let dep = deploy_with(&world, Some(FaultPlan::none()));
        let (ds, _) = timed_measure(&world, &dep, &config);
        ds == baseline_ds && dataset_bytes(&ds) == dataset_bytes(&baseline_ds)
    };
    progress(&format!("zero-fault identical: {zero_fault_identical}"));

    let baseline_ctx = AnalysisCtx::new(&world, &baseline_ds);
    let baseline_scores = hosting_scores(&baseline_ctx);
    let baseline_taxonomy = baseline_ds.failure_taxonomy();
    let baseline = BaselineSnapshot {
        wall_ms: baseline_wall,
        clean_sites: baseline_taxonomy.clean,
        mean_hosting_s: round4(
            baseline_scores.iter().map(|&(_, s)| s).sum::<f64>()
                / baseline_scores.len().max(1) as f64,
        ),
        hosting_coverage: round4(
            coverage_model(&baseline_ctx)
                .layer(Layer::Hosting)
                .fraction(),
        ),
    };

    let runs = sweep_plans()
        .into_iter()
        .map(|(label, kind, intensity, plan)| {
            let summary = PlanSummary {
                kind,
                intensity,
                seed: plan.seed,
                outage_fraction: plan.outage_fraction,
                flaky_fraction: plan.flaky_fraction,
                fail_rate: plan.fail_rate,
            };
            let dep = deploy_with(&world, Some(plan));
            let (ds, wall_ms) = timed_measure(&world, &dep, &config);
            let ctx = AnalysisCtx::new(&world, &ds);
            let taxonomy = ds.failure_taxonomy();
            let run = FaultRunSnapshot {
                label,
                plan: summary,
                wall_ms,
                clean_sites: taxonomy.clean,
                total_sites: taxonomy.total,
                coverage: coverage_summaries(&ctx),
                taxonomy,
                hosting: drift_snapshot(&ctx, &baseline_scores),
            };
            progress(&format!(
                "{}: {}/{} clean, hosting coverage {:.1}%, mean |drift| {:.4} ({} ms)",
                run.label,
                run.clean_sites,
                run.total_sites,
                100.0 * run.coverage[Layer::Hosting.index()].fraction,
                run.hosting.mean_abs_drift,
                run.wall_ms
            ));
            run
        })
        .collect();

    FaultsSnapshot {
        sites: world.sites.len() as u64,
        workers: workers as u64,
        timeout_ms: config.resolver.timeout.as_millis() as u64,
        zero_fault_identical,
        baseline,
        runs,
        peak_rss_bytes: crate::peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cheap end-to-end pass of the sweep machinery: a micro world,
    /// the zero-fault identity check, and a single degraded run per kind
    /// would still take seconds, so this drives the helpers directly.
    #[test]
    fn sweep_grid_covers_three_intensities_and_kinds() {
        let plans = sweep_plans();
        assert_eq!(plans.len(), 9);
        let kinds: std::collections::BTreeSet<&str> =
            plans.iter().map(|(_, k, _, _)| k.as_str()).collect();
        assert_eq!(kinds.len(), 3, "{kinds:?}");
        for (_, _, intensity, plan) in &plans {
            assert!(plan.is_active(), "inactive plan in the sweep");
            assert!(*intensity > 0.0);
        }
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_no_plan() {
        let world = World::generate(sweep_world_config());
        let config = sweep_pipeline_config(4);
        let (a, _) = timed_measure(&world, &deploy_with(&world, None), &config);
        let (b, _) = timed_measure(
            &world,
            &deploy_with(&world, Some(FaultPlan::none())),
            &config,
        );
        assert_eq!(a, b);
        assert_eq!(dataset_bytes(&a), dataset_bytes(&b));
    }

    #[test]
    fn degraded_run_reports_drift_and_taxonomy() {
        let world = World::generate(sweep_world_config());
        let config = sweep_pipeline_config(4);
        let (base, _) = timed_measure(&world, &deploy_with(&world, None), &config);
        let base_ctx = AnalysisCtx::new(&world, &base);
        let base_scores = hosting_scores(&base_ctx);

        let plan = FaultPlan::flaky(SWEEP_SEED, 1.0, 0.8, vec![FaultKind::ServFail]);
        let (ds, _) = timed_measure(&world, &deploy_with(&world, Some(plan)), &config);
        let tax = ds.failure_taxonomy();
        assert!(tax.clean < tax.total, "faults did nothing");
        assert!(tax.layer_total("dns") + tax.layer_total("hosting") > 0);

        let ctx = AnalysisCtx::new(&world, &ds);
        let cov = coverage_summaries(&ctx);
        assert_eq!(cov.len(), Layer::ALL.len());
        assert!(cov[Layer::Hosting.index()].fraction < 1.0);

        let drift = drift_snapshot(&ctx, &base_scores);
        assert!(drift.countries_scored <= base_scores.len());
        // Panel entries only exist for still-observed countries, and every
        // CI must bracket its own point score's neighbourhood.
        for c in &drift.panel {
            assert!(c.ci_lo <= c.ci_hi, "{}: [{}, {}]", c.code, c.ci_lo, c.ci_hi);
        }
    }
}
