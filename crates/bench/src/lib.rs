//! Shared fixtures for the benchmark suite.
//!
//! The figure/table benches all need a measured world; building one per
//! bench would dominate the run, so a tiny world is generated, deployed,
//! and measured once per process.

use std::sync::OnceLock;
use webdep_analysis::AnalysisCtx;
use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

pub mod analysis;
pub mod evolve;
pub mod faults;
pub mod gate;
pub mod overload;
pub mod resilience;
pub mod scale;
pub mod serve;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where `/proc` is unavailable
/// (non-Linux) or the field is missing/unparseable. Callers serialize
/// absence as JSON `null` — never as a fake `0`, which downstream ratio
/// math would read as "no memory used".
///
/// The high-water mark is monotonic for the life of the process, so a
/// bench that wants per-phase peaks must run each phase in its own
/// subprocess (see [`scale`]).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb = rest.trim().trim_end_matches("kB").trim();
            return kb.parse::<u64>().ok().map(|kb| kb * 1024);
        }
    }
    None
}

/// Appends one `unix_ts,bench,summary` line to the history CSV at
/// `path`, writing the header first if the file does not exist yet.
///
/// The summary is one CSV field: any comma in it would silently shift
/// the columns for every later reader, so commas are replaced with `;`
/// here rather than trusted away at each call site.
pub fn append_history_line(
    path: &std::path::Path,
    name: &str,
    summary: &str,
) -> std::io::Result<()> {
    use std::io::Write;
    let summary = summary.replace(',', ";");
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let header = if path.exists() {
        ""
    } else {
        "unix_ts,bench,summary\n"
    };
    let line = format!("{header}{ts},{name},{summary}\n");
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
}

/// Renders a peak-RSS reading as whole mebibytes, or `n/a` where the
/// platform reports none.
pub fn fmt_rss_mb(rss: Option<u64>) -> String {
    match rss {
        Some(bytes) => (bytes >> 20).to_string(),
        None => "n/a".to_string(),
    }
}

/// The shared (world, dataset) fixture at tiny scale.
pub fn fixture() -> &'static (World, MeasuredDataset) {
    static FIXTURE: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        (world, ds)
    })
}

/// Analysis context over the shared fixture.
pub fn ctx() -> AnalysisCtx<'static> {
    let (world, ds) = fixture();
    AnalysisCtx::new(world, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 smoke for the snapshot harness: a cube build plus a full
    /// suite run over the shared world, through the same `time_suite` the
    /// `bench-snapshot` binary times, and a (tiny) affinity sweep check.
    /// A summary with commas must land as a single CSV field: commas are
    /// sanitized to `;`, never written through (a raw comma would shift
    /// the columns for every later `BENCH_history.csv` reader).
    #[test]
    fn history_summaries_are_comma_sanitized() {
        let dir = std::env::temp_dir().join(format!("webdep-history-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.csv");
        let _ = std::fs::remove_file(&path);
        append_history_line(&path, "serve", "p50 12us, p99 80us, 9 rps").unwrap();
        append_history_line(&path, "scale", "clean summary").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "unix_ts,bench,summary");
        assert_eq!(lines.len(), 3, "header plus two rows: {text:?}");
        for row in &lines[1..] {
            assert_eq!(
                row.matches(',').count(),
                2,
                "row must have exactly three fields: {row:?}"
            );
        }
        assert!(lines[1].ends_with("serve,p50 12us; p99 80us; 9 rps"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_harness_runs_cube_suite() {
        let (world, ds) = fixture();
        let t = analysis::time_suite(world, ds, false);
        assert_eq!(t.passed, t.total, "{}/{} experiments", t.passed, t.total);
        assert!(t.ctx_build_ms >= 0.0 && t.suite_wall_ms > 0.0);

        let a = analysis::time_affinity(160, 2);
        assert!(a.identical, "parallel affinity diverged from serial");
        assert!(a.sweeps > 0);
    }
}
