//! Shared fixtures for the benchmark suite.
//!
//! The figure/table benches all need a measured world; building one per
//! bench would dominate the run, so a tiny world is generated, deployed,
//! and measured once per process.

use std::sync::OnceLock;
use webdep_analysis::AnalysisCtx;
use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

/// The shared (world, dataset) fixture at tiny scale.
pub fn fixture() -> &'static (World, MeasuredDataset) {
    static FIXTURE: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        (world, ds)
    })
}

/// Analysis context over the shared fixture.
pub fn ctx() -> AnalysisCtx<'static> {
    let (world, ds) = fixture();
    AnalysisCtx::new(world, ds)
}
