//! Shared fixtures for the benchmark suite.
//!
//! The figure/table benches all need a measured world; building one per
//! bench would dominate the run, so a tiny world is generated, deployed,
//! and measured once per process.

use std::sync::OnceLock;
use webdep_analysis::AnalysisCtx;
use webdep_pipeline::{measure, MeasuredDataset, PipelineConfig};
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

pub mod analysis;
pub mod evolve;
pub mod faults;
pub mod resilience;
pub mod scale;
pub mod serve;

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where `/proc` is unavailable (non-Linux).
///
/// The high-water mark is monotonic for the life of the process, so a
/// bench that wants per-phase peaks must run each phase in its own
/// subprocess (see [`scale`]).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb = rest.trim().trim_end_matches("kB").trim();
            return kb.parse::<u64>().unwrap_or(0) * 1024;
        }
    }
    0
}

/// The shared (world, dataset) fixture at tiny scale.
pub fn fixture() -> &'static (World, MeasuredDataset) {
    static FIXTURE: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        (world, ds)
    })
}

/// Analysis context over the shared fixture.
pub fn ctx() -> AnalysisCtx<'static> {
    let (world, ds) = fixture();
    AnalysisCtx::new(world, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 smoke for the snapshot harness: a cube build plus a full
    /// suite run over the shared world, through the same `time_suite` the
    /// `bench-snapshot` binary times, and a (tiny) affinity sweep check.
    #[test]
    fn snapshot_harness_runs_cube_suite() {
        let (world, ds) = fixture();
        let t = analysis::time_suite(world, ds, false);
        assert_eq!(t.passed, t.total, "{}/{} experiments", t.passed, t.total);
        assert!(t.ctx_build_ms >= 0.0 && t.suite_wall_ms > 0.0);

        let a = analysis::time_affinity(160, 2);
        assert!(a.identical, "parallel affinity diverged from serial");
        assert!(a.sweeps > 0);
    }
}
