//! One bench per paper table: Tables 1–3 (provider/CA classes) and
//! Tables 5–8 (per-country scores per layer), each printing its headline
//! rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webdep_analysis::centralization::layer_table;
use webdep_analysis::classes::classify;
use webdep_analysis::correlations::class_correlations;
use webdep_bench::ctx;
use webdep_webgen::Layer;

fn tab01_02_03_classes(c: &mut Criterion) {
    let ctx = ctx();
    for (tab, layer) in [(1, Layer::Hosting), (2, Layer::Dns), (3, Layer::Ca)] {
        let cls = classify(&ctx, layer);
        eprintln!(
            "tab{tab:02} {} classes: {:?}",
            layer.name(),
            cls.class_counts
        );
    }
    let mut g = c.benchmark_group("tab01_02_03_classes");
    g.sample_size(10);
    for (name, layer) in [
        ("hosting", Layer::Hosting),
        ("dns", Layer::Dns),
        ("ca", Layer::Ca),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(classify(&ctx, layer))));
    }
    g.finish();
}

fn tab05_08_scores(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("tab05_08_scores");
    g.sample_size(10);
    for layer in Layer::ALL {
        let t = layer_table(&ctx, layer);
        let rho = t.paper_correlation().map(|c| c.rho).unwrap_or(f64::NAN);
        eprintln!(
            "tab{:02} {}: #1 {} {:.4} ... #150 {} {:.4} | mean {:.4} | rho vs paper {:.3}",
            5 + layer.index(),
            layer.name(),
            t.rows[0].code,
            t.rows[0].s,
            t.rows.last().unwrap().code,
            t.rows.last().unwrap().s,
            t.summary.as_ref().map(|s| s.mean).unwrap_or(f64::NAN),
            rho
        );
        g.bench_function(layer.name(), |b| {
            b.iter(|| black_box(layer_table(&ctx, layer)))
        });
    }
    g.finish();
}

fn sec52_correlations(c: &mut Criterion) {
    let ctx = ctx();
    let cls = classify(&ctx, Layer::Hosting);
    let corr = class_correlations(&ctx, Layer::Hosting, &cls);
    eprintln!(
        "sec52: S~XL {:.2} (paper 0.90) | S~L-GP {:.2} (0.19) | S~L-RP {:.2} (-0.72) | S~ins {:.2} (-0.61)",
        corr.s_vs_xlgp.map(|c| c.rho).unwrap_or(f64::NAN),
        corr.s_vs_lgp.map(|c| c.rho).unwrap_or(f64::NAN),
        corr.s_vs_lrp.map(|c| c.rho).unwrap_or(f64::NAN),
        corr.s_vs_insularity.map(|c| c.rho).unwrap_or(f64::NAN),
    );
    let mut g = c.benchmark_group("sec52_class_correlations");
    g.sample_size(10);
    g.bench_function("all_four", |b| {
        b.iter(|| black_box(class_correlations(&ctx, Layer::Hosting, &cls)))
    });
    g.finish();
}

criterion_group!(
    benches,
    tab01_02_03_classes,
    tab05_08_scores,
    sec52_correlations
);
criterion_main!(benches);
