//! Substrate benches: DNS wire codec, iterative resolution, TLS
//! handshakes, and the enrichment-database lookups that run once per
//! measured site.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::Arc;
use webdep_dns::resolver::{IterativeResolver, ResolverConfig};
use webdep_dns::server::AuthServer;
use webdep_dns::wire::{decode, encode, Message, Record, RecordData, RecordType};
use webdep_dns::zone::Zone;
use webdep_dns::DomainName;
use webdep_geodb::PrefixTable;
use webdep_netsim::{NetConfig, Network, Prefix, Region};
use webdep_tls::cert::{CertStore, Certificate, CertificateChain};
use webdep_tls::scanner::{Scanner, ScannerConfig};
use webdep_tls::server::TlsServer;

fn n(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

fn dns_wire(c: &mut Criterion) {
    let mut msg = Message::query(7, n("www.example.com"), RecordType::A);
    let mut resp = Message::response_to(&msg);
    for i in 0..8u8 {
        resp.answers.push(Record {
            name: n("www.example.com"),
            ttl: 300,
            data: RecordData::A(Ipv4Addr::new(192, 0, 2, i)),
        });
    }
    msg.recursion_desired = true;
    let encoded = encode(&resp);
    let mut g = c.benchmark_group("dns_wire");
    g.bench_function("encode_8_answers", |b| b.iter(|| black_box(encode(&resp))));
    g.bench_function("decode_8_answers", |b| {
        b.iter(|| black_box(decode(&encoded).unwrap()))
    });
    g.finish();
}

fn dns_resolution(c: &mut Criterion) {
    // A one-level world: root delegating example.com with glue.
    let net = Network::new(NetConfig::default());
    let root_ip = ip("198.41.0.4");
    let auth_ip = ip("203.0.113.53");
    let mut root = Zone::new(DomainName::root());
    root.delegate(n("com"), &[n("a.gtld.net")], &[(n("a.gtld.net"), auth_ip)]);
    let mut com = Zone::new(n("com"));
    com.delegate(
        n("example.com"),
        &[n("ns1.example.com")],
        &[(n("ns1.example.com"), auth_ip)],
    );
    let mut example = Zone::new(n("example.com"));
    for i in 0..200u32 {
        example.add_a(
            n(&format!("host{i}.example.com")),
            Ipv4Addr::new(203, 0, 114, (i % 250) as u8),
        );
    }
    let _root_server = AuthServer::spawn(
        net.bind(root_ip, 53, Region::NORTH_AMERICA).unwrap(),
        vec![Arc::new(root)],
    );
    let _auth_server = AuthServer::spawn(
        net.bind(auth_ip, 53, Region::NORTH_AMERICA).unwrap(),
        vec![Arc::new(com), Arc::new(example)],
    );

    let mut g = c.benchmark_group("dns_resolution");
    g.sample_size(20);
    let ep = net
        .bind(ip("10.0.0.9"), 5353, Region::NORTH_AMERICA)
        .unwrap();
    let mut resolver = IterativeResolver::new(ep, vec![root_ip], ResolverConfig::default());
    // Warm the delegation cache once, then measure cached resolution.
    resolver.resolve_a(&n("host0.example.com")).unwrap();
    let mut i = 0u32;
    g.bench_function("cached_delegation_resolve", |b| {
        b.iter(|| {
            i = (i + 1) % 200;
            black_box(
                resolver
                    .resolve_a(&n(&format!("host{i}.example.com")))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn tls_scan(c: &mut Criterion) {
    let net = Network::new(NetConfig::default());
    let server_ip = ip("203.0.113.1");
    let root = Certificate {
        serial: 1,
        subject: "Bench Root".into(),
        san: vec![],
        issuer_id: 1,
        issuer_name: "Bench Root".into(),
        not_before: 0,
        not_after: u64::MAX,
        is_ca: true,
    };
    let mut store = CertStore::new();
    for i in 0..64 {
        store.install(CertificateChain {
            certs: vec![
                Certificate {
                    serial: 100 + i,
                    subject: format!("site{i}.example"),
                    san: vec![],
                    issuer_id: 1,
                    issuer_name: "Bench Root".into(),
                    not_before: 0,
                    not_after: u64::MAX,
                    is_ca: false,
                },
                root.clone(),
            ],
        });
    }
    let _server = TlsServer::spawn(
        net.bind(server_ip, 443, Region::EUROPE).unwrap(),
        Arc::new(store),
    );
    let ep = net.bind(ip("10.0.0.9"), 5001, Region::EUROPE).unwrap();
    let mut scanner = Scanner::new(ep, ScannerConfig::default());
    let mut g = c.benchmark_group("tls_scan");
    g.sample_size(20);
    let mut i = 0u32;
    g.bench_function("handshake_roundtrip", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(
                scanner
                    .scan(server_ip, &format!("site{i}.example"))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn enrichment_lookups(c: &mut Criterion) {
    // pfx2as at a realistic scale: ~30k prefixes.
    let mut table = PrefixTable::new();
    for i in 0..30_000u32 {
        let base = Ipv4Addr::from(0x3C00_0000u32 + (i << 12));
        table.insert(Prefix::new(base, 20).unwrap(), 1000 + i);
    }
    let probe = Ipv4Addr::from(0x3C00_0000u32 + (17_123 << 12) + 99);
    let mut g = c.benchmark_group("enrichment");
    g.bench_function("pfx2as_lookup_30k", |b| {
        b.iter(|| black_box(table.lookup(probe)))
    });
    g.finish();
}

criterion_group!(
    benches,
    dns_wire,
    dns_resolution,
    tls_scan,
    enrichment_lookups
);
criterion_main!(benches);
