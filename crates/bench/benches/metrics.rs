//! Micro-benchmarks for the metric suite (`appA_emd_equivalence` plus the
//! scoring/statistics primitives every experiment depends on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webdep_core::centralization::centralization_score;
use webdep_core::dist::CountDist;
use webdep_core::emd::emd_to_decentralized_via_transport;
use webdep_core::regionalization::UsageCurve;
use webdep_core::topn::top_n_share;
use webdep_stats::affinity::{affinity_propagation, AffinityConfig};
use webdep_stats::kmeans::kmeans;
use webdep_stats::{pearson, spearman};
use webdep_webgen::calibrate::solve_counts;

fn zipf_counts(n: usize, exponent: f64, scale: f64) -> Vec<u64> {
    (1..=n)
        .map(|i| ((scale / (i as f64).powf(exponent)).ceil()) as u64)
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("centralization_score");
    for &n in &[10usize, 100, 1_000, 10_000] {
        let dist = CountDist::from_counts(zipf_counts(n, 1.1, 50_000.0)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &dist, |b, d| {
            b.iter(|| black_box(centralization_score(d)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("topn_baseline");
    let dist = CountDist::from_counts(zipf_counts(1_000, 1.1, 50_000.0)).unwrap();
    g.bench_function("top_10_share", |b| {
        b.iter(|| black_box(top_n_share(&dist, 10)))
    });
    g.finish();
}

fn bench_emd_solver(c: &mut Criterion) {
    // Appendix A: closed form vs the exact transportation solver.
    let mut g = c.benchmark_group("appA_emd_equivalence");
    g.sample_size(10);
    for &n in &[20u64, 60, 120] {
        let dist = CountDist::from_counts(zipf_counts(6, 1.0, n as f64 / 2.0)).unwrap();
        eprintln!(
            "appA check C={} closed={:.6} transport={:.6}",
            dist.total(),
            centralization_score(&dist),
            emd_to_decentralized_via_transport(&dist).unwrap()
        );
        g.bench_with_input(BenchmarkId::new("transport", n), &dist, |b, d| {
            b.iter(|| black_box(emd_to_decentralized_via_transport(d).unwrap()))
        });
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    for &pool in &[100usize, 400] {
        g.bench_with_input(BenchmarkId::new("solve_counts", pool), &pool, |b, &p| {
            b.iter(|| black_box(solve_counts(0.15, 10_000, p, 0.3)))
        });
    }
    g.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let xs: Vec<f64> = (0..150).map(|i| (i as f64 * 0.7).sin()).collect();
    let ys: Vec<f64> = (0..150)
        .map(|i| (i as f64 * 0.7).sin() + 0.1 * (i as f64).cos())
        .collect();
    let mut g = c.benchmark_group("correlation");
    g.bench_function("pearson_150", |b| b.iter(|| black_box(pearson(&xs, &ys))));
    g.bench_function("spearman_150", |b| b.iter(|| black_box(spearman(&xs, &ys))));
    g.finish();

    let curve_data: Vec<f64> = (0..150).map(|i| 60.0 / (1.0 + i as f64)).collect();
    let mut g = c.benchmark_group("regionalization");
    g.bench_function("usage_curve_150", |b| {
        b.iter(|| {
            let c = UsageCurve::new(curve_data.clone());
            black_box((c.usage(), c.endemicity_ratio()))
        })
    });
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    // Provider-classification workloads (Figure 6 ablation: affinity
    // propagation vs the k-means baseline).
    let points: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            let cluster = i % 4;
            vec![
                cluster as f64 * 0.25 + 0.01 * ((i * 37 % 11) as f64),
                (3 - cluster) as f64 * 0.25 + 0.01 * ((i * 53 % 7) as f64),
            ]
        })
        .collect();
    let mut g = c.benchmark_group("fig06_clustering_ablation");
    g.sample_size(10);
    g.bench_function("affinity_propagation_200", |b| {
        b.iter(|| black_box(affinity_propagation(&points, &AffinityConfig::default())))
    });
    g.bench_function("kmeans_200_k8", |b| {
        b.iter(|| black_box(kmeans(&points, 8, 42, 100)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scoring,
    bench_emd_solver,
    bench_calibration,
    bench_statistics,
    bench_clustering
);
criterion_main!(benches);
