//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the head-share formula (how sensitive is calibration accuracy to the
//!   anchor?);
//! * the two-regime tail (Zipf body + 1-site thin tail) vs what a pure
//!   Zipf would do to the §5.1 coverage bound;
//! * affinity propagation vs k-means for provider classes (timing lives in
//!   `metrics.rs`; here the *outcome* difference is printed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use webdep_core::centralization::centralization_score_counts_ref;
use webdep_core::dist::CountDist;
use webdep_webgen::calibrate::solve_counts;
use webdep_webgen::depmap::head_share_for_score;

fn head_share_sensitivity(c: &mut Criterion) {
    // Perturb the head anchor by ±30% and report the calibration error:
    // the solver's tail bisecition absorbs most of the perturbation, which
    // is why approximate head anchors suffice.
    let target = 0.1358; // the US hosting score
    for scale in [0.7, 0.85, 1.0, 1.15, 1.3] {
        let head = (head_share_for_score(target) * scale).min(0.9);
        let counts = solve_counts(target, 10_000, 420, head);
        let achieved = centralization_score_counts_ref(&counts).unwrap();
        eprintln!(
            "ablation head_share x{scale}: head {head:.3} -> achieved {achieved:.4} (target {target})"
        );
    }
    let mut g = c.benchmark_group("ablation_head_share");
    for scale in [0.7f64, 1.0, 1.3] {
        let head = (head_share_for_score(target) * scale).min(0.9);
        g.bench_with_input(BenchmarkId::from_parameter(scale), &head, |b, &h| {
            b.iter(|| black_box(solve_counts(target, 10_000, 420, h)))
        });
    }
    g.finish();
}

fn tail_regime_coverage(c: &mut Criterion) {
    // The §5.1 bound (90% of sites on <206 providers) is what the
    // two-regime tail buys. Compare coverage across pool sizes.
    for pool in [200usize, 420, 800] {
        let counts = solve_counts(0.0411, 10_000, pool, 0.14); // Iran-like
        let dist = CountDist::from_counts(counts).unwrap();
        eprintln!(
            "ablation tail pool={pool}: providers {} coverage90 {}",
            dist.num_providers(),
            dist.providers_to_cover(0.90)
        );
    }
    let mut g = c.benchmark_group("ablation_tail_regime");
    g.bench_function("solve_iran_like_pool_800", |b| {
        b.iter(|| black_box(solve_counts(0.0411, 10_000, 800, 0.14)))
    });
    g.finish();
}

fn clustering_outcomes(c: &mut Criterion) {
    use webdep_stats::affinity::{affinity_propagation, AffinityConfig};
    use webdep_stats::kmeans::kmeans;
    // A provider-like feature cloud: a few big globals, a band of mediums,
    // a regional wall at high endemicity.
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for i in 0..3 {
        pts.push(vec![1.0 - 0.05 * i as f64, 0.1 + 0.02 * i as f64]);
    }
    for i in 0..25 {
        pts.push(vec![0.25 + 0.004 * i as f64, 0.2 + 0.01 * (i % 5) as f64]);
    }
    for i in 0..120 {
        pts.push(vec![0.01 + 0.0005 * i as f64, 0.9 + 0.0008 * i as f64]);
    }
    let ap = affinity_propagation(&pts, &AffinityConfig::default()).unwrap();
    let km = kmeans(&pts, ap.num_clusters(), 42, 100).unwrap();
    eprintln!(
        "ablation clustering: AP found {} clusters (converged {}), k-means inertia at same k: {:.4}",
        ap.num_clusters(),
        ap.converged,
        km.inertia
    );
    let mut g = c.benchmark_group("ablation_clustering_outcome");
    g.sample_size(10);
    g.bench_function("ap_provider_cloud", |b| {
        b.iter(|| black_box(affinity_propagation(&pts, &AffinityConfig::default())))
    });
    g.finish();
}

criterion_group!(
    benches,
    head_share_sensitivity,
    tail_regime_coverage,
    clustering_outcomes
);
criterion_main!(benches);
