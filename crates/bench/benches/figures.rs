//! One bench per paper figure: each group regenerates the figure's data
//! series from the measured fixture and prints the headline rows once, so
//! a bench run doubles as a figure-regeneration harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webdep_analysis::breakdown::{ca_breakdown, provider_breakdown, tld_breakdown};
use webdep_analysis::centralization::layer_table;
use webdep_analysis::classes::classify;
use webdep_analysis::figures::{
    fig12_histograms, fig1_topn_shortcoming, fig2_emd_example, fig3_example_curves,
    fig4_usage_endemicity,
};
use webdep_analysis::insularity::insularity_table;
use webdep_analysis::regional::{continent_matrix, subregion_summary, Attribution};
use webdep_bench::ctx;
use webdep_webgen::Layer;

fn fig01(c: &mut Criterion) {
    let ctx = ctx();
    let f = fig1_topn_shortcoming(&ctx);
    for (code, _, top5, s) in &f.curves {
        eprintln!("fig01 {code}: top5 {:.2}, S {:.4}", top5, s);
    }
    c.bench_function("fig01_topn_shortcoming", |b| {
        b.iter(|| black_box(fig1_topn_shortcoming(&ctx)))
    });
}

fn fig02(c: &mut Criterion) {
    let f = fig2_emd_example();
    eprintln!(
        "fig02 A: S={:.4} (paper 0.28); B: S={:.4} (paper 0.32)",
        f.country_a.1, f.country_b.1
    );
    c.bench_function("fig02_emd_example", |b| {
        b.iter(|| black_box(fig2_emd_example()))
    });
}

fn fig03(c: &mut Criterion) {
    let f = fig3_example_curves(10_000);
    for (target, achieved, cum) in &f.curves {
        eprintln!(
            "fig03 target {target}: achieved {achieved:.4} over {} providers",
            cum.len()
        );
    }
    let mut g = c.benchmark_group("fig03_example_s_values");
    g.sample_size(10);
    g.bench_function("generate", |b| {
        b.iter(|| black_box(fig3_example_curves(10_000)))
    });
    g.finish();
}

fn fig04(c: &mut Criterion) {
    let ctx = ctx();
    let f = fig4_usage_endemicity(&ctx, "Cloudflare", "Beget");
    for row in &f {
        eprintln!(
            "fig04 {}: U={:.1} E={:.1} E_R={:.3}",
            row.name, row.usage, row.endemicity, row.endemicity_ratio
        );
    }
    c.bench_function("fig04_usage_endemicity", |b| {
        b.iter(|| black_box(fig4_usage_endemicity(&ctx, "Cloudflare", "Beget")))
    });
}

fn fig05(c: &mut Criterion) {
    let ctx = ctx();
    let t = layer_table(&ctx, Layer::Hosting);
    eprintln!(
        "fig05 hosting: most {} {:.4} | median {} | least {} {:.4}",
        t.rows[0].code,
        t.rows[0].s,
        t.median_country.unwrap_or("-"),
        t.rows.last().unwrap().code,
        t.rows.last().unwrap().s
    );
    let mut g = c.benchmark_group("fig05_hosting_scores");
    g.sample_size(10);
    g.bench_function("layer_table", |b| {
        b.iter(|| black_box(layer_table(&ctx, Layer::Hosting)))
    });
    g.finish();
}

fn fig06(c: &mut Criterion) {
    let ctx = ctx();
    let cls = classify(&ctx, Layer::Hosting);
    eprintln!(
        "fig06 hosting classes: {} clusters, counts {:?}",
        cls.num_clusters, cls.class_counts
    );
    let mut g = c.benchmark_group("fig06_provider_classes");
    g.sample_size(10);
    g.bench_function("classify_hosting", |b| {
        b.iter(|| black_box(classify(&ctx, Layer::Hosting)))
    });
    g.finish();
}

fn fig07_14_15_16(c: &mut Criterion) {
    let ctx = ctx();
    let host_classes = classify(&ctx, Layer::Hosting);
    let dns_classes = classify(&ctx, Layer::Dns);
    let ca_classes = classify(&ctx, Layer::Ca);
    let b7 = provider_breakdown(&ctx, Layer::Hosting, &host_classes);
    eprintln!(
        "fig07 head country {} Cloudflare {:.0}%",
        b7.stacks[0].code,
        100.0 * b7.stacks[0].shares[0]
    );
    let mut g = c.benchmark_group("fig07_14_15_16_breakdowns");
    g.sample_size(10);
    g.bench_function("fig07_hosting", |b| {
        b.iter(|| black_box(provider_breakdown(&ctx, Layer::Hosting, &host_classes)))
    });
    g.bench_function("fig14_dns", |b| {
        b.iter(|| black_box(provider_breakdown(&ctx, Layer::Dns, &dns_classes)))
    });
    g.bench_function("fig15_ca", |b| {
        b.iter(|| black_box(ca_breakdown(&ctx, &ca_classes)))
    });
    g.bench_function("fig16_tld", |b| b.iter(|| black_box(tld_breakdown(&ctx))));
    g.finish();
}

fn fig08(c: &mut Criterion) {
    let ctx = ctx();
    for attr in [
        Attribution::HostingHq,
        Attribution::IpGeo,
        Attribution::NsGeo,
    ] {
        let m = continent_matrix(&ctx, attr);
        eprintln!(
            "fig08 {attr:?} row AF: {:?}",
            m.share[3]
                .iter()
                .map(|v| (v * 100.0).round())
                .collect::<Vec<_>>()
        );
    }
    let mut g = c.benchmark_group("fig08_continent_matrices");
    g.sample_size(10);
    g.bench_function("all_three", |b| {
        b.iter(|| {
            black_box((
                continent_matrix(&ctx, Attribution::HostingHq),
                continent_matrix(&ctx, Attribution::IpGeo),
                continent_matrix(&ctx, Attribution::NsGeo),
            ))
        })
    });
    g.finish();
}

fn fig09_10(c: &mut Criterion) {
    let ctx = ctx();
    let rows = subregion_summary(&ctx);
    let top = rows
        .iter()
        .max_by(|a, b| a.mean_s[0].partial_cmp(&b.mean_s[0]).unwrap())
        .unwrap();
    eprintln!(
        "fig09 most centralized subregion (hosting): {} {:.4}",
        top.subregion, top.mean_s[0]
    );
    let mut g = c.benchmark_group("fig09_10_layer_subregion");
    g.sample_size(10);
    g.bench_function("subregion_summary", |b| {
        b.iter(|| black_box(subregion_summary(&ctx)))
    });
    g.finish();
}

fn fig11_13_20_22(c: &mut Criterion) {
    let ctx = ctx();
    for layer in Layer::ALL {
        let t = insularity_table(&ctx, layer);
        eprintln!(
            "fig20-22 {}: most insular {} {:.1}%",
            layer.name(),
            t.rows[0].code,
            100.0 * t.rows[0].insularity
        );
    }
    let mut g = c.benchmark_group("fig11_13_20_22_insularity");
    g.sample_size(10);
    g.bench_function("all_layers_with_cdf", |b| {
        b.iter(|| {
            for layer in Layer::ALL {
                let t = insularity_table(&ctx, layer);
                black_box(t.cdf());
            }
        })
    });
    g.finish();
}

fn fig12(c: &mut Criterion) {
    let ctx = ctx();
    let f = fig12_histograms(&ctx);
    for (name, hist, marker) in &f.layers {
        eprintln!(
            "fig12 {name}: {} countries binned, global marker {:?}",
            hist.total(),
            marker.map(|m| (m * 1000.0).round() / 1000.0)
        );
    }
    let mut g = c.benchmark_group("fig12_s_histograms");
    g.sample_size(10);
    g.bench_function("histograms", |b| {
        b.iter(|| black_box(fig12_histograms(&ctx)))
    });
    g.finish();
}

fn fig17_19(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("fig17_19_sorted_curves");
    g.sample_size(10);
    g.bench_function("dns_ca_tld_tables", |b| {
        b.iter(|| {
            black_box((
                layer_table(&ctx, Layer::Dns),
                layer_table(&ctx, Layer::Ca),
                layer_table(&ctx, Layer::Tld),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07_14_15_16,
    fig08,
    fig09_10,
    fig11_13_20_22,
    fig12,
    fig17_19
);
criterion_main!(benches);
