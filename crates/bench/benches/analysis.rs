//! The analysis engine: cube build, cube-vs-legacy accessors, and the
//! parallel affinity-propagation sweep. (The full `ExperimentSuite`
//! before/after wall is timed by `bench-snapshot`, which writes
//! `BENCH_analysis.json`; these benches cover the hot pieces.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webdep_analysis::centralization::layer_table;
use webdep_analysis::AnalysisCtx;
use webdep_bench::analysis::synthetic_points;
use webdep_bench::fixture;
use webdep_stats::affinity::{affinity_propagation, AffinityConfig};
use webdep_webgen::{Layer, World};

fn cube_build(c: &mut Criterion) {
    let (world, ds) = fixture();
    let mut g = c.benchmark_group("cube_build");
    g.sample_size(10);
    g.bench_function("tiny_world", |b| {
        b.iter(|| black_box(AnalysisCtx::new(world, ds)))
    });
    g.finish();
}

fn accessors_cube_vs_legacy(c: &mut Criterion) {
    let (world, ds) = fixture();
    let cube = AnalysisCtx::new(world, ds);
    let legacy = AnalysisCtx::new_legacy(world, ds);
    let us = World::country_index("US").unwrap();
    let owner = cube.country_counts(us, Layer::Hosting)[0].0;

    let mut g = c.benchmark_group("owner_share_150_countries");
    g.sample_size(10);
    g.bench_function("cube", |b| {
        b.iter(|| {
            for ci in 0..150 {
                black_box(cube.owner_share(ci, Layer::Hosting, owner));
            }
        })
    });
    g.bench_function("legacy", |b| {
        b.iter(|| {
            for ci in 0..150 {
                black_box(legacy.owner_share(ci, Layer::Hosting, owner));
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("layer_table_hosting");
    g.sample_size(10);
    g.bench_function("cube", |b| {
        b.iter(|| black_box(layer_table(&cube, Layer::Hosting)))
    });
    g.bench_function("legacy", |b| {
        b.iter(|| black_box(layer_table(&legacy, Layer::Hosting)))
    });
    g.finish();
}

fn affinity_sweeps(c: &mut Criterion) {
    let points = synthetic_points(512, 4);
    let mut g = c.benchmark_group("affinity_512pts");
    g.sample_size(10);
    for (name, threads, baseline_sweeps) in [
        ("baseline", 1usize, true),
        ("tiled_serial", 1, false),
        ("tiled_parallel", 0, false),
    ] {
        let config = AffinityConfig {
            threads,
            baseline_sweeps,
            ..AffinityConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(affinity_propagation(&points, &config)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    cube_build,
    accessors_cube_vs_legacy,
    affinity_sweeps
);
criterion_main!(benches);
