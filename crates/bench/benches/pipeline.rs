//! End-to-end benches: world generation, deployment, measurement, the
//! §5.4 longitudinal run, and the §3.4 vantage validation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use webdep_analysis::longitudinal::compare;
use webdep_analysis::vantage::validate_vantage;
use webdep_analysis::AnalysisCtx;
use webdep_bench::{ctx, fixture};
use webdep_pipeline::{measure, PipelineConfig};
use webdep_webgen::evolve::evolve;
use webdep_webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn world_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_generation");
    g.sample_size(10);
    g.bench_function("tiny_150_countries", |b| {
        b.iter(|| black_box(World::generate(WorldConfig::tiny())))
    });
    g.finish();
}

fn deployment(c: &mut Criterion) {
    let (world, _) = fixture();
    let mut g = c.benchmark_group("deployment");
    g.sample_size(10);
    g.bench_function("deploy_tiny", |b| {
        b.iter(|| black_box(DeployedWorld::deploy(world, DeployConfig::default())))
    });
    g.finish();
}

fn measurement(c: &mut Criterion) {
    let (world, _) = fixture();
    let dep = DeployedWorld::deploy(world, DeployConfig::default());
    let mut g = c.benchmark_group("measurement");
    g.sample_size(10);
    g.bench_function("measure_tiny_8_workers", |b| {
        b.iter(|| {
            black_box(measure(
                world,
                &dep,
                &PipelineConfig {
                    workers: 8,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

fn sec54_longitudinal(c: &mut Criterion) {
    let (world, ds) = fixture();
    let world25 = evolve(world);
    let dep25 = DeployedWorld::deploy(&world25, DeployConfig::default());
    let ds25 = measure(&world25, &dep25, &PipelineConfig::default());
    let old_ctx = AnalysisCtx::new(world, ds);
    let new_ctx = AnalysisCtx::new(&world25, &ds25);
    let rep = compare(&old_ctx, &new_ctx);
    eprintln!(
        "sec54: rho {:.3} (paper 0.98) | CF {:+.1} pts (+3.8) | Jaccard {:.2} (~0.37)",
        rep.score_correlation.map(|c| c.rho).unwrap_or(f64::NAN),
        rep.mean_cloudflare_delta_pts,
        rep.mean_jaccard
    );
    let mut g = c.benchmark_group("sec54_longitudinal");
    g.sample_size(10);
    g.bench_function("evolve", |b| b.iter(|| black_box(evolve(world))));
    g.bench_function("compare", |b| {
        b.iter(|| black_box(compare(&old_ctx, &new_ctx)))
    });
    g.finish();
}

fn sec34_vantage(c: &mut Criterion) {
    let (world, _) = fixture();
    let ctx = ctx();
    let dep = DeployedWorld::deploy(world, DeployConfig::default());
    let v = validate_vantage(&ctx, &dep, 40, 15);
    eprintln!(
        "sec34: rho {:.3} over {} countries (paper 0.96)",
        v.correlation.map(|c| c.rho).unwrap_or(f64::NAN),
        v.scores.len()
    );
    let mut g = c.benchmark_group("sec34_vantage_validation");
    g.sample_size(10);
    g.bench_function("validate_10_countries", |b| {
        b.iter(|| black_box(validate_vantage(&ctx, &dep, 40, 15)))
    });
    g.finish();
}

criterion_group!(
    benches,
    world_generation,
    deployment,
    measurement,
    sec54_longitudinal,
    sec34_vantage
);
criterion_main!(benches);
