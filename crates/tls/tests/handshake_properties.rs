//! Property tests for the TLS handshake framing and certificate codec.

use proptest::prelude::*;
use webdep_tls::cert::{Certificate, CertificateChain};
use webdep_tls::handshake::{decode_flight, encode_flight, HandshakeMessage};

fn arb_cert() -> impl Strategy<Value = Certificate> {
    (
        any::<u64>(),
        "[a-z0-9.-]{1,40}",
        prop::collection::vec("[a-z0-9.*-]{1,30}", 0..4),
        any::<u32>(),
        "[ -~]{0,40}",
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(serial, subject, san, issuer_id, issuer_name, nb, na, is_ca)| Certificate {
                serial,
                subject,
                san,
                issuer_id,
                issuer_name,
                not_before: nb.min(na),
                not_after: nb.max(na),
                is_ca,
            },
        )
}

fn arb_message() -> impl Strategy<Value = HandshakeMessage> {
    prop_oneof![
        (any::<u64>(), "[a-z0-9.-]{1,50}")
            .prop_map(|(random, sni)| { HandshakeMessage::ClientHello { random, sni } }),
        (any::<u64>(), any::<u16>())
            .prop_map(|(random, cipher)| { HandshakeMessage::ServerHello { random, cipher } }),
        prop::collection::vec(arb_cert(), 0..4)
            .prop_map(|certs| HandshakeMessage::Certificate(CertificateChain { certs })),
        any::<u8>().prop_map(HandshakeMessage::Alert),
    ]
}

proptest! {
    /// Flights of arbitrary messages roundtrip exactly.
    #[test]
    fn flight_roundtrip(msgs in prop::collection::vec(arb_message(), 0..5)) {
        let bytes = encode_flight(&msgs);
        let back = decode_flight(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back, msgs);
    }

    /// Arbitrary bytes never panic the flight decoder.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_flight(&bytes);
    }

    /// Certificate decode over arbitrary bytes never panics and never
    /// reads out of bounds.
    #[test]
    fn cert_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut pos = 0;
        let _ = Certificate::decode_from(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
        let mut pos = 0;
        let _ = CertificateChain::decode_from(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
    }

    /// Wildcard matching never matches across label boundaries.
    #[test]
    fn wildcard_single_label(host_label in "[a-z]{1,8}", suffix in "[a-z]{1,8}\\.[a-z]{2,3}") {
        let cert = Certificate {
            serial: 1,
            subject: format!("*.{}", suffix),
            san: vec![],
            issuer_id: 0,
            issuer_name: String::new(),
            not_before: 0,
            not_after: u64::MAX,
            is_ca: false,
        };
        let direct = format!("{}.{}", host_label, suffix);
        let nested = format!("a.{}.{}", host_label, suffix);
        let matches_direct = cert.matches_hostname(&direct);
        let matches_nested = cert.matches_hostname(&nested);
        let matches_bare = cert.matches_hostname(&suffix);
        prop_assert!(matches_direct);
        prop_assert!(!matches_nested);
        prop_assert!(!matches_bare);
    }
}
