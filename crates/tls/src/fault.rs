//! Applying a [`FaultPlan`] to TLS handshake flights.
//!
//! The serving side calls [`apply_tls_fault`] on every ready server flight.
//! Decisions are keyed on `(server ip, sni)` — deterministic across
//! retries, like the DNS side.

use crate::handshake::{encode_flight, HandshakeMessage};
use bytes::Bytes;
use std::net::Ipv4Addr;
use webdep_netsim::{FaultKind, FaultPlan, FaultedReply};

/// Alert code fault-injected refusals answer with (mirrors TLS's
/// `internal_error`, 80).
pub const ALERT_INTERNAL_ERROR: u8 = 80;

/// Runs the clean server `flight` for `sni` through `plan` as server `ip`.
///
/// The returned [`FaultedReply`] carries the payload to send (`None` when
/// the fault swallows the flight) — possibly a fatal alert, a truncated
/// prefix, or a garbled flight — and, for [`FaultKind::Delay`], how long
/// delivery must wait. The delay is never slept here; the serving context
/// schedules it (see [`FaultedReply`]).
pub fn apply_tls_fault(plan: &FaultPlan, ip: Ipv4Addr, sni: &str, flight: Bytes) -> FaultedReply {
    match plan.query_fault(ip, sni.as_bytes()) {
        None => FaultedReply::clean(flight),
        Some(FaultKind::Drop) => FaultedReply::swallowed(),
        Some(FaultKind::ServFail) => {
            FaultedReply::clean(encode_flight(&[HandshakeMessage::Alert(
                ALERT_INTERNAL_ERROR,
            )]))
        }
        Some(FaultKind::Truncate) => {
            FaultedReply::clean(Bytes::from(flight[..flight.len() / 2].to_vec()))
        }
        Some(FaultKind::Garble) => {
            // Flip the leading frame type: the flight no longer parses.
            let mut v = flight.to_vec();
            if let Some(b) = v.first_mut() {
                *b ^= 0xFF;
            }
            FaultedReply::clean(Bytes::from(v))
        }
        Some(FaultKind::Delay) => FaultedReply {
            payload: Some(flight),
            delay: Some(plan.delay),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::decode_flight;

    fn flight() -> Bytes {
        encode_flight(&[HandshakeMessage::ServerHello {
            random: 7,
            cipher: 1,
        }])
    }

    fn plan_with(kind: FaultKind) -> FaultPlan {
        FaultPlan::flaky(1, 1.0, 1.0, vec![kind])
    }

    #[test]
    fn passthrough_and_drop() {
        let ip = "1.2.3.4".parse().unwrap();
        assert_eq!(
            apply_tls_fault(&FaultPlan::none(), ip, "a.example", flight()),
            FaultedReply::clean(flight())
        );
        assert_eq!(
            apply_tls_fault(&plan_with(FaultKind::Drop), ip, "a.example", flight()),
            FaultedReply::swallowed()
        );
    }

    #[test]
    fn refusal_is_a_fatal_alert() {
        let ip = "1.2.3.4".parse().unwrap();
        let out = apply_tls_fault(&plan_with(FaultKind::ServFail), ip, "a.example", flight());
        let frames = decode_flight(&out.payload.unwrap()).unwrap();
        assert_eq!(frames, vec![HandshakeMessage::Alert(ALERT_INTERNAL_ERROR)]);
    }

    #[test]
    fn truncated_and_garbled_flights_do_not_parse() {
        let ip = "1.2.3.4".parse().unwrap();
        for kind in [FaultKind::Truncate, FaultKind::Garble] {
            let out = apply_tls_fault(&plan_with(kind), ip, "a.example", flight())
                .payload
                .unwrap();
            assert!(decode_flight(&out).is_err(), "{kind:?} should not parse");
        }
    }

    #[test]
    fn delay_returns_the_wait_instead_of_sleeping() {
        let ip = "1.2.3.4".parse().unwrap();
        let plan = plan_with(FaultKind::Delay);
        let start = std::time::Instant::now();
        let out = apply_tls_fault(&plan, ip, "a.example", flight());
        assert!(start.elapsed() < plan.delay, "must not sleep inline");
        assert_eq!(out.delay, Some(plan.delay));
        assert_eq!(out.payload, Some(flight()));
    }
}
