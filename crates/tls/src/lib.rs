//! # webdep-tls
//!
//! TLS-like scan substrate: the stand-in for ZGrab2 in the paper's
//! methodology (§3.4). The pipeline needs exactly one thing from TLS — the
//! leaf certificate served for a hostname, whose issuer maps to a CA owner —
//! so this crate implements a minimal handshake protocol over the simulated
//! network:
//!
//! 1. client sends `ClientHello { sni }`;
//! 2. server answers `ServerHello` + `Certificate { chain }` (or an
//!    `Alert` when it has no certificate for the name);
//! 3. the scanner parses and validates the chain.
//!
//! Certificates are a compact binary encoding (not DER) carrying the fields
//! the analysis consumes: subject, SANs (with wildcard support), issuer
//! identity, and validity window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod fault;
pub mod handshake;
pub mod scanner;
pub mod server;

pub use cert::{CertStore, Certificate, CertificateChain};
pub use fault::{apply_tls_fault, ALERT_INTERNAL_ERROR};
pub use handshake::{HandshakeMessage, TlsError};
pub use scanner::{ScanError, Scanner, ScannerConfig};
pub use server::TlsServer;

/// The well-known HTTPS port used throughout the simulation.
pub const TLS_PORT: u16 = 443;
