//! Handshake messages and framing.
//!
//! Each datagram carries one or more frames: `[type: u8][len: u32][body]`.
//! The client's flight is a single `ClientHello`; the server's flight is
//! `ServerHello` followed by `Certificate` (or a single `Alert`).

use crate::cert::CertificateChain;
use bytes::{BufMut, Bytes, BytesMut};

const TYPE_CLIENT_HELLO: u8 = 1;
const TYPE_SERVER_HELLO: u8 = 2;
const TYPE_CERTIFICATE: u8 = 11;
const TYPE_ALERT: u8 = 21;

/// Maximum frame body we accept (defensive bound).
const MAX_FRAME: usize = 1 << 20;

/// Handshake protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// Client's opening flight, carrying the server name indication.
    ClientHello {
        /// Client nonce.
        random: u64,
        /// Requested server name.
        sni: String,
    },
    /// Server acceptance.
    ServerHello {
        /// Server nonce.
        random: u64,
        /// Negotiated cipher suite id (cosmetic in the simulation).
        cipher: u16,
    },
    /// The server's certificate chain.
    Certificate(CertificateChain),
    /// Fatal alert with a code (e.g. unrecognized name).
    Alert(u8),
}

/// Alert code for "unrecognized_name" (mirrors TLS's 112).
pub const ALERT_UNRECOGNIZED_NAME: u8 = 112;

/// Errors from parsing handshake bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// Frame header or body incomplete.
    Truncated,
    /// Unknown frame type.
    UnknownType(u8),
    /// Frame body failed to parse.
    Malformed,
    /// Frame length exceeds the defensive bound.
    Oversized(usize),
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::Truncated => write!(f, "truncated handshake data"),
            TlsError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            TlsError::Malformed => write!(f, "malformed frame body"),
            TlsError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for TlsError {}

impl HandshakeMessage {
    fn frame_type(&self) -> u8 {
        match self {
            HandshakeMessage::ClientHello { .. } => TYPE_CLIENT_HELLO,
            HandshakeMessage::ServerHello { .. } => TYPE_SERVER_HELLO,
            HandshakeMessage::Certificate(_) => TYPE_CERTIFICATE,
            HandshakeMessage::Alert(_) => TYPE_ALERT,
        }
    }
}

/// Encodes a sequence of messages into one datagram payload.
pub fn encode_flight(messages: &[HandshakeMessage]) -> Bytes {
    let mut buf = BytesMut::new();
    for m in messages {
        let mut body = BytesMut::new();
        match m {
            HandshakeMessage::ClientHello { random, sni } => {
                body.put_u64(*random);
                body.put_u16(sni.len() as u16);
                body.put_slice(sni.as_bytes());
            }
            HandshakeMessage::ServerHello { random, cipher } => {
                body.put_u64(*random);
                body.put_u16(*cipher);
            }
            HandshakeMessage::Certificate(chain) => {
                body.put_slice(&chain.encode());
            }
            HandshakeMessage::Alert(code) => {
                body.put_u8(*code);
            }
        }
        buf.put_u8(m.frame_type());
        buf.put_u32(body.len() as u32);
        buf.put_slice(&body);
    }
    buf.freeze()
}

/// Decodes all frames in a datagram payload.
pub fn decode_flight(bytes: &[u8]) -> Result<Vec<HandshakeMessage>, TlsError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let ftype = bytes[pos];
        let len_bytes = bytes.get(pos + 1..pos + 5).ok_or(TlsError::Truncated)?;
        let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(TlsError::Oversized(len));
        }
        let body = bytes
            .get(pos + 5..pos + 5 + len)
            .ok_or(TlsError::Truncated)?;
        pos += 5 + len;
        out.push(decode_body(ftype, body)?);
    }
    Ok(out)
}

fn decode_body(ftype: u8, body: &[u8]) -> Result<HandshakeMessage, TlsError> {
    match ftype {
        TYPE_CLIENT_HELLO => {
            if body.len() < 10 {
                return Err(TlsError::Malformed);
            }
            let random = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
            let sni_len = u16::from_be_bytes([body[8], body[9]]) as usize;
            let sni = body.get(10..10 + sni_len).ok_or(TlsError::Malformed)?;
            let sni = std::str::from_utf8(sni).map_err(|_| TlsError::Malformed)?;
            Ok(HandshakeMessage::ClientHello {
                random,
                sni: sni.to_string(),
            })
        }
        TYPE_SERVER_HELLO => {
            if body.len() != 10 {
                return Err(TlsError::Malformed);
            }
            let random = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
            let cipher = u16::from_be_bytes([body[8], body[9]]);
            Ok(HandshakeMessage::ServerHello { random, cipher })
        }
        TYPE_CERTIFICATE => {
            let mut pos = 0;
            let chain = CertificateChain::decode_from(body, &mut pos).ok_or(TlsError::Malformed)?;
            if pos != body.len() {
                return Err(TlsError::Malformed);
            }
            Ok(HandshakeMessage::Certificate(chain))
        }
        TYPE_ALERT => {
            if body.len() != 1 {
                return Err(TlsError::Malformed);
            }
            Ok(HandshakeMessage::Alert(body[0]))
        }
        other => Err(TlsError::UnknownType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::Certificate;

    fn chain() -> CertificateChain {
        CertificateChain {
            certs: vec![Certificate {
                serial: 5,
                subject: "example.com".into(),
                san: vec!["*.example.com".into()],
                issuer_id: 1,
                issuer_name: "R11".into(),
                not_before: 0,
                not_after: 100,
                is_ca: false,
            }],
        }
    }

    #[test]
    fn client_hello_roundtrip() {
        let m = HandshakeMessage::ClientHello {
            random: 0xDEAD_BEEF,
            sni: "www.example.com".into(),
        };
        let enc = encode_flight(std::slice::from_ref(&m));
        assert_eq!(decode_flight(&enc).unwrap(), vec![m]);
    }

    #[test]
    fn server_flight_roundtrip() {
        let flight = vec![
            HandshakeMessage::ServerHello {
                random: 42,
                cipher: 0x1301,
            },
            HandshakeMessage::Certificate(chain()),
        ];
        let enc = encode_flight(&flight);
        assert_eq!(decode_flight(&enc).unwrap(), flight);
    }

    #[test]
    fn alert_roundtrip() {
        let m = HandshakeMessage::Alert(ALERT_UNRECOGNIZED_NAME);
        let enc = encode_flight(std::slice::from_ref(&m));
        assert_eq!(decode_flight(&enc).unwrap(), vec![m]);
    }

    #[test]
    fn truncated_rejected() {
        let enc = encode_flight(&[HandshakeMessage::Alert(1)]);
        for cut in [1, 3, enc.len() - 1] {
            assert!(decode_flight(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let raw = [99u8, 0, 0, 0, 0];
        assert_eq!(decode_flight(&raw), Err(TlsError::UnknownType(99)));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut raw = vec![TYPE_ALERT];
        raw.extend_from_slice(&(2_000_000u32).to_be_bytes());
        assert!(matches!(decode_flight(&raw), Err(TlsError::Oversized(_))));
    }
}
