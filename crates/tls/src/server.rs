//! Threaded TLS server answering handshakes from a certificate store.

use crate::cert::CertStore;
use crate::handshake::{decode_flight, encode_flight, HandshakeMessage, ALERT_UNRECOGNIZED_NAME};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use webdep_netsim::Endpoint;

/// A TLS responder: one thread per endpoint, answering each `ClientHello`
/// with `ServerHello` + the chain the store selects for its SNI.
pub struct TlsServer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<u64>>,
}

impl TlsServer {
    /// Spawns the server thread.
    pub fn spawn(endpoint: Endpoint, store: Arc<CertStore>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve_loop(endpoint, store, stop2));
        TlsServer {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and returns the number of handshakes served.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for TlsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(endpoint: Endpoint, store: Arc<CertStore>, stop: Arc<AtomicBool>) -> u64 {
    let mut served = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let dgram = match endpoint.recv_timeout(Duration::from_millis(50)) {
            Ok(d) => d,
            Err(webdep_netsim::NetError::Timeout) => continue,
            Err(_) => break,
        };
        let Ok(frames) = decode_flight(&dgram.payload) else {
            continue; // garbage: drop silently
        };
        let Some(HandshakeMessage::ClientHello { random, sni }) = frames.first() else {
            continue;
        };
        let reply = match store.find(sni) {
            Some(chain) => encode_flight(&[
                HandshakeMessage::ServerHello {
                    // Derive the server random from the client's: keeps runs
                    // deterministic without a clock or RNG in the hot path.
                    random: random.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    cipher: 0x1301, // TLS_AES_128_GCM_SHA256, cosmetically
                },
                HandshakeMessage::Certificate(chain.clone()),
            ]),
            None => encode_flight(&[HandshakeMessage::Alert(ALERT_UNRECOGNIZED_NAME)]),
        };
        let _ = endpoint.send(dgram.src, reply);
        served += 1;
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{Certificate, CertificateChain};
    use bytes::Bytes;
    use webdep_netsim::{NetConfig, Network, Region, SockAddr};

    fn store() -> Arc<CertStore> {
        let root = Certificate {
            serial: 1,
            subject: "Root".into(),
            san: vec![],
            issuer_id: 1,
            issuer_name: "Root".into(),
            not_before: 0,
            not_after: u64::MAX,
            is_ca: true,
        };
        let leaf = Certificate {
            serial: 2,
            subject: "site.example".into(),
            san: vec![],
            issuer_id: 1,
            issuer_name: "Root".into(),
            not_before: 0,
            not_after: u64::MAX,
            is_ca: false,
        };
        let mut s = CertStore::new();
        s.install(CertificateChain {
            certs: vec![leaf, root],
        });
        Arc::new(s)
    }

    #[test]
    fn answers_hello_with_chain() {
        let net = Network::new(NetConfig::default());
        let ep = net
            .bind("203.0.113.1".parse().unwrap(), 443, Region::EUROPE)
            .unwrap();
        let server_addr: SockAddr = ep.addr();
        let server = TlsServer::spawn(ep, store());

        let client = net
            .bind("10.0.0.5".parse().unwrap(), 5000, Region::EUROPE)
            .unwrap();
        let hello = encode_flight(&[HandshakeMessage::ClientHello {
            random: 7,
            sni: "site.example".into(),
        }]);
        client.send(server_addr, hello).unwrap();
        let d = client.recv_timeout(Duration::from_secs(2)).unwrap();
        let frames = decode_flight(&d.payload).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0], HandshakeMessage::ServerHello { .. }));
        let HandshakeMessage::Certificate(chain) = &frames[1] else {
            panic!("expected certificate");
        };
        assert_eq!(chain.leaf().unwrap().subject, "site.example");
        assert!(server.shutdown() >= 1);
    }

    #[test]
    fn unknown_sni_gets_alert() {
        let net = Network::new(NetConfig::default());
        let ep = net
            .bind("203.0.113.1".parse().unwrap(), 443, Region::EUROPE)
            .unwrap();
        let server_addr = ep.addr();
        let _server = TlsServer::spawn(ep, store());

        let client = net
            .bind("10.0.0.5".parse().unwrap(), 5000, Region::EUROPE)
            .unwrap();
        let hello = encode_flight(&[HandshakeMessage::ClientHello {
            random: 7,
            sni: "other.example".into(),
        }]);
        client.send(server_addr, hello).unwrap();
        let d = client.recv_timeout(Duration::from_secs(2)).unwrap();
        let frames = decode_flight(&d.payload).unwrap();
        assert_eq!(
            frames,
            vec![HandshakeMessage::Alert(ALERT_UNRECOGNIZED_NAME)]
        );
    }

    #[test]
    fn garbage_ignored() {
        let net = Network::new(NetConfig::default());
        let ep = net
            .bind("203.0.113.1".parse().unwrap(), 443, Region::EUROPE)
            .unwrap();
        let server_addr = ep.addr();
        let _server = TlsServer::spawn(ep, store());
        let client = net
            .bind("10.0.0.5".parse().unwrap(), 5000, Region::EUROPE)
            .unwrap();
        client
            .send(server_addr, Bytes::from_static(b"\xFF\xFF"))
            .unwrap();
        // Still alive for a real handshake.
        let hello = encode_flight(&[HandshakeMessage::ClientHello {
            random: 1,
            sni: "site.example".into(),
        }]);
        client.send(server_addr, hello).unwrap();
        assert!(client.recv_timeout(Duration::from_secs(2)).is_ok());
    }
}
