//! Certificate model: leaf/issuer structure, SAN matching, chain checks,
//! and the SNI-indexed store servers answer from.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// A certificate: just the fields the measurement consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Serial number (unique per issuer in a well-formed world).
    pub serial: u64,
    /// Subject common name, e.g. `example.com` or a CA's name.
    pub subject: String,
    /// Subject alternative names; entries may be wildcards (`*.example.com`).
    pub san: Vec<String>,
    /// Issuer identity: an opaque CA certificate id the enrichment database
    /// maps to an owning organization (the CCADB join).
    pub issuer_id: u32,
    /// Issuer display name, e.g. `R11` or `DigiCert TLS RSA SHA256 2020 CA1`.
    pub issuer_name: String,
    /// Validity start (unix seconds).
    pub not_before: u64,
    /// Validity end (unix seconds).
    pub not_after: u64,
    /// True for CA certificates (intermediates/roots).
    pub is_ca: bool,
}

impl Certificate {
    /// Whether `hostname` matches the subject or a SAN entry, with
    /// single-label wildcard semantics (`*.example.com` matches
    /// `www.example.com` but not `a.b.example.com` or `example.com`).
    pub fn matches_hostname(&self, hostname: &str) -> bool {
        let host = hostname.to_ascii_lowercase();
        std::iter::once(self.subject.as_str())
            .chain(self.san.iter().map(String::as_str))
            .any(|pattern| Self::pattern_matches(&pattern.to_ascii_lowercase(), &host))
    }

    fn pattern_matches(pattern: &str, host: &str) -> bool {
        if let Some(suffix) = pattern.strip_prefix("*.") {
            match host.split_once('.') {
                Some((first_label, rest)) => !first_label.is_empty() && rest == suffix,
                None => false,
            }
        } else {
            pattern == host
        }
    }

    /// Whether the certificate is valid at `now` (unix seconds).
    pub fn valid_at(&self, now: u64) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// Encodes into `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.serial);
        put_str(buf, &self.subject);
        buf.put_u16(self.san.len() as u16);
        for s in &self.san {
            put_str(buf, s);
        }
        buf.put_u32(self.issuer_id);
        put_str(buf, &self.issuer_name);
        buf.put_u64(self.not_before);
        buf.put_u64(self.not_after);
        buf.put_u8(self.is_ca as u8);
    }

    /// Decodes from `bytes` at `*pos`, advancing it.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Option<Certificate> {
        let serial = get_u64(bytes, pos)?;
        let subject = get_str(bytes, pos)?;
        let n_san = get_u16(bytes, pos)? as usize;
        if n_san > 256 {
            return None; // defensively bound attacker-controlled lengths
        }
        let mut san = Vec::with_capacity(n_san);
        for _ in 0..n_san {
            san.push(get_str(bytes, pos)?);
        }
        let issuer_id = get_u32(bytes, pos)?;
        let issuer_name = get_str(bytes, pos)?;
        let not_before = get_u64(bytes, pos)?;
        let not_after = get_u64(bytes, pos)?;
        let is_ca = *bytes.get(*pos)? != 0;
        *pos += 1;
        Some(Certificate {
            serial,
            subject,
            san,
            issuer_id,
            issuer_name,
            not_before,
            not_after,
            is_ca,
        })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_u16(bytes: &[u8], pos: &mut usize) -> Option<u16> {
    let s = bytes.get(*pos..*pos + 2)?;
    *pos += 2;
    Some(u16::from_be_bytes([s[0], s[1]]))
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let s = bytes.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let s = bytes.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_be_bytes(s.try_into().ok()?))
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = get_u16(bytes, pos)? as usize;
    let s = bytes.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(s.to_vec()).ok()
}

/// A certificate chain, leaf first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateChain {
    /// Certificates, leaf at index 0.
    pub certs: Vec<Certificate>,
}

impl CertificateChain {
    /// The leaf certificate; `None` for an empty chain.
    pub fn leaf(&self) -> Option<&Certificate> {
        self.certs.first()
    }

    /// Validates chain shape for `hostname` at `now`: non-empty, leaf
    /// matches the name and is in validity, each cert's issuer id equals
    /// the next cert's own id (`serial` doubles as the CA cert id for CA
    /// certificates), and every non-leaf is a CA certificate.
    pub fn validate(&self, hostname: &str, now: u64) -> Result<(), ChainError> {
        let leaf = self.leaf().ok_or(ChainError::Empty)?;
        if !leaf.matches_hostname(hostname) {
            return Err(ChainError::HostnameMismatch);
        }
        for (i, cert) in self.certs.iter().enumerate() {
            if !cert.valid_at(now) {
                return Err(ChainError::Expired(i));
            }
            if i > 0 && !cert.is_ca {
                return Err(ChainError::NonCaIssuer(i));
            }
            if i + 1 < self.certs.len() {
                let issuer = &self.certs[i + 1];
                if cert.issuer_id as u64 != issuer.serial {
                    return Err(ChainError::BrokenLink(i));
                }
            }
        }
        Ok(())
    }

    /// Encodes the chain (count-prefixed).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u16(self.certs.len() as u16);
        for c in &self.certs {
            c.encode_into(&mut buf);
        }
        buf.freeze()
    }

    /// Decodes a chain from `bytes` at `*pos`.
    pub fn decode_from(bytes: &[u8], pos: &mut usize) -> Option<CertificateChain> {
        let n = get_u16(bytes, pos)? as usize;
        if n > 16 {
            return None; // defensive bound
        }
        let mut certs = Vec::with_capacity(n);
        for _ in 0..n {
            certs.push(Certificate::decode_from(bytes, pos)?);
        }
        Some(CertificateChain { certs })
    }
}

/// Chain validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// The chain carries no certificates.
    Empty,
    /// The leaf does not cover the requested hostname.
    HostnameMismatch,
    /// Certificate at this index is outside its validity window.
    Expired(usize),
    /// Certificate at this index does not link to its issuer.
    BrokenLink(usize),
    /// A non-leaf certificate is not a CA certificate.
    NonCaIssuer(usize),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Empty => write!(f, "empty chain"),
            ChainError::HostnameMismatch => write!(f, "leaf does not match hostname"),
            ChainError::Expired(i) => write!(f, "certificate {i} expired or not yet valid"),
            ChainError::BrokenLink(i) => write!(f, "certificate {i} does not link to issuer"),
            ChainError::NonCaIssuer(i) => write!(f, "certificate {i} is not a CA"),
        }
    }
}

impl std::error::Error for ChainError {}

/// SNI-indexed certificate store a TLS server answers from.
#[derive(Debug, Clone, Default)]
pub struct CertStore {
    by_name: HashMap<String, CertificateChain>,
    wildcard_by_suffix: HashMap<String, CertificateChain>,
    /// Served when no name matches; real CDNs typically present a default
    /// certificate rather than alerting.
    pub default_chain: Option<CertificateChain>,
}

impl CertStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a chain for the leaf's subject and every SAN entry.
    pub fn install(&mut self, chain: CertificateChain) {
        let Some(leaf) = chain.leaf() else { return };
        let names: Vec<String> = std::iter::once(leaf.subject.clone())
            .chain(leaf.san.iter().cloned())
            .collect();
        for name in names {
            let name = name.to_ascii_lowercase();
            if let Some(suffix) = name.strip_prefix("*.") {
                self.wildcard_by_suffix
                    .insert(suffix.to_string(), chain.clone());
            } else {
                self.by_name.insert(name, chain.clone());
            }
        }
    }

    /// Finds the chain for an SNI, preferring exact over wildcard over
    /// default.
    pub fn find(&self, sni: &str) -> Option<&CertificateChain> {
        let sni = sni.to_ascii_lowercase();
        if let Some(c) = self.by_name.get(&sni) {
            return Some(c);
        }
        if let Some((_, rest)) = sni.split_once('.') {
            if let Some(c) = self.wildcard_by_suffix.get(rest) {
                return Some(c);
            }
        }
        self.default_chain.as_ref()
    }

    /// Number of installed exact names.
    pub fn len(&self) -> usize {
        self.by_name.len() + self.wildcard_by_suffix.len()
    }

    /// True when nothing is installed (default chain not counted).
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty() && self.wildcard_by_suffix.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn ca(serial: u64, name: &str) -> Certificate {
        Certificate {
            serial,
            subject: name.to_string(),
            san: vec![],
            issuer_id: serial as u32, // self-signed root
            issuer_name: name.to_string(),
            not_before: 0,
            not_after: u64::MAX,
            is_ca: true,
        }
    }

    pub(crate) fn leaf(subject: &str, san: &[&str], issuer: &Certificate) -> Certificate {
        Certificate {
            serial: 1000,
            subject: subject.to_string(),
            san: san.iter().map(|s| s.to_string()).collect(),
            issuer_id: issuer.serial as u32,
            issuer_name: issuer.subject.clone(),
            not_before: 100,
            not_after: 200,
            is_ca: false,
        }
    }

    #[test]
    fn hostname_matching() {
        let root = ca(1, "Test Root");
        let c = leaf("example.com", &["*.example.com", "example.net"], &root);
        assert!(c.matches_hostname("example.com"));
        assert!(c.matches_hostname("EXAMPLE.COM"));
        assert!(c.matches_hostname("www.example.com"));
        assert!(c.matches_hostname("example.net"));
        assert!(!c.matches_hostname("a.b.example.com"));
        assert!(!c.matches_hostname("badexample.com"));
        assert!(!c.matches_hostname("example.org"));
    }

    #[test]
    fn chain_roundtrip() {
        let root = ca(1, "Test Root");
        let chain = CertificateChain {
            certs: vec![leaf("example.com", &["*.example.com"], &root), root.clone()],
        };
        let enc = chain.encode();
        let mut pos = 0;
        let dec = CertificateChain::decode_from(&enc, &mut pos).unwrap();
        assert_eq!(dec, chain);
        assert_eq!(pos, enc.len());
    }

    #[test]
    fn chain_validation() {
        let root = ca(1, "Test Root");
        let good = CertificateChain {
            certs: vec![leaf("example.com", &[], &root), root.clone()],
        };
        assert_eq!(good.validate("example.com", 150), Ok(()));
        assert_eq!(
            good.validate("other.com", 150),
            Err(ChainError::HostnameMismatch)
        );
        assert_eq!(
            good.validate("example.com", 50),
            Err(ChainError::Expired(0))
        );

        let other_root = ca(2, "Other Root");
        let broken = CertificateChain {
            certs: vec![leaf("example.com", &[], &root), other_root],
        };
        assert_eq!(
            broken.validate("example.com", 150),
            Err(ChainError::BrokenLink(0))
        );
        let empty = CertificateChain { certs: vec![] };
        assert_eq!(empty.validate("x", 0), Err(ChainError::Empty));
    }

    #[test]
    fn non_ca_issuer_rejected() {
        let root = ca(1, "Test Root");
        let mut fake_intermediate = leaf("not-a-ca.com", &[], &root);
        fake_intermediate.serial = 77;
        let mut l = leaf("example.com", &[], &root);
        l.issuer_id = 77;
        let chain = CertificateChain {
            certs: vec![l, fake_intermediate, root],
        };
        assert_eq!(
            chain.validate("example.com", 150),
            Err(ChainError::NonCaIssuer(1))
        );
    }

    #[test]
    fn store_lookup_precedence() {
        let root = ca(1, "Test Root");
        let mut store = CertStore::new();
        let exact = CertificateChain {
            certs: vec![leaf("www.example.com", &[], &root), root.clone()],
        };
        let wild = CertificateChain {
            certs: vec![leaf("*.example.com", &[], &root), root.clone()],
        };
        let deflt = CertificateChain {
            certs: vec![leaf("default.cdn", &[], &root), root.clone()],
        };
        store.install(exact.clone());
        store.install(wild.clone());
        store.default_chain = Some(deflt.clone());

        assert_eq!(store.find("www.example.com"), Some(&exact));
        assert_eq!(store.find("other.example.com"), Some(&wild));
        assert_eq!(store.find("unrelated.org"), Some(&deflt));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn truncated_decode_fails() {
        let root = ca(1, "Test Root");
        let chain = CertificateChain {
            certs: vec![leaf("example.com", &[], &root)],
        };
        let enc = chain.encode();
        for cut in [0, 1, 5, enc.len() - 1] {
            let mut pos = 0;
            assert!(
                CertificateChain::decode_from(&enc[..cut], &mut pos).is_none(),
                "cut {cut}"
            );
        }
    }
}
