//! The scanning client: performs one handshake per (IP, SNI) target and
//! returns the served chain, with retries — the ZGrab2 role.

use crate::cert::CertificateChain;
use crate::handshake::{decode_flight, encode_flight, HandshakeMessage};
use std::net::Ipv4Addr;
use std::time::Duration;
use webdep_netsim::{Endpoint, NetError, SockAddr};

/// Scanner tuning knobs.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    /// Per-handshake receive timeout.
    pub timeout: Duration,
    /// Retries before reporting a timeout.
    pub retries: u32,
    /// Total wall-clock cap for one scan across all retries — the TLS
    /// counterpart of the resolver's `site_deadline`. `None` (default)
    /// keeps the uncapped retry schedule; expiry surfaces as
    /// [`ScanError::Timeout`].
    pub site_deadline: Option<Duration>,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            timeout: Duration::from_millis(250),
            retries: 2,
            site_deadline: None,
        }
    }
}

/// Scan failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// Nothing answered within the retry budget.
    Timeout,
    /// The network rejected the send (no listener at the address).
    Network(NetError),
    /// The server sent a fatal alert (e.g. unrecognized name).
    Alert(u8),
    /// The server's flight was malformed or missing the certificate.
    BadResponse,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Timeout => write!(f, "handshake timed out"),
            ScanError::Network(e) => write!(f, "network error: {e}"),
            ScanError::Alert(c) => write!(f, "fatal alert {c}"),
            ScanError::BadResponse => write!(f, "malformed server flight"),
        }
    }
}

impl std::error::Error for ScanError {}

/// A TLS scanner bound to one client endpoint.
pub struct Scanner {
    endpoint: Endpoint,
    config: ScannerConfig,
    next_random: u64,
    /// Handshakes attempted (including retries).
    pub handshakes_sent: u64,
    /// Server flights discarded because they failed to parse or had an
    /// unexpected shape (truncated or garbled responses).
    pub malformed_flights: u64,
}

impl Scanner {
    /// Wraps a bound endpoint.
    pub fn new(endpoint: Endpoint, config: ScannerConfig) -> Self {
        Scanner {
            endpoint,
            config,
            next_random: 0x5EED,
            handshakes_sent: 0,
            malformed_flights: 0,
        }
    }

    /// Handshakes with `ip:443` asking for `sni`; returns the served chain.
    pub fn scan(&mut self, ip: Ipv4Addr, sni: &str) -> Result<CertificateChain, ScanError> {
        self.scan_port(ip, crate::TLS_PORT, sni)
    }

    /// Handshakes with an explicit port.
    pub fn scan_port(
        &mut self,
        ip: Ipv4Addr,
        port: u16,
        sni: &str,
    ) -> Result<CertificateChain, ScanError> {
        let dst = SockAddr::new(ip, port);
        let scan_deadline = self
            .config
            .site_deadline
            .map(|d| std::time::Instant::now() + d);
        for _ in 0..=self.config.retries {
            if let Some(overall) = scan_deadline {
                if overall
                    .saturating_duration_since(std::time::Instant::now())
                    .is_zero()
                {
                    return Err(ScanError::Timeout);
                }
            }
            self.next_random = self
                .next_random
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1);
            let random = self.next_random;
            let hello = encode_flight(&[HandshakeMessage::ClientHello {
                random,
                sni: sni.to_string(),
            }]);
            self.handshakes_sent += 1;
            match self.endpoint.send(dst, hello) {
                Ok(()) => {}
                Err(e) => return Err(ScanError::Network(e)),
            }
            // Each attempt waits for its per-handshake timeout, clamped to
            // whatever remains of the whole-scan budget.
            let mut deadline = std::time::Instant::now() + self.config.timeout;
            if let Some(overall) = scan_deadline {
                deadline = deadline.min(overall);
            }
            loop {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let dgram = match self.endpoint.recv_timeout(remaining) {
                    Ok(d) => d,
                    Err(NetError::Timeout) => break,
                    Err(e) => return Err(ScanError::Network(e)),
                };
                if dgram.src != dst {
                    continue; // stale reply from an earlier target
                }
                let Ok(frames) = decode_flight(&dgram.payload) else {
                    self.malformed_flights += 1;
                    return Err(ScanError::BadResponse);
                };
                match frames.as_slice() {
                    [HandshakeMessage::Alert(code)] => return Err(ScanError::Alert(*code)),
                    [HandshakeMessage::ServerHello { .. }, HandshakeMessage::Certificate(chain)] => {
                        return Ok(chain.clone())
                    }
                    _ => {
                        self.malformed_flights += 1;
                        return Err(ScanError::BadResponse);
                    }
                }
            }
        }
        Err(ScanError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertStore, Certificate, CertificateChain};
    use crate::server::TlsServer;
    use std::sync::Arc;
    use webdep_netsim::{NetConfig, Network, Region};

    fn world(net: &Network) -> (TlsServer, Ipv4Addr) {
        let server_ip: Ipv4Addr = "203.0.113.1".parse().unwrap();
        let root = Certificate {
            serial: 1,
            subject: "Root".into(),
            san: vec![],
            issuer_id: 1,
            issuer_name: "Root".into(),
            not_before: 0,
            not_after: u64::MAX,
            is_ca: true,
        };
        let leaf = Certificate {
            serial: 2,
            subject: "site.example".into(),
            san: vec![],
            issuer_id: 1,
            issuer_name: "Root".into(),
            not_before: 0,
            not_after: u64::MAX,
            is_ca: false,
        };
        let mut s = CertStore::new();
        s.install(CertificateChain {
            certs: vec![leaf, root],
        });
        let ep = net.bind(server_ip, 443, Region::EUROPE).unwrap();
        (TlsServer::spawn(ep, Arc::new(s)), server_ip)
    }

    fn scanner(net: &Network, config: ScannerConfig) -> Scanner {
        let ep = net
            .bind("10.0.0.5".parse().unwrap(), 5001, Region::EUROPE)
            .unwrap();
        Scanner::new(ep, config)
    }

    #[test]
    fn successful_scan() {
        let net = Network::new(NetConfig::default());
        let (_server, ip) = world(&net);
        let mut sc = scanner(&net, ScannerConfig::default());
        let chain = sc.scan(ip, "site.example").unwrap();
        assert_eq!(chain.leaf().unwrap().subject, "site.example");
        assert_eq!(chain.validate("site.example", 100), Ok(()));
    }

    #[test]
    fn alert_surfaces() {
        let net = Network::new(NetConfig::default());
        let (_server, ip) = world(&net);
        let mut sc = scanner(&net, ScannerConfig::default());
        assert!(matches!(
            sc.scan(ip, "missing.example"),
            Err(ScanError::Alert(_))
        ));
    }

    #[test]
    fn no_listener_is_network_error() {
        let net = Network::new(NetConfig::default());
        let mut sc = scanner(&net, ScannerConfig::default());
        assert!(matches!(
            sc.scan("198.51.100.1".parse().unwrap(), "x"),
            Err(ScanError::Network(_))
        ));
    }

    #[test]
    fn site_deadline_bounds_a_silent_server() {
        // A bound-but-never-serving endpoint swallows every ClientHello;
        // without the cap the retry schedule costs (retries+1) x timeout.
        let net = Network::new(NetConfig::default());
        let silent_ip: Ipv4Addr = "203.0.113.9".parse().unwrap();
        let _silent = net.bind(silent_ip, 443, Region::EUROPE).unwrap();
        let mut sc = scanner(
            &net,
            ScannerConfig {
                timeout: Duration::from_millis(200),
                retries: 20,
                site_deadline: Some(Duration::from_millis(250)),
            },
        );
        let start = std::time::Instant::now();
        assert_eq!(sc.scan(silent_ip, "x").unwrap_err(), ScanError::Timeout);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(1000),
            "silent server took {elapsed:?} despite a 250ms scan deadline"
        );
    }

    #[test]
    fn retries_through_loss() {
        let net = Network::new(NetConfig {
            loss_rate: 0.4,
            seed: 3,
            ..Default::default()
        });
        let (_server, ip) = world(&net);
        let mut sc = scanner(
            &net,
            ScannerConfig {
                timeout: Duration::from_millis(60),
                retries: 10,
                site_deadline: None,
            },
        );
        let chain = sc.scan(ip, "site.example").unwrap();
        assert_eq!(chain.leaf().unwrap().subject, "site.example");
        assert!(sc.handshakes_sent >= 1);
    }
}
