//! `webdep` — command-line interface to the dependence toolkit.
//!
//! ```text
//! webdep score 60 20 10 5 5        # S / HHI / top-N for raw counts
//! webdep country DE [tiny|small]   # one country's full dependence profile
//! webdep tables [tiny|small]       # the four layer tables
//! webdep experiments [tiny|small]  # the paper-vs-measured suite
//! webdep measure [tiny|small] --journal run.jsonl   # checkpointed run
//! webdep measure [tiny|small] --resume run.jsonl    # continue after a crash
//! webdep serve [tiny|small] --addr 127.0.0.1:8439   # resident query service
//! webdep serve small --store chunks/               # serve a chunked store
//! webdep evolve 4 tiny --churn 0.1                 # continuous epochs, delta re-measure
//! webdep evolve 4 tiny --serve-addr 127.0.0.1:8439 # …published live per epoch
//! webdep fsck chunks/ --repair --journal run.jsonl # verify + heal a store
//! ```
//!
//! The heavier subcommands generate, deploy, and measure a synthetic world
//! (seconds at `tiny`, ~1 minute at `small`). `measure` runs just the
//! measurement pipeline and prints its supervision/throughput accounting;
//! with `--journal` every completed site is checkpointed to an append-only
//! JSONL file, and `--resume` continues an interrupted journaled run,
//! re-measuring only the missing sites (the reassembled dataset is
//! byte-identical to an uninterrupted run).

use std::path::Path;
use webdep::analysis::centralization::layer_table;
use webdep::analysis::insularity::{dependence_shares, insularity_table};
use webdep::analysis::report;
use webdep::analysis::{AnalysisCtx, ExperimentSuite};
use webdep::core::centralization::{centralization_score, hhi, ConcentrationBand};
use webdep::core::dist::CountDist;
use webdep::core::topn::top_n_share;
use webdep::pipeline::{
    measure, measure_journaled, measure_with_stats, resume_from_journal, MeasuredDataset,
    PipelineConfig,
};
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  webdep score <count> [count ...]\n  webdep country <CC> [tiny|small]\n  webdep tables [tiny|small]\n  webdep experiments [tiny|small]\n  webdep measure [tiny|small] [--journal <path> | --resume <path>]\n  webdep serve [tiny|small] [--addr <ip:port>] [--threads <n>] [--store <dir> | --world-seed <seed>]\n  webdep evolve <n-epochs> [tiny|small] [--churn <frac>] [--store <dir>] [--serve-addr <ip:port>] [--workers <n>]\n  webdep fsck <store-dir> [--repair] [--journal <path>]"
    );
    std::process::exit(2);
}

fn scale_config(arg: Option<&str>) -> WorldConfig {
    match arg.unwrap_or("tiny") {
        "tiny" => WorldConfig::tiny(),
        "small" => WorldConfig::small(),
        "paper" => WorldConfig::paper(),
        other => {
            eprintln!("unknown scale {other:?} (tiny | small | paper)");
            std::process::exit(2);
        }
    }
}

fn measured(config: WorldConfig) -> (World, MeasuredDataset) {
    let world = World::generate(config);
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    (world, ds)
}

fn cmd_score(args: &[String]) {
    let counts: Vec<u64> = args
        .iter()
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("not a count: {a:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let Ok(dist) = CountDist::from_counts(counts) else {
        eprintln!("need at least one positive count");
        std::process::exit(2);
    };
    let s = centralization_score(&dist);
    println!("C                  = {}", dist.total());
    println!("providers          = {}", dist.num_providers());
    println!("S (centralization) = {s:.6}");
    println!("HHI                = {:.6}", hhi(&dist));
    println!(
        "DoJ band           = {}",
        ConcentrationBand::classify(hhi(&dist)).label()
    );
    for n in [1usize, 5, 10] {
        println!("top-{n:<2} share       = {:.4}", top_n_share(&dist, n));
    }
    println!(
        "90% coverage       = {} providers",
        dist.providers_to_cover(0.90)
    );
}

fn cmd_country(code: &str, scale: Option<&str>) {
    let Some(ci) = World::country_index(&code.to_ascii_uppercase()) else {
        eprintln!("unknown country code {code:?} (need one of the paper's 150)");
        std::process::exit(2);
    };
    let (world, ds) = measured(scale_config(scale));
    let ctx = AnalysisCtx::new(&world, &ds);
    let record = &webdep::webgen::COUNTRIES[ci];
    println!(
        "{} ({}) — {} / {}",
        record.name,
        record.code,
        record.subregion,
        record.continent.code()
    );
    for layer in Layer::ALL {
        let Some(dist) = ctx.country_dist(ci, layer) else {
            continue;
        };
        let s = centralization_score(&dist);
        let ins = webdep::analysis::insularity::country_insularity(&ctx, ci, layer).unwrap_or(0.0);
        println!(
            "\n[{:<7}] S = {s:.4} (paper {:.4})  insularity = {:.1}%  providers = {}",
            layer.name(),
            record.paper_score(layer),
            100.0 * ins,
            dist.num_providers()
        );
        for &(owner, count) in ctx.country_counts(ci, layer).iter().take(5) {
            println!(
                "    {:<28} {:>5.1}%  ({})",
                ctx.owner_name(layer, owner),
                100.0 * count as f64 / dist.total() as f64,
                ctx.owner_country(layer, owner).unwrap_or("--"),
            );
        }
    }
    println!("\nDependence by provider country (hosting):");
    for (cc, share) in dependence_shares(&ctx, ci, Layer::Hosting)
        .into_iter()
        .take(6)
    {
        println!("    {cc}: {:.1}%", 100.0 * share);
    }
}

fn cmd_tables(scale: Option<&str>) {
    let (world, ds) = measured(scale_config(scale));
    let ctx = AnalysisCtx::new(&world, &ds);
    for layer in Layer::ALL {
        let t = layer_table(&ctx, layer);
        println!("{}", report::layer_table_markdown(&t, 8, 4));
    }
    let ins = insularity_table(&ctx, Layer::Hosting);
    println!("{}", report::insularity_markdown(&ins, 10));
}

fn cmd_measure(args: &[String]) {
    let mut scale: Option<&str> = None;
    let mut journal: Option<&str> = None;
    let mut resume: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" | "--resume" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("{} needs a path", args[i]);
                    std::process::exit(2);
                };
                if args[i] == "--journal" {
                    journal = Some(path.as_str());
                } else {
                    resume = Some(path.as_str());
                }
                i += 2;
            }
            s if !s.starts_with("--") && scale.is_none() => {
                scale = Some(s);
                i += 1;
            }
            other => {
                eprintln!("unknown measure argument {other:?}");
                usage();
            }
        }
    }
    if journal.is_some() && resume.is_some() {
        eprintln!("--journal starts a fresh checkpointed run, --resume continues one; pick one");
        std::process::exit(2);
    }

    let world = World::generate(scale_config(scale));
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let config = PipelineConfig::default();
    eprintln!("measuring {} sites ({})...", world.sites.len(), world.label);
    let run = match (journal, resume) {
        (Some(p), None) => measure_journaled(&world, &dep, &config, Path::new(p)),
        (None, Some(p)) => resume_from_journal(&world, &dep, &config, Path::new(p)),
        _ => Ok(measure_with_stats(&world, &dep, &config)),
    };
    let (ds, stats) = run.unwrap_or_else(|e| {
        eprintln!("journal error: {e}");
        std::process::exit(1);
    });

    let sup = &stats.supervision;
    println!("sites            = {}", ds.observations.len());
    println!("success rate     = {:.4}", ds.success_rate());
    println!("wall             = {} ms", stats.wall.as_millis());
    println!("sites/sec        = {:.0}", stats.sites_per_sec);
    println!("wire queries     = {}", stats.wire_queries);
    println!("sites resumed    = {}", sup.sites_resumed);
    println!("panics isolated  = {}", sup.panics_isolated);
    println!("workers lost     = {}", sup.workers_lost);
    println!("batches requeued = {}", sup.batches_requeued);
    println!("sites poisoned   = {}", sup.sites_poisoned);
    if let Some(p) = journal.or(resume) {
        println!("journal          = {p}");
    }
}

fn cmd_serve(args: &[String]) {
    use std::sync::Arc;
    use webdep::serve::server::sig;
    use webdep::serve::snapshot::CubeSnapshot;
    use webdep::serve::{start, ServeConfig};

    let mut scale: Option<&str> = None;
    let mut addr = "127.0.0.1:8439".to_string();
    let mut threads: usize = 8;
    let mut store: Option<&str> = None;
    let mut world_seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "--threads" | "--store" | "--world-seed" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{} needs a value", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--addr" => addr = value.clone(),
                    "--store" => store = Some(value.as_str()),
                    "--threads" => {
                        threads = value.parse().unwrap_or_else(|_| {
                            eprintln!("--threads needs a positive integer, got {value:?}");
                            std::process::exit(2);
                        });
                    }
                    _ => {
                        world_seed = Some(value.parse().unwrap_or_else(|_| {
                            eprintln!("--world-seed needs an integer, got {value:?}");
                            std::process::exit(2);
                        }));
                    }
                }
                i += 2;
            }
            s if !s.starts_with("--") && scale.is_none() => {
                scale = Some(s);
                i += 1;
            }
            other => {
                eprintln!("unknown serve argument {other:?}");
                usage();
            }
        }
    }
    if store.is_some() && world_seed.is_some() {
        eprintln!("--store serves an existing chunked dataset, --world-seed measures a fresh synthetic world; pick one");
        std::process::exit(2);
    }

    let mut config = scale_config(scale);
    if let Some(seed) = world_seed {
        config.seed = seed;
    }
    let world = Arc::new(World::generate(config));
    let snapshot = match store {
        Some(dir) => {
            eprintln!(
                "loading chunked store {dir:?} against world {} ({} sites)...",
                world.label,
                world.sites.len()
            );
            CubeSnapshot::from_store(1, Arc::clone(&world), Path::new(dir)).unwrap_or_else(|e| {
                eprintln!("store error: {e}");
                std::process::exit(1);
            })
        }
        None => {
            eprintln!("measuring {} sites ({})...", world.sites.len(), world.label);
            let dep = DeployedWorld::deploy(&world, DeployConfig::default());
            let ds = measure(&world, &dep, &PipelineConfig::default());
            CubeSnapshot::from_dataset(1, Arc::clone(&world), ds)
        }
    };

    let handle = start(
        ServeConfig {
            addr,
            workers: threads.max(1),
            ..ServeConfig::default()
        },
        Arc::new(snapshot),
    )
    .unwrap_or_else(|e| {
        eprintln!("bind error: {e}");
        std::process::exit(1);
    });
    let bound = handle.addr();
    println!(
        "webdep serve: listening on http://{bound} (epoch {})",
        handle.epoch()
    );
    println!("  try: curl http://{bound}/v1/badge/DE");
    println!("       curl 'http://{bound}/v1/score/US?layer=dns&replicates=500'");
    println!("       curl http://{bound}/v1/coverage");
    println!("       curl http://{bound}/metrics   # Prometheus text exposition");

    if !sig::install_handlers() {
        eprintln!("warning: could not install SIGINT/SIGTERM handlers; stop with SIGKILL");
    }
    while !sig::interrupted() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    let stats = handle.stats();
    let cache = handle.cache_stats();
    eprintln!(
        "\nsignal: draining ({} connections served, {} ok / {} errors, cache hit rate {:.3})...",
        stats.connections,
        stats.ok,
        stats.errors,
        cache.hit_rate().unwrap_or(0.0)
    );
    handle.shutdown();
    std::process::exit(0);
}

/// The closed continuous-measurement loop: generate + measure a base
/// epoch into a chunked store, then per epoch evolve the world, re-measure
/// only the dirty sites (`measure_delta`), build the next snapshot from
/// the previous one plus the delta (`CubeSnapshot::from_delta`), and —
/// when `--serve-addr` is given — publish it live through the running
/// server's snapshot cell.
fn cmd_evolve(args: &[String]) {
    use std::sync::Arc;
    use std::time::Instant;
    use webdep::pipeline::{measure_delta, measure_streamed};
    use webdep::serve::server::sig;
    use webdep::serve::snapshot::CubeSnapshot;
    use webdep::serve::{start, ServeConfig};
    use webdep::webgen::{provider_site_counts, EvolutionPlan};

    let mut n_epochs: Option<usize> = None;
    let mut scale: Option<&str> = None;
    let mut churn = 0.10f64;
    let mut store_root: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--churn" | "--store" | "--serve-addr" | "--workers" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{} needs a value", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--churn" => {
                        churn = value.parse().unwrap_or_else(|_| {
                            eprintln!("--churn needs a fraction in (0, 1), got {value:?}");
                            std::process::exit(2);
                        });
                        if !(0.0..=1.0).contains(&churn) {
                            eprintln!("--churn {churn} outside [0, 1]");
                            std::process::exit(2);
                        }
                    }
                    "--store" => store_root = Some(value.clone()),
                    "--serve-addr" => serve_addr = Some(value.clone()),
                    _ => {
                        workers = Some(value.parse().unwrap_or_else(|_| {
                            eprintln!("--workers needs a positive integer, got {value:?}");
                            std::process::exit(2);
                        }));
                    }
                }
                i += 2;
            }
            s if !s.starts_with("--") => {
                if n_epochs.is_none() && s.chars().all(|c| c.is_ascii_digit()) {
                    n_epochs = s.parse().ok();
                } else if scale.is_none() {
                    scale = Some(s);
                } else {
                    eprintln!("unknown evolve argument {s:?}");
                    usage();
                }
                i += 1;
            }
            other => {
                eprintln!("unknown evolve argument {other:?}");
                usage();
            }
        }
    }
    let n_epochs = n_epochs.unwrap_or_else(|| {
        eprintln!("evolve needs the number of epochs, e.g. `webdep evolve 4 tiny`");
        std::process::exit(2);
    });
    let config = scale_config(scale);
    let store_root = store_root.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("webdep-evolve-{}", std::process::id()))
    });

    let mut pipeline = PipelineConfig::default();
    if let Some(w) = workers {
        pipeline.workers = w.max(1);
    }

    // The base epoch: one generated world, measured in full, streamed to
    // a chunked store. The provider pool census is pinned here so every
    // later epoch's unchanged sites keep their serving IPs — the delta
    // byte-identity contract.
    let seed = config.seed;
    let base = World::generate(config);
    let census = Arc::new(provider_site_counts(&base));
    let pinned = DeployConfig {
        pool_sites: Some(Arc::clone(&census)),
        ..DeployConfig::default()
    };
    let epoch_dir = |e: usize| store_root.join(format!("epoch-{e:04}"));
    eprintln!(
        "epoch 0: measuring {} sites ({}) into {:?}...",
        base.sites.len(),
        base.label,
        epoch_dir(0)
    );
    let t0 = Instant::now();
    let dep = DeployedWorld::deploy(&base, pinned.clone());
    let stats = measure_streamed(&base, &dep, &pipeline, &epoch_dir(0), None).unwrap_or_else(|e| {
        eprintln!("store error: {e}");
        std::process::exit(1);
    });
    println!(
        "epoch 0  sites={}  measured={}  wall={}ms  (full)",
        base.sites.len(),
        base.sites.len(),
        t0.elapsed().as_millis()
    );
    drop(stats);

    let mut world = Arc::new(base);
    let mut snapshot = Arc::new(
        CubeSnapshot::from_store(1, Arc::clone(&world), &epoch_dir(0)).unwrap_or_else(|e| {
            eprintln!("snapshot error: {e}");
            std::process::exit(1);
        }),
    );
    let handle = serve_addr.map(|addr| {
        let h = start(
            ServeConfig {
                addr,
                ..ServeConfig::default()
            },
            Arc::clone(&snapshot),
        )
        .unwrap_or_else(|e| {
            eprintln!("bind error: {e}");
            std::process::exit(1);
        });
        println!(
            "serving on http://{} (epoch {}); trajectory at /v1/trajectory",
            h.addr(),
            h.epoch()
        );
        h
    });

    let plan = EvolutionPlan::continuous(n_epochs, churn, seed);
    for e in 0..n_epochs {
        let t = Instant::now();
        let (next, delta) = plan.evolve_epoch(&world, e);
        if let Err(err) = delta.certify_unchanged(&world, &next) {
            eprintln!("epoch {}: unchanged-site certificate failed: {err}", e + 1);
            std::process::exit(1);
        }
        for w in &delta.warnings {
            eprintln!("epoch {}: warning: {w}", e + 1);
        }
        let next = Arc::new(next);
        let dep = DeployedWorld::deploy(&next, pinned.clone());
        let stats = measure_delta(
            &next,
            &dep,
            &pipeline,
            &delta,
            &epoch_dir(e),
            &epoch_dir(e + 1),
            None,
        )
        .unwrap_or_else(|err| {
            eprintln!("epoch {}: delta measurement failed: {err}", e + 1);
            std::process::exit(1);
        });
        let mut next_snapshot = Arc::new(
            CubeSnapshot::from_delta(
                snapshot.epoch + 1,
                Arc::clone(&next),
                &snapshot,
                &delta,
                &epoch_dir(e + 1),
            )
            .unwrap_or_else(|err| {
                eprintln!("epoch {}: snapshot delta failed: {err}", e + 1);
                std::process::exit(1);
            }),
        );
        // Validated publish with a full-rebuild retry: a delta-built
        // snapshot failing its pre-publish invariants never reaches
        // readers — the prior epoch keeps serving while the epoch is
        // re-measured in full and rebuilt from the store. Only a rebuild
        // that *also* fails validation aborts the loop.
        let admit = |cand: &Arc<CubeSnapshot>| match &handle {
            Some(h) => h
                .publish_validated(Arc::clone(cand), Some(&delta))
                .map(|_| ()),
            None => cand.validate(Some(&snapshot), Some(&delta)),
        };
        if let Err(why) = admit(&next_snapshot) {
            eprintln!(
                "epoch {}: snapshot rejected ({why}); re-measuring the epoch in full...",
                e + 1
            );
            measure_streamed(&next, &dep, &pipeline, &epoch_dir(e + 1), None).unwrap_or_else(
                |err| {
                    eprintln!("epoch {}: full re-measure failed: {err}", e + 1);
                    std::process::exit(1);
                },
            );
            let rebuilt = Arc::new(
                CubeSnapshot::from_store_extending(
                    snapshot.epoch + 1,
                    Arc::clone(&next),
                    &epoch_dir(e + 1),
                    &snapshot,
                )
                .unwrap_or_else(|err| {
                    eprintln!("epoch {}: snapshot rebuild failed: {err}", e + 1);
                    std::process::exit(1);
                }),
            );
            if let Err(why) = admit(&rebuilt) {
                eprintln!(
                    "epoch {}: rebuilt snapshot rejected ({why}); giving up",
                    e + 1
                );
                std::process::exit(1);
            }
            next_snapshot = rebuilt;
        }
        let point = next_snapshot
            .trajectory
            .points
            .last()
            .expect("trajectory point");
        println!(
            "epoch {}  sites={}  remeasured={}  chunks adopted={}/{}  rows recommitted={}  wall={}ms  S={:.4}  drift={:+.4}{}{}",
            e + 1,
            stats.sites_total,
            stats.sites_remeasured,
            stats.chunks_adopted,
            stats.chunks_total,
            stats.rows_recommitted,
            t.elapsed().as_millis(),
            point.mean_score,
            point.drift,
            if point.changepoint { "  CHANGEPOINT" } else { "" },
            if handle.is_some() { "  (published)" } else { "" },
        );
        world = next;
        snapshot = next_snapshot;
    }

    match handle {
        Some(h) => {
            println!(
                "evolution done ({} epochs); serving until SIGINT/SIGTERM on http://{}",
                n_epochs,
                h.addr()
            );
            if !sig::install_handlers() {
                eprintln!("warning: could not install SIGINT/SIGTERM handlers; stop with SIGKILL");
            }
            while !sig::interrupted() {
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            h.shutdown();
        }
        None => {
            println!(
                "evolution done: {} epochs in {:?} (stores retained for inspection)",
                n_epochs, store_root
            );
        }
    }
}

/// `webdep fsck <store-dir> [--repair] [--journal <path>]`: verify every
/// chunk of a measurement store (checksums, headers, full column decode)
/// and print a machine-readable report. With `--repair`, corrupt chunk
/// files are quarantined and — given the run's journal — re-encoded
/// byte-identically from its records. Exits non-zero unless the store is
/// intact after the pass.
fn cmd_fsck(args: &[String]) {
    use webdep::pipeline::ChunkStore;

    let mut dir: Option<&String> = None;
    let mut journal: Option<&String> = None;
    let mut repair = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repair" => {
                repair = true;
                i += 1;
            }
            "--journal" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--journal needs a value");
                    std::process::exit(2);
                };
                journal = Some(value);
                i += 2;
            }
            s if !s.starts_with("--") && dir.is_none() => {
                dir = Some(&args[i]);
                i += 1;
            }
            other => {
                eprintln!("unknown fsck argument {other:?}");
                usage();
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("fsck needs a store directory, e.g. `webdep fsck chunks/ --repair`");
        std::process::exit(2);
    };
    let report =
        ChunkStore::fsck(Path::new(dir), journal.map(Path::new), repair).unwrap_or_else(|e| {
            eprintln!("fsck error: {e}");
            std::process::exit(1);
        });
    println!("{}", report.to_value());
    if !report.intact() {
        std::process::exit(1);
    }
}

fn cmd_experiments(scale: Option<&str>) {
    let (world, ds) = measured(scale_config(scale));
    let ctx = AnalysisCtx::new(&world, &ds);
    let suite = ExperimentSuite::run(&ctx, None, None);
    println!("{}", suite.to_markdown());
    println!("{}/{} passed", suite.passed(), suite.total());
    if suite.passed() != suite.total() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("score") if args.len() > 1 => cmd_score(&args[1..]),
        Some("country") if args.len() >= 2 => {
            cmd_country(&args[1], args.get(2).map(String::as_str))
        }
        Some("tables") => cmd_tables(args.get(1).map(String::as_str)),
        Some("experiments") => cmd_experiments(args.get(1).map(String::as_str)),
        Some("measure") => cmd_measure(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("evolve") => cmd_evolve(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        _ => usage(),
    }
}
