//! # webdep
//!
//! Facade crate for the `webdep` workspace: a toolkit for quantifying
//! centralization and regionalization of web infrastructure, reproducing
//! *Formalizing Dependence of Web Infrastructure* (SIGCOMM 2025).
//!
//! Re-exports every workspace crate under a stable path. See the README for
//! the architecture overview and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use webdep_analysis as analysis;
pub use webdep_core as core;
pub use webdep_dns as dns;
pub use webdep_geodb as geodb;
pub use webdep_netsim as netsim;
pub use webdep_pipeline as pipeline;
pub use webdep_serve as serve;
pub use webdep_stats as stats;
pub use webdep_tls as tls;
pub use webdep_webgen as webgen;

/// Convenience prelude pulling in the most used types across the workspace.
pub mod prelude {
    pub use webdep_core::prelude::*;
}
