#!/usr/bin/env bash
# The canonical repo check (see DESIGN.md): tier-1 gate + lint + format.
#
#   ./ci.sh            build (release) + full test suite + clippy -D warnings + fmt --check
#   ./ci.sh quick      skip the release build (debug tests + clippy + fmt only)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

# Tier-1 (root package) includes the chaos smoke (tests/chaos_smoke.rs:
# one injected worker death plus a kill-and-resume cycle); --workspace
# adds every crate's suite, including the full supervision matrix in
# crates/pipeline/tests/supervision.rs.
echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

# Streaming-dataset smoke: every scale phase (equivalence certification,
# resident, streaming) at toy sizes — seconds, not the full 5M-site run.
echo "==> bench-snapshot scale --smoke"
cargo run --release -q -p webdep-bench --bin bench-snapshot -- scale --smoke

# Query-service smoke: start the server on an ephemeral port, sweep the
# full query catalog, spot-check served JSON against a directly-built
# AnalysisCtx, and publish two epochs under load. Fails on any non-2xx,
# any served/one-shot mismatch, or any mixed-epoch response.
echo "==> bench-snapshot serve --smoke"
cargo run --release -q -p webdep-bench --bin bench-snapshot -- serve --smoke

# Incremental-epoch smoke: evolve a small world two epochs, measure each
# both ways, and certify the delta store byte-identical to from-scratch,
# the delta-applied cube identical to a full refold, and the delta-built
# snapshot's taxonomy identical to a rebuild.
echo "==> bench-snapshot evolve --smoke"
cargo run --release -q -p webdep-bench --bin bench-snapshot -- evolve --smoke

# Self-healing smoke: the seeded chaos harness at toy sizes — slow-loris
# flood with fast queries flowing, a burst storm with no wedged workers,
# mid-serve chunk corruption healed byte-identically by fsck --repair,
# and poisoned publishes rejected with the prior epoch still serving.
echo "==> bench-snapshot overload --smoke"
cargo run --release -q -p webdep-bench --bin bench-snapshot -- overload --smoke

# Perf-regression gate: deterministic smoke workloads (seeded 1-worker
# pipeline measurement, sequential serve sweep, always-on overload
# machinery with exact shed/abort/reject counts) compared against
# BENCH_baselines.json — exact integer counts, so it cannot flake on a
# loaded box. Exits nonzero (and appends to BENCH_alerts.log) on breach;
# after an accepted behavior change, re-record with
# `bench-snapshot gate --smoke --update`.
echo "==> bench-snapshot gate --smoke"
cargo run --release -q -p webdep-bench --bin bench-snapshot -- gate --smoke

echo "ci: all gates green"
