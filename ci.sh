#!/usr/bin/env bash
# The canonical repo check (see DESIGN.md): tier-1 gate + lint gate.
#
#   ./ci.sh            build (release) + full test suite + clippy -D warnings
#   ./ci.sh quick      skip the release build (debug tests + clippy only)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" != "quick" ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates green"
