//! Regionalization case studies (§5.3): insularity rankings, cross-border
//! dependence, and the Afghan Persian-language link.
//!
//! Run with: `cargo run --release --example case_studies`

use webdep::analysis::cases::{afghan_persian_case, dependence_on, foreign_dependence_cases};
use webdep::analysis::insularity::{dependence_shares, insularity_table};
use webdep::analysis::AnalysisCtx;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small());
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    let ctx = AnalysisCtx::new(&world, &ds);

    println!("== Hosting insularity (top 10) ==");
    let ins = insularity_table(&ctx, Layer::Hosting);
    for r in ins.rows.iter().take(10) {
        println!(
            "  #{:<3} {}  {:>5.1}%   biggest dependence: {} ({:.1}%)",
            r.rank,
            r.code,
            100.0 * r.insularity,
            r.top_dependence.0,
            100.0 * r.top_dependence.1
        );
    }

    println!("\n== Largest non-US foreign dependences (hosting, > 8%) ==");
    for case in foreign_dependence_cases(&ctx, Layer::Hosting, 0.08) {
        println!(
            "  {} -> {}: {:.1}%",
            case.country,
            case.on,
            100.0 * case.share
        );
    }

    println!("\n== The named §5.3.3 patterns ==");
    for (country, on) in [
        ("TM", "RU"),
        ("TJ", "RU"),
        ("KG", "RU"),
        ("KZ", "RU"),
        ("BY", "RU"),
        ("RE", "FR"),
        ("GP", "FR"),
        ("MQ", "FR"),
        ("BF", "FR"),
        ("SK", "CZ"),
        ("AT", "DE"),
        ("AF", "IR"),
    ] {
        println!(
            "  {country} on {on}: {:>5.1}%",
            100.0 * dependence_on(&ctx, country, on, Layer::Hosting)
        );
    }

    println!("\n== Afghanistan / Iran (Persian content) ==");
    if let Some(case) = afghan_persian_case(&ctx) {
        println!(
            "  {:.1}% of the Afghan top list is Persian (paper: 31.4%)",
            100.0 * case.persian_fraction
        );
        println!(
            "  {:.1}% of those sites are hosted in Iran (paper: 60.8%)",
            100.0 * case.persian_iran_hosted
        );
        println!(
            "  {:.1}% of all Afghan top sites use Iranian providers (paper: >20%)",
            100.0 * case.iran_share
        );
    }

    println!("\n== Where does Slovakia's web live? ==");
    let sk = World::country_index("SK").unwrap();
    for (cc, share) in dependence_shares(&ctx, sk, Layer::Hosting)
        .into_iter()
        .take(6)
    {
        println!("  {cc}: {:.1}%", 100.0 * share);
    }
}
