//! The full reproduction: generate the calibrated world, deploy it, run
//! the measurement pipeline, execute every experiment, and write the
//! outputs (markdown + JSON data release) to `./out/`.
//!
//! Run with: `cargo run --release --example full_reproduction [-- scale]`
//! where `scale` is `tiny`, `small` (default), or `paper` (150 x 10k
//! sites; takes several minutes and a few GB of RAM).

use std::path::Path;
use std::time::Instant;
use webdep::analysis::centralization::layer_table;
use webdep::analysis::insularity::insularity_table;
use webdep::analysis::regional::subregion_summary;
use webdep::analysis::report;
use webdep::analysis::{AnalysisCtx, ExperimentSuite};
use webdep::pipeline::{measure, PipelineConfig};
use webdep::webgen::evolve::evolve;
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "small".into());
    let config = match scale.as_str() {
        "tiny" => WorldConfig::tiny(),
        "small" => WorldConfig::small(),
        "paper" => WorldConfig::paper(),
        other => {
            eprintln!("unknown scale {other:?}; use tiny | small | paper");
            std::process::exit(2);
        }
    };
    println!(
        "scale: {scale} ({} sites x 150 countries, tail_scale {})",
        config.sites_per_country, config.tail_scale
    );

    let t0 = Instant::now();
    let world = World::generate(config);
    println!(
        "world generated: {} unique sites, {} providers, {} CAs, {} TLDs ({:?})",
        world.sites.len(),
        world.universe.providers.len(),
        world.universe.cas.len(),
        world.universe.tlds.len(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    println!(
        "deployed: {} rack threads ({:?})",
        dep.num_racks(),
        t1.elapsed()
    );

    let t2 = Instant::now();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let ds = measure(
        &world,
        &dep,
        &PipelineConfig {
            workers,
            ..Default::default()
        },
    );
    println!(
        "measured: {} observations, success rate {:.2}% ({:?})",
        ds.observations.len(),
        100.0 * ds.success_rate(),
        t2.elapsed()
    );

    // The 2025 snapshot for §5.4.
    let t3 = Instant::now();
    let world25 = evolve(&world);
    let dep25 = DeployedWorld::deploy(&world25, DeployConfig::default());
    let ds25 = measure(
        &world25,
        &dep25,
        &PipelineConfig {
            workers,
            ..Default::default()
        },
    );
    println!("2025 snapshot measured ({:?})", t3.elapsed());

    let ctx = AnalysisCtx::new(&world, &ds);
    let ctx25 = AnalysisCtx::new(&world25, &ds25);

    // Experiment suite (incl. §3.4 vantage validation on the live net).
    let t4 = Instant::now();
    let suite = ExperimentSuite::run(&ctx, Some(&ctx25), Some(&dep));
    println!(
        "experiments: {}/{} passed ({:?})\n",
        suite.passed(),
        suite.total(),
        t4.elapsed()
    );
    println!("{}", suite.to_markdown());

    // Headline tables.
    for layer in Layer::ALL {
        let t = layer_table(&ctx, layer);
        println!("{}", report::layer_table_markdown(&t, 5, 3));
    }
    let ins = insularity_table(&ctx, Layer::Hosting);
    println!("{}", report::insularity_markdown(&ins, 8));
    println!("{}", report::subregion_markdown(&subregion_summary(&ctx)));

    // Data release.
    let out = Path::new("out");
    std::fs::create_dir_all(out).expect("create out/");
    for layer in Layer::ALL {
        let t = layer_table(&ctx, layer);
        report::write_json(&t, &out.join(format!("scores_{}.json", layer.name())))
            .expect("write scores");
        let i = insularity_table(&ctx, layer);
        report::write_json(&i, &out.join(format!("insularity_{}.json", layer.name())))
            .expect("write insularity");
    }
    report::write_json(&suite, &out.join("experiments.json")).expect("write experiments");
    std::fs::write(
        out.join("EXPERIMENTS-generated.md"),
        format!(
            "# Generated experiment results ({scale} scale)\n\n{}\n",
            suite.to_markdown()
        ),
    )
    .expect("write markdown");
    println!("wrote data release to ./out/");
}
