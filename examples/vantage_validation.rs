//! The §3.4 vantage-point validation: resolving from each country's own
//! continent vs the default (Stanford-like) vantage.
//!
//! Run with: `cargo run --release --example vantage_validation`

use webdep::analysis::vantage::validate_vantage;
use webdep::analysis::AnalysisCtx;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::webgen::{Continent, DeployConfig, DeployedWorld, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small());
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    let ctx = AnalysisCtx::new(&world, &ds);

    // Show the raw mechanism first: one Cloudflare site, two vantages.
    let cf = world.universe.provider_by_name("Cloudflare").unwrap();
    if let Some(site) = world.sites.iter().find(|s| s.hosting == cf) {
        println!("GeoDNS mechanism for {} (Cloudflare-hosted):", site.domain);
        for cont in [Continent::NorthAmerica, Continent::Europe, Continent::Asia] {
            let ep = dep.vantage(cont);
            let mut resolver = webdep::dns::IterativeResolver::new(
                ep,
                dep.roots.clone(),
                webdep::dns::ResolverConfig::default(),
            );
            let name = webdep::dns::DomainName::parse(&site.domain).unwrap();
            if let Ok(addrs) = resolver.resolve_a(&name) {
                let geo = dep.geodb.country_of(addrs[0]).unwrap_or("??");
                println!("  from {cont:?}: {} (geolocates to {geo})", addrs[0]);
            }
        }
    }

    println!("\nRe-resolving a sample of every 3rd country from its own continent...");
    let v = validate_vantage(&ctx, &dep, 80, 3);
    println!(
        "countries: {}, sample {} sites each",
        v.scores.len(),
        v.sample
    );
    println!(
        "rho(default vantage S, local vantage S) = {:.3}  (paper: 0.96)",
        v.correlation.map(|c| c.rho).unwrap_or(f64::NAN)
    );
    println!("\nper-country scores (first 10):");
    for (code, s_default, s_local) in v.scores.iter().take(10) {
        println!("  {code}: default {s_default:.4} vs local {s_local:.4}");
    }
}
