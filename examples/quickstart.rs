//! Quickstart: the metric toolkit on small, hand-made data.
//!
//! Run with: `cargo run --example quickstart`

use webdep::core::centralization::{centralization_score, hhi, ConcentrationBand};
use webdep::core::dist::CountDist;
use webdep::core::emd::emd_to_decentralized_via_transport;
use webdep::core::fdiv::{disjoint_embedding, js_divergence, total_variation};
use webdep::core::insularity::{insularity, InsularityInput};
use webdep::core::regionalization::UsageCurve;
use webdep::core::topn::top_n_share;

fn main() {
    // --- Centralization -------------------------------------------------
    // Two markets with the same top-5 share but different shapes (the
    // paper's Azerbaijan-vs-Hong-Kong motivating example).
    let (steep, flat) = webdep::core::topn::topn_blindspot_pair(5);
    println!("== Centralization score S ==");
    for (name, d) in [("steep head", &steep), ("flat head", &flat)] {
        let s = centralization_score(d);
        println!(
            "  {name}: top-5 share {:.2}, S = {s:.4} ({})",
            top_n_share(d, 5),
            ConcentrationBand::classify(hhi(d)).label(),
        );
    }
    println!("  -> same top-5 coverage, different S: the top-N blind spot\n");

    // --- The EMD formulation --------------------------------------------
    // The closed form equals the generic minimum-cost transportation
    // solution (Appendix A).
    let d = CountDist::from_counts(vec![12, 6, 4, 2, 1]).unwrap();
    let closed = centralization_score(&d);
    let solved = emd_to_decentralized_via_transport(&d).unwrap();
    println!("== EMD equivalence (Appendix A) ==");
    println!("  closed form S = {closed:.6}");
    println!("  transport-solver EMD = {solved:.6}\n");

    // --- Why not f-divergences (§3.1) ------------------------------------
    let concentrated = disjoint_embedding(&[90, 5, 5]).unwrap();
    let diffuse = disjoint_embedding(&[10; 10]).unwrap();
    println!("== f-divergences saturate on disjoint support ==");
    println!(
        "  TV(concentrated, reference) = {:.3}, TV(diffuse, reference) = {:.3}",
        total_variation(&concentrated.0, &concentrated.1).unwrap(),
        total_variation(&diffuse.0, &diffuse.1).unwrap(),
    );
    println!(
        "  JS(concentrated) = {:.4}, JS(diffuse) = {:.4}  (both at the ln 2 ceiling)",
        js_divergence(&concentrated.0, &concentrated.1).unwrap(),
        js_divergence(&diffuse.0, &diffuse.1).unwrap(),
    );
    println!(
        "  S separates them: {:.3} vs {:.3}\n",
        centralization_score(&CountDist::from_counts(vec![90, 5, 5]).unwrap()),
        centralization_score(&CountDist::from_counts(vec![10; 10]).unwrap()),
    );

    // --- Regionalization --------------------------------------------------
    println!("== Usage and endemicity (§3.3) ==");
    let global = UsageCurve::new((0..150).map(|i| 40.0 - 0.1 * i as f64).collect());
    let mut regional_usage = vec![0.1; 150];
    regional_usage[0] = 18.0;
    regional_usage[1] = 9.0;
    let regional = UsageCurve::new(regional_usage);
    for (name, c) in [
        ("global provider", &global),
        ("regional provider", &regional),
    ] {
        println!(
            "  {name}: U = {:.0}, E = {:.0}, E_R = {:.2}",
            c.usage(),
            c.endemicity(),
            c.endemicity_ratio()
        );
    }

    // --- Insularity --------------------------------------------------------
    let rows = vec![
        InsularityInput {
            provider_country: "US",
            websites: 83,
        },
        InsularityInput {
            provider_country: "DE",
            websites: 11,
        },
        InsularityInput {
            provider_country: "FR",
            websites: 6,
        },
    ];
    println!("\n== Insularity ==");
    println!(
        "  a country hosting 83/100 sites domestically: {:.1}%",
        100.0 * insularity(&"US", &rows).unwrap()
    );
}
