//! The latency cost of dependence (an §8-inspired extension): modelled
//! RTT from each country to where its popular websites are actually
//! served.
//!
//! Run with: `cargo run --release --example latency_cost`

use webdep::analysis::latency::{continent_means, latency_table};
use webdep::analysis::AnalysisCtx;
use webdep::netsim::LatencyModel;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small());
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    let ctx = AnalysisCtx::new(&world, &ds);

    let model = LatencyModel::default();
    let rows = latency_table(&ctx, &model);

    println!("Modelled mean RTT to hosting infrastructure (hosting layer):\n");
    println!("slowest countries:");
    for r in rows.iter().take(8) {
        println!(
            "  {} ({})  {:>5.1} ms   served in-continent: {:>4.1}%",
            r.code,
            r.continent,
            r.mean_rtt_ms,
            100.0 * r.served_locally
        );
    }
    println!("\nfastest countries:");
    for r in rows.iter().rev().take(8).collect::<Vec<_>>().iter().rev() {
        println!(
            "  {} ({})  {:>5.1} ms   served in-continent: {:>4.1}%",
            r.code,
            r.continent,
            r.mean_rtt_ms,
            100.0 * r.served_locally
        );
    }

    println!("\nper-continent means:");
    for (cont, ms) in continent_means(&rows) {
        println!("  {cont}: {ms:>5.1} ms");
    }
    println!("\nThe pattern mirrors Figure 8: Africa's websites live in North");
    println!("America and Europe, and the model prices that dependence in RTT;");
    println!("anycast (CDN) adoption is what keeps the gap from being larger.");
}
