//! The 2023 → 2025 longitudinal comparison (§5.4).
//!
//! Run with: `cargo run --release --example longitudinal`

use webdep::analysis::longitudinal::compare;
use webdep::analysis::AnalysisCtx;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::webgen::evolve::evolve;
use webdep::webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

fn main() {
    let world23 = World::generate(WorldConfig::small());
    let world25 = evolve(&world23);

    let ds23 = {
        let dep = DeployedWorld::deploy(&world23, DeployConfig::default());
        measure(&world23, &dep, &PipelineConfig::default())
    };
    let ds25 = {
        let dep = DeployedWorld::deploy(&world25, DeployConfig::default());
        measure(&world25, &dep, &PipelineConfig::default())
    };

    let report = compare(
        &AnalysisCtx::new(&world23, &ds23),
        &AnalysisCtx::new(&world25, &ds25),
    );

    println!(
        "== §5.4 longitudinal comparison ({} -> {}) ==",
        ds23.label, ds25.label
    );
    println!(
        "score correlation rho = {:.3}  (paper: 0.98)",
        report.score_correlation.map(|c| c.rho).unwrap_or(f64::NAN)
    );
    println!(
        "mean Cloudflare delta: {:+.1} pts  (paper: +3.8)",
        report.mean_cloudflare_delta_pts
    );
    println!(
        "mean toplist Jaccard: {:.2}  (paper: ~0.37)",
        report.mean_jaccard
    );
    println!(
        "countries with reduced US reliance: {} / {}  (paper: 56/150)",
        report.us_reliance_decreased,
        report.deltas.len()
    );

    println!("\nlargest Cloudflare increases:");
    let mut by_cf = report.deltas.clone();
    by_cf.sort_by(|a, b| {
        b.cloudflare_delta_pts
            .partial_cmp(&a.cloudflare_delta_pts)
            .unwrap()
    });
    for d in by_cf.iter().take(5) {
        println!(
            "  {}: {:+.1} pts (S {:.4} -> {:.4}, Jaccard {:.2})",
            d.code, d.cloudflare_delta_pts, d.s_old, d.s_new, d.jaccard
        );
    }
    println!("\nand the declines:");
    for d in by_cf.iter().rev().take(4) {
        println!(
            "  {}: {:+.1} pts (US share {:+.1} pts)",
            d.code, d.cloudflare_delta_pts, d.us_share_delta_pts
        );
    }

    if let Some(d) = report.delta("RU") {
        println!(
            "\nRussia: S {:.4} -> {:.4}, Cloudflare {:+.1} pts, US share {:+.1} pts (paper: 0.0554 -> 0.0499, -2.0, -1)",
            d.s_old, d.s_new, d.cloudflare_delta_pts, d.us_share_delta_pts
        );
    }
    if let Some(d) = report.largest_increase() {
        println!(
            "largest centralization increase: {} ({:.4} -> {:.4}; paper: Brazil 0.1446 -> 0.2354)",
            d.code, d.s_old, d.s_new
        );
    }
}
