//! Bootstrap uncertainty for centralization scores: how stable is a
//! country's S under resampling of its toplist? (A toolkit extension —
//! the paper reports point estimates; this quantifies their sampling
//! noise.)
//!
//! Run with: `cargo run --release --example uncertainty`

use webdep::analysis::AnalysisCtx;
use webdep::core::centralization::centralization_score_counts;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::stats::bootstrap_ci;
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small());
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    let ctx = AnalysisCtx::new(&world, &ds);

    println!("95% bootstrap CIs for hosting centralization (500 replicates):\n");
    println!("country |  S      |  95% CI             | paper");
    println!("--------|---------|---------------------|-------");
    for code in ["TH", "ID", "BR", "US", "DE", "BG", "CZ", "RU", "IR"] {
        let ci_idx = World::country_index(code).unwrap();
        // The raw per-site owner labels are the resampling unit.
        let owners: Vec<u32> = ctx
            .ds
            .country_observations(ci_idx)
            .filter_map(|o| o.hosting_org)
            .collect();
        let stat = |sample: &[u32]| -> f64 {
            let mut tally = std::collections::HashMap::new();
            for &o in sample {
                *tally.entry(o).or_insert(0u64) += 1;
            }
            let counts: Vec<u64> = tally.into_values().collect();
            centralization_score_counts(&counts).unwrap_or(0.0)
        };
        let ci = bootstrap_ci(&owners, stat, 500, 0.95, 42).expect("non-empty sample");
        let paper = webdep::webgen::CountryRecord::by_code(code)
            .unwrap()
            .paper_score(Layer::Hosting);
        println!(
            "{code:7} | {:.4}  | [{:.4}, {:.4}]    | {paper:.4}{}",
            ci.point,
            ci.lo,
            ci.hi,
            if ci.contains(paper) { "  (in CI)" } else { "" }
        );
    }
    println!("\nIntervals shrink ~1/sqrt(C): at the paper's 10k sites per");
    println!("country they are ~3x tighter than at this example's 1k.");
}
