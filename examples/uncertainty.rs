//! Bootstrap uncertainty for centralization scores: how stable is a
//! country's S under resampling of its toplist? (A toolkit extension —
//! the paper reports point estimates; this quantifies their sampling
//! noise.)
//!
//! Run with: `cargo run --release --example uncertainty`

use webdep::analysis::AnalysisCtx;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small());
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    let ctx = AnalysisCtx::new(&world, &ds);

    println!("95% bootstrap CIs for hosting centralization (500 replicates):\n");
    println!("country |  S      |  95% CI             | paper");
    println!("--------|---------|---------------------|-------");
    for code in ["TH", "ID", "BR", "US", "DE", "BG", "CZ", "RU", "IR"] {
        let ci_idx = World::country_index(code).unwrap();
        // The cube's dense per-site labels are the resampling unit;
        // replicates tally into a reused scratch array (no per-replicate
        // allocation).
        let ci = ctx
            .score_ci(ci_idx, Layer::Hosting, 500, 0.95, 42)
            .expect("non-empty sample");
        let paper = webdep::webgen::CountryRecord::by_code(code)
            .unwrap()
            .paper_score(Layer::Hosting);
        println!(
            "{code:7} | {:.4}  | [{:.4}, {:.4}]    | {paper:.4}{}",
            ci.point,
            ci.lo,
            ci.hi,
            if ci.contains(paper) { "  (in CI)" } else { "" }
        );
    }
    println!("\nIntervals shrink ~1/sqrt(C): at the paper's 10k sites per");
    println!("country they are ~3x tighter than at this example's 1k.");
}
