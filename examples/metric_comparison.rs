//! Metric shoot-out on measured data: the centralization score vs the
//! top-N heuristic vs f-divergences (§3.1's argument, quantified).
//!
//! Run with: `cargo run --release --example metric_comparison`

use webdep::analysis::AnalysisCtx;
use webdep::core::centralization::centralization_score;
use webdep::core::fdiv::{disjoint_embedding, hellinger_distance, js_divergence, total_variation};
use webdep::core::topn::top_n_share;
use webdep::pipeline::{measure, PipelineConfig};
use webdep::stats::corr::spearman;
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small());
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let ds = measure(&world, &dep, &PipelineConfig::default());
    let ctx = AnalysisCtx::new(&world, &ds);

    println!("country | S      | top-5  | top-10 | TV    | JS    | Hellinger");
    println!("--------|--------|--------|--------|-------|-------|----------");
    let mut s_col = Vec::new();
    let mut t5_col = Vec::new();
    for code in ["TH", "ID", "US", "JP", "DE", "BG", "CZ", "RU", "TM", "IR"] {
        let ci = World::country_index(code).unwrap();
        let dist = ctx.country_dist(ci, Layer::Hosting).unwrap();
        let s = centralization_score(&dist);
        let t5 = top_n_share(&dist, 5);
        let t10 = top_n_share(&dist, 10);
        let (p, q) = disjoint_embedding(dist.counts()).unwrap();
        println!(
            "{code:7} | {s:.4} | {t5:.4} | {t10:.4} | {:.3} | {:.3} | {:.3}",
            total_variation(&p, &q).unwrap(),
            js_divergence(&p, &q).unwrap(),
            hellinger_distance(&p, &q).unwrap(),
        );
        s_col.push(s);
        t5_col.push(t5);
    }
    println!();
    println!("Every f-divergence column saturates (TV=1, JS=ln 2, H=1): the");
    println!("observed and reference distributions are disjoint, so the family");
    println!("cannot rank countries — the paper's §3.1 argument.");
    if let Some(c) = spearman(&s_col, &t5_col) {
        println!();
        println!(
            "S and top-5 rank-correlate (rho = {:.2}) but disagree exactly where",
            c.rho
        );
        println!("head shapes differ — see the AZ/HK pair in `quickstart`.");
    }

    // Figure 1 on measured data.
    println!("\nFigure 1 rank curves (percent of sites at each provider rank):");
    for code in ["AZ", "HK", "TH", "IR"] {
        let ci = World::country_index(code).unwrap();
        let dist = ctx.country_dist(ci, Layer::Hosting).unwrap();
        let curve = webdep::core::topn::provider_rank_curve(&dist);
        let head: Vec<String> = curve.iter().take(8).map(|v| format!("{v:.1}")).collect();
        println!(
            "  {code}: [{}] ... ({} providers, top-5 {:.0}%)",
            head.join(", "),
            curve.len(),
            100.0 * top_n_share(&dist, 5)
        );
    }
}
