//! Workspace-level property tests tying the metric crate to the
//! generator: calibration inverts scoring, and the metric's invariants
//! survive realistic (Zipf-mixture) distributions.

use proptest::prelude::*;
use webdep::core::centralization::{centralization_score_counts_ref, max_score};
use webdep::core::dist::CountDist;
use webdep::core::emd::emd_to_decentralized_via_transport;
use webdep::webgen::calibrate::{adjust_to_target, solve_counts};
use webdep::webgen::depmap::head_share_for_score;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// solve_counts is a right inverse of the score, across the whole
    /// plausible (target, size, pool) space.
    #[test]
    fn calibration_inverts_scoring(
        target in 0.02f64..0.6,
        total in 2_000u64..20_000,
        pool in 50usize..800,
    ) {
        let head = head_share_for_score(target);
        let counts = solve_counts(target, total, pool, head);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        let s = centralization_score_counts_ref(&counts).unwrap();
        prop_assert!((s - target).abs() < 0.02, "target {}, got {}", target, s);
    }

    /// adjust_to_target converges from arbitrary starting shapes.
    #[test]
    fn adjustment_converges(
        mut counts in prop::collection::vec(1u64..500, 4..64),
        target in 0.05f64..0.5,
    ) {
        let total: u64 = counts.iter().sum();
        let achieved = adjust_to_target(&mut counts, &[], target);
        prop_assert_eq!(counts.iter().sum::<u64>(), total, "mass conserved");
        // Reachability: a fully-flat or fully-peaked vector bounds what is
        // attainable; inside those bounds we must be close.
        let n = counts.len() as f64;
        let min_s = (1.0 / n - 1.0 / total as f64).max(0.0);
        let max_s = max_score(total);
        if target > min_s + 0.01 && target < max_s - 0.01 {
            prop_assert!((achieved - target).abs() < 0.02,
                "target {}, achieved {}", target, achieved);
        }
    }

    /// Closed-form score equals the exact transportation solution on
    /// Zipf-like inputs (Appendix A at realistic shapes, small C for the
    /// O(C^2) reference solver).
    #[test]
    fn emd_equivalence_on_zipf_mixtures(
        exponent in 0.3f64..2.0,
        providers in 2usize..10,
    ) {
        let counts: Vec<u64> = (1..=providers)
            .map(|i| ((providers as f64 / i as f64).powf(exponent)).ceil() as u64)
            .collect();
        let dist = CountDist::from_counts(counts).unwrap();
        let closed = centralization_score_counts_ref(
            dist.counts()
        ).unwrap();
        let solved = emd_to_decentralized_via_transport(&dist).unwrap();
        prop_assert!((closed - solved).abs() < 1e-7, "{} vs {}", closed, solved);
    }
}
