//! Tier-1 chaos smoke (see DESIGN.md "Supervision, checkpointing & resume"):
//! the smallest end-to-end proof that supervision works. One injected worker
//! death must cost zero observations, and a run killed halfway through must
//! resume from its journal into a byte-identical dataset.
//!
//! The heavier matrix (panic isolation, poison, watchdog, three-point
//! resume, torn tails) lives in `crates/pipeline/tests/supervision.rs`.

use webdep::pipeline::{
    measure, measure_journaled, resume_from_journal, ChaosPlan, PipelineConfig,
};
use webdep::webgen::{DeployConfig, DeployedWorld, World, WorldConfig};

#[test]
fn chaos_smoke_worker_death_and_crash_resume() {
    let mut wc = WorldConfig::tiny();
    wc.sites_per_country = 30;
    wc.global_pool_size = 100;
    let world = World::generate(wc);
    let dep = DeployedWorld::deploy(&world, DeployConfig::default());
    let n = world.sites.len();

    let config = PipelineConfig {
        workers: 4,
        ..Default::default()
    };
    let clean = measure(&world, &dep, &config);

    // One worker killed mid-run: its in-flight batch is requeued and the
    // dataset comes out byte-identical to the undisturbed run.
    let chaos = PipelineConfig {
        chaos: Some(ChaosPlan::kill_at(&[n / 2])),
        ..config.clone()
    };
    let path = std::env::temp_dir().join(format!("webdep-chaos-smoke-{}", std::process::id()));
    let (ds, stats) = measure_journaled(&world, &dep, &chaos, &path).unwrap();
    assert_eq!(stats.supervision.workers_lost, 1);
    assert_eq!(stats.supervision.batches_requeued, 1);
    assert_eq!(clean, ds, "a worker death changed the dataset");

    // Truncate the journal to half its records — what a killed process
    // leaves behind — and resume: only the missing half is re-measured.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    std::fs::write(&path, format!("{}\n", lines[..=n / 2].join("\n"))).unwrap();
    let (resumed, rstats) = resume_from_journal(&world, &dep, &config, &path).unwrap();
    assert_eq!(rstats.supervision.sites_resumed, (n / 2) as u64);
    assert_eq!(clean, resumed, "crash-resume changed the dataset");
    let _ = std::fs::remove_file(&path);
}
