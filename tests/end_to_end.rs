//! Cross-crate integration: generate → deploy → measure → analyze, and
//! check the paper's headline shapes end to end.

use std::sync::OnceLock;
use webdep::analysis::centralization::layer_table;
use webdep::analysis::insularity::insularity_table;
use webdep::analysis::{AnalysisCtx, ExperimentSuite};
use webdep::pipeline::{measure, MeasuredDataset, PipelineConfig};
use webdep::webgen::{DeployConfig, DeployedWorld, Layer, World, WorldConfig};

fn fixture() -> &'static (World, MeasuredDataset) {
    static FIXTURE: OnceLock<(World, MeasuredDataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let dep = DeployedWorld::deploy(&world, DeployConfig::default());
        let ds = measure(&world, &dep, &PipelineConfig::default());
        (world, ds)
    })
}

#[test]
fn pipeline_recovers_ground_truth_everywhere() {
    let (world, ds) = fixture();
    // Every toplist-referenced site measured with the right attribution.
    let mut mismatches = 0;
    let mut total = 0;
    for toplist in &world.toplists {
        for &si in toplist.iter().step_by(7) {
            let site = &world.sites[si as usize];
            let obs = &ds.observations[si as usize];
            total += 1;
            if obs.hosting_org != Some(site.hosting)
                || obs.dns_org != Some(site.dns)
                || obs.ca_owner != Some(site.ca)
            {
                mismatches += 1;
            }
        }
    }
    assert!(total > 5000);
    assert!(
        (mismatches as f64) < 0.01 * total as f64,
        "{mismatches}/{total} mismatches"
    );
}

#[test]
fn calibration_holds_across_all_layers() {
    let (world, ds) = fixture();
    let ctx = AnalysisCtx::new(world, ds);
    for layer in Layer::ALL {
        let t = layer_table(&ctx, layer);
        let rho = t.paper_correlation().unwrap().rho;
        assert!(rho > 0.9, "{}: rho {rho}", layer.name());
    }
}

#[test]
fn layer_ordering_matches_paper() {
    let (world, ds) = fixture();
    let ctx = AnalysisCtx::new(world, ds);
    // Mean centralization: TLD > CA > hosting ~ DNS (Figure 9's gist).
    let mean = |l: Layer| layer_table(&ctx, l).summary.unwrap().mean;
    let (h, d, c, t) = (
        mean(Layer::Hosting),
        mean(Layer::Dns),
        mean(Layer::Ca),
        mean(Layer::Tld),
    );
    assert!(t > c && c > (h + d) / 2.0 - 0.02, "t={t} c={c} h={h} d={d}");
    // CA var smallest among provider layers (§7.1).
    let var = |l: Layer| layer_table(&ctx, l).summary.unwrap().var;
    assert!(var(Layer::Ca) < var(Layer::Tld));
}

#[test]
fn insularity_orderings() {
    let (world, ds) = fixture();
    let ctx = AnalysisCtx::new(world, ds);
    let host = insularity_table(&ctx, Layer::Hosting);
    let dns = insularity_table(&ctx, Layer::Dns);
    // Hosting and DNS insularity track each other (Figure 11).
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in &host.rows {
        if let Some(d) = dns.row(r.code) {
            xs.push(r.insularity);
            ys.push(d.insularity);
        }
    }
    let rho = webdep::stats::pearson(&xs, &ys).unwrap().rho;
    assert!(rho > 0.8, "hosting vs dns insularity rho {rho}");
}

#[test]
fn experiment_suite_passes_on_shared_fixture() {
    let (world, ds) = fixture();
    let ctx = AnalysisCtx::new(world, ds);
    let suite = ExperimentSuite::run(&ctx, None, None);
    let failed: Vec<String> = suite
        .results
        .iter()
        .filter(|r| !r.pass)
        .map(|r| format!("{}: {}", r.id, r.measured))
        .collect();
    assert!(failed.is_empty(), "failed: {failed:#?}");
}
